#!/usr/bin/env python3
"""Latency anatomy: where every nanosecond of each scheme goes.

Reconstructs the paper's §3 argument from the calibrated cost models —
no simulation, just the arithmetic the simulator executes — and then
validates the totals against measured single-client latencies.

Run:  python examples/latency_anatomy.py
"""

from repro.analysis.stats import fmt_ns
from repro.analysis.tables import Table, banner
from repro.baselines.base import StoreConfig
from repro.crc.cost import CrcCostModel
from repro.harness.runner import RunSpec, run_experiment
from repro.nvm.device import NVMTiming
from repro.rdma.latency import FabricTiming
from repro.workloads.ycsb import update_only, ycsb_c

SIZE = 4096


def analytic() -> None:
    t = FabricTiming()
    n = NVMTiming()
    crc = CrcCostModel()
    cfg = StoreConfig()

    one_sided_small = t.one_sided_rtt_ns(64)
    one_sided_data = t.one_sided_rtt_ns(SIZE)
    rpc_rtt = (
        2 * (t.nic_tx_ns + t.one_way_ns(64) + t.nic_rx_ns)
        + t.two_sided_rx_cost(64)
        + t.two_sided_rx_ns
    )

    print(banner(f"Cost-model anatomy at {SIZE} B values"))
    table = Table(["component", "cost"])
    table.add("one-sided verb (small)", fmt_ns(one_sided_small))
    table.add(f"one-sided verb ({SIZE}B payload)", fmt_ns(one_sided_data))
    table.add("SEND-based RPC round trip (wire only)", fmt_ns(rpc_rtt))
    table.add("server handler dispatch", fmt_ns(cfg.dispatch_ns))
    table.add(f"CRC over {SIZE}B (the Fig 2 villain)", fmt_ns(crc.cost_ns(SIZE)))
    table.add(f"NVM flush of {SIZE}B (CLWB sweep + fence)", fmt_ns(n.flush_cost(SIZE)))
    table.add(f"NVM memcpy of {SIZE}B (RPC's extra pass)", fmt_ns(n.copy_cost(SIZE)))
    print(table.render())

    print(
        "\nWhy the paper's designs behave as they do:\n"
        f"  CA PUT    = alloc RPC + one-sided WRITE           (no flush anywhere)\n"
        f"  SAW PUT   = CA + another RPC + synchronous flush  (worst of Fig 1)\n"
        f"  IMM PUT   = CA with imm + synchronous flush       (~RPC in Fig 1)\n"
        f"  Erda GET  = 2 READs + client CRC                  (Fig 2: CRC ~45%)\n"
        f"  Forca GET = RPC + server CRC + flush + READ       (Fig 2: CRC ~35%)\n"
        f"  eFactory  = CA PUT; GET = 2 READs + a flag check  (CRC off-path)\n"
    )


def measured() -> None:
    print(banner("Measured single-client medians (validates the table)"))
    table = Table(["system", "PUT p50", "GET p50"])
    for store in ("ca", "saw", "imm", "rpc", "erda", "forca", "efactory"):
        put = run_experiment(
            RunSpec(
                store=store,
                workload=update_only(value_len=SIZE, key_count=64),
                n_clients=1,
                ops_per_client=120,
                warmup_ops=20,
            )
        )
        get = run_experiment(
            RunSpec(
                store=store,
                workload=ycsb_c(value_len=SIZE, key_count=64),
                n_clients=1,
                ops_per_client=120,
                warmup_ops=20,
            )
        )
        table.add(
            store,
            fmt_ns(put.latency.median("put")),
            fmt_ns(get.latency.median("get")),
        )
    print(table.render())


if __name__ == "__main__":
    analytic()
    measured()
