#!/usr/bin/env python3
"""Head-to-head YCSB comparison of all six systems (a small Figure 9).

Runs the four workload mixes of §5.2 at one value size with 8 closed-
loop clients, and prints the throughput table plus eFactory's hybrid
read-path split.

Run:  python examples/ycsb_comparison.py [value_size] [ops_per_client]
"""

import sys

from repro.analysis.stats import fmt_mops
from repro.analysis.tables import Table, banner
from repro.harness.runner import RunSpec, run_experiment
from repro.stores import STORES
from repro.workloads.ycsb import WORKLOADS

SYSTEMS = ("efactory", "efactory_nohr", "imm", "saw", "erda", "forca")


def main() -> None:
    value_len = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    ops = int(sys.argv[2]) if len(sys.argv) > 2 else 300

    print(banner(f"YCSB comparison — {value_len} B values, 8 clients"))
    table = Table(["system"] + list(WORKLOADS))
    hybrid_split = {}
    for store in SYSTEMS:
        row = [STORES[store].label]
        for wname, factory in WORKLOADS.items():
            spec = RunSpec(
                store=store,
                workload=factory(value_len=value_len, key_count=1024),
                n_clients=8,
                ops_per_client=ops,
                warmup_ops=max(20, ops // 10),
            )
            result = run_experiment(spec)
            row.append(fmt_mops(result.throughput_mops))
            if store == "efactory" and result.pure_reads:
                hybrid_split[wname] = (
                    result.pure_reads,
                    result.fallback_reads,
                )
        table.add(*row)
    print(table.render())

    print("\neFactory hybrid read split (pure RDMA vs RPC+RDMA fallback):")
    for wname, (pure, fallback) in hybrid_split.items():
        total = pure + fallback
        print(
            f"  {wname:12s} {pure}/{total} pure "
            f"({pure / total:.0%}; fallbacks are read-write races)"
        )


if __name__ == "__main__":
    main()
