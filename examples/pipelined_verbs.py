#!/usr/bin/env python3
"""Raw verb pipelining with completion queues.

The store clients in this library are closed-loop (one op at a time) —
the paper's measurement methodology. Real RDMA applications keep many
work requests in flight; this example uses the async posting layer
(:mod:`repro.rdma.cq`) directly against a registered NVM region to show
how per-op latency amortises with pipeline depth, and why the *wire*
is never the client-active scheme's bottleneck.

Run:  python examples/pipelined_verbs.py
"""

from repro.analysis.stats import fmt_mops, fmt_ns
from repro.analysis.tables import Table, banner
from repro.nvm.device import NVMDevice
from repro.rdma.cq import CompletionQueue, post_write
from repro.rdma.fabric import Fabric
from repro.sim import Environment

N_OPS = 400
SIZE = 512


def run_depth(depth: int) -> tuple[float, float]:
    """(ops/s in Mops, mean latency ns) for a given pipeline depth."""
    env = Environment()
    fabric = Fabric(env)
    server = fabric.create_node("server", device=NVMDevice(env, 8 << 20))
    client = fabric.create_node("client")
    ep = fabric.connect(client, server)
    mr = server.register_memory(0, 8 << 20)
    done = {}

    def workload():
        cq = CompletionQueue(env)
        t0 = env.now
        issued = 0
        completed = 0
        lat_total = 0.0
        start_times = {}
        # keep `depth` WRs outstanding at all times
        while completed < N_OPS:
            while issued < N_OPS and cq.outstanding < depth:
                wid = post_write(
                    ep, cq, mr.rkey, (issued % 1024) * SIZE, b"p" * SIZE
                )
                start_times[wid] = env.now
                issued += 1
            (wc,) = yield from cq.wait(1)
            lat_total += env.now - start_times.pop(wc.wr_id)
            completed += 1
        done["span"] = env.now - t0
        done["mean_lat"] = lat_total / N_OPS

    env.run(env.process(workload()))
    return N_OPS / done["span"] * 1e3, done["mean_lat"]


def main() -> None:
    print(banner(f"WRITE pipelining, {SIZE} B payloads, one QP"))
    table = Table(["depth", "throughput", "mean latency"])
    for depth in (1, 2, 4, 8, 16, 32):
        mops, lat = run_depth(depth)
        table.add(depth, fmt_mops(mops), fmt_ns(lat))
    print(table.render())
    print(
        "\nLatency rises as WRs queue at the TX engine while throughput"
        "\nsaturates at the NIC's message/serialization rate — the ceiling"
        "\nthe closed-loop store benchmarks stay well under."
    )


if __name__ == "__main__":
    main()
