#!/usr/bin/env python3
"""Log cleaning walk-through (§4.4, Figure 7).

Fills an eFactory store with many stale versions, triggers the
two-stage cleaner while a client keeps reading and writing, and prints
what happened: space reclaimed, objects moved vs skipped, client read
paths during the cycle, and proof that every key still serves its
newest value.

Run:  python examples/log_cleaning_demo.py
"""

from repro.sim import Environment
from repro.stores import build_store
from repro.workloads.keyspace import make_key, make_value, parse_value


def main() -> None:
    env = Environment()
    setup = build_store(
        "efactory",
        env,
        n_clients=2,
        config_overrides={"pool_size": 4 << 20, "auto_clean": False},
    ).start()
    server = setup.server
    loader, worker = setup.clients

    n_keys, versions = 64, 6
    keys = [make_key(i) for i in range(n_keys)]
    latest = {}

    def load():
        for v in range(versions):
            for i in range(n_keys):
                yield from loader.put(keys[i], make_value(i, v, 256))
                latest[i] = v

    env.run(env.process(load()))
    env.run(until=env.now + 1_000_000)  # background verifier settles

    old_pool = server.pools[server.write_pool_id]
    print("before cleaning:")
    print(f"  pool {old_pool.pool_id}: {old_pool.used:,} B used, "
          f"{len(old_pool.allocations)} objects "
          f"({n_keys} live + {n_keys * (versions - 1)} stale)")

    def churn():
        """Concurrent traffic while the cleaner runs."""
        for round_ in range(40):
            i = round_ % n_keys
            v = versions + round_
            yield from worker.put(keys[i], make_value(i, v, 256))
            latest[i] = v
            got = yield from worker.get(keys[i], size_hint=256)
            assert parse_value(got) == (i, v)

    churn_proc = env.process(churn())
    clean_proc = server.trigger_cleaning()
    env.run(env.all_of([churn_proc, clean_proc]))

    stats = server.cleaner.stats
    new_pool = server.pools[server.write_pool_id]
    print("\nafter one cleaning cycle:")
    print(f"  moved {stats.moved} live objects ({stats.bytes_copied:,} B copied)")
    print(f"  skipped {stats.skipped_stale} stale versions, "
          f"{stats.skipped_superseded} superseded during merge")
    print(f"  hash entries fixed: {stats.entries_fixed}")
    print(f"  new working pool {new_pool.pool_id}: {new_pool.used:,} B used")
    print(f"  worker read paths: {worker.read_stats()} "
          f"(fallbacks occur while notified of cleaning)")

    def verify():
        ok = 0
        for i in range(n_keys):
            got = yield from worker.get(keys[i], size_hint=256)
            assert parse_value(got) == (i, latest[i]), i
            ok += 1
        return ok

    ok = env.run(env.process(verify()))
    print(f"\nverified: all {ok} keys serve their newest value after cleaning")


if __name__ == "__main__":
    main()
