#!/usr/bin/env python3
"""Crash consistency across the design space.

Pulls the plug on three stores mid-workload and audits what each
recovers, reproducing the paper's motivating contrasts (§3, §7):

* CA w/o persistence — torn objects exposed to readers;
* Erda — atomic, but reads can travel *backwards* across the crash
  (its index and data persist only by cache eviction);
* eFactory — rolls torn heads back along the version list and never
  un-reads a value (monotonic reads).

Run:  python examples/crash_recovery_demo.py
"""

from repro.harness.crash import CrashSpec, run_crash_experiment
from repro.stores import STORES


def describe(store: str, seed: int = 11) -> None:
    spec = CrashSpec(
        store=store,
        n_clients=4,
        key_count=48,
        ops_before_crash=240,
        read_fraction=0.4,
        seed=seed,
        evict_probability=0.3,
    )
    report = run_crash_experiment(spec)
    label = STORES[store].label
    print(f"\n{label}")
    print(f"  completed ops before crash: {report.completed_ops}")
    if report.recovery is not None:
        r = report.recovery
        print(
            f"  recovery: {r.keys_recovered} intact latest, "
            f"{r.keys_rolled_back} rolled back, {r.keys_lost} lost, "
            f"{r.torn_objects} torn versions rejected"
        )
    else:
        print("  recovery: none (no integrity metadata to recover with)")
    print(f"  torn values exposed after crash:  {report.torn_exposed}")
    print(f"  acknowledged writes lost:         {report.durability_losses}")
    print(f"  non-monotonic reads (read, then gone): {report.monotonicity_losses}")
    verdict = "OK" if report.ok else f"VIOLATIONS: {report.violations}"
    print(f"  advertised guarantees: {verdict}")


def main() -> None:
    print("Crash injection: 4 clients, zipf-free uniform churn, power fail,")
    print("then audit every key against the acknowledged-write history.")
    for store in ("ca", "erda", "efactory"):
        describe(store)
    print(
        "\nExpected contrast: CA tears objects, Erda un-reads data "
        "(non-monotonic), eFactory does neither."
    )


if __name__ == "__main__":
    main()
