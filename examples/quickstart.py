#!/usr/bin/env python3
"""Quickstart: deploy an eFactory store in simulation and use it.

Shows the public API end to end: build a store, run client operations
as simulated processes, inspect the hybrid-read statistics and the
background verifier, and print latencies.

Run:  python examples/quickstart.py
"""

from repro.analysis.stats import fmt_ns
from repro.sim import Environment
from repro.stores import build_store


def main() -> None:
    env = Environment()
    setup = build_store(
        "efactory",
        env,
        n_clients=2,
        config_overrides={"pool_size": 8 << 20, "auto_clean": False},
    ).start()
    alice, bob = setup.clients

    latencies: dict[str, float] = {}

    def alice_writes():
        t0 = env.now
        yield from alice.put(b"user000000000042", b"Hello, NVM!" + b" " * 53)
        latencies["put"] = env.now - t0

    def bob_reads():
        # Immediately after the write: the object is not yet durable, so
        # the hybrid read falls back to the RPC+RDMA path once...
        yield env.timeout(8_000)
        t0 = env.now
        value = yield from bob.get(b"user000000000042", size_hint=64)
        latencies["get_fallback"] = env.now - t0
        assert value.startswith(b"Hello, NVM!")

        # ...and after the background thread persists it, the same GET
        # is two one-sided RDMA reads.
        yield env.timeout(300_000)
        t0 = env.now
        value = yield from bob.get(b"user000000000042", size_hint=64)
        latencies["get_pure"] = env.now - t0
        assert value.startswith(b"Hello, NVM!")

    a = env.process(alice_writes())
    b = env.process(bob_reads())
    env.run(env.all_of([a, b]))

    print("eFactory quickstart")
    print(f"  PUT (client-active, async durability): {fmt_ns(latencies['put'])}")
    print(f"  GET during the read-write race (RPC+RDMA): {fmt_ns(latencies['get_fallback'])}")
    print(f"  GET once durable (pure RDMA, 2 reads):     {fmt_ns(latencies['get_pure'])}")
    print(f"  bob's read paths: {bob.read_stats()}")
    print(f"  background verifier: {setup.server.background.stats()}")


if __name__ == "__main__":
    main()
