"""Setuptools shim — lets `python setup.py develop` work in offline
environments that lack the `wheel` package (pip's editable route needs
bdist_wheel). Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
