"""Figure 11 — performance impact of log cleaning (§6.3).

Paper shapes: "log cleaning incurs 1%-21% performance overhead"; the
read-only workload suffers most (clients lose the hybrid read and go
through the server for the duration), while 100% PUT is barely affected
(the write path is unchanged; only cache-locality interference).
"""

from benchmarks.conftest import scaled
from repro.harness.experiments import fig11_log_cleaning, render_fig11

WORKLOADS = ("YCSB-C", "YCSB-B", "YCSB-A", "update-only")


def test_fig11(benchmark, show):
    data = benchmark.pedantic(
        lambda: fig11_log_cleaning(
            workload_names=WORKLOADS, ops=scaled(300), key_count=512
        ),
        rounds=1,
        iterations=1,
    )
    show(render_fig11(data))

    overheads = {w: data[w]["overhead"] for w in WORKLOADS}

    # Cleaning always costs something, and never a catastrophe.
    for w, ov in overheads.items():
        assert -0.02 <= ov < 0.60, (w, ov)

    # Reads are hurt most; pure writes barely at all (paper's shape).
    assert overheads["YCSB-C"] > overheads["update-only"]
    assert overheads["update-only"] < 0.10

    benchmark.extra_info["overhead_pct"] = {
        w: round(ov * 100, 1) for w, ov in overheads.items()
    }
