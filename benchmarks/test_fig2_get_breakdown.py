"""Figure 2 — GET latency breakdown for Erda and Forca.

Paper shapes (§3): CRC verification cost grows with value size until it
dominates the read path — "it takes about 4.4 µs to verify a 4 KB
object, which accounts for 45% and 35% of the read latency for Erda and
Forca respectively".
"""

from benchmarks.conftest import scaled
from repro.harness.experiments import fig2_get_breakdown, render_fig2

SIZES = (64, 1024, 4096)


def test_fig2(benchmark, show):
    data = benchmark.pedantic(
        lambda: fig2_get_breakdown(sizes=SIZES, ops=scaled(200)),
        rounds=1,
        iterations=1,
    )
    show(render_fig2(data))

    for store in ("erda", "forca"):
        shares = [data[store][s]["crc_share"] for s in SIZES]
        # CRC share grows monotonically with value size...
        assert shares == sorted(shares)
        # ...and is a large fraction at 4 KiB (paper: 45% / 35%)
        assert shares[-1] > 0.30, f"{store}: {shares[-1]:.0%}"
        # the absolute CRC time matches the paper's own measurement
        assert 4300 < data[store][4096]["crc_ns"] < 4500

    # Erda's total read latency at 4 KiB is lower than Forca's (no RPC),
    # so CRC is a *bigger* share for Erda — same ordering as the paper.
    assert (
        data["erda"][4096]["crc_share"] > data["forca"][4096]["crc_share"]
    )

    benchmark.extra_info["crc_share_4k"] = {
        s: round(data[s][4096]["crc_share"], 3) for s in data
    }
