"""Figure 9 — end-to-end throughput vs value size, four workloads,
8 concurrent clients.

Paper shapes (§6.1):
* (a) read-only: eFactory ≈ IMM ≈ SAW (hybrid reads ≈ raw RDMA reads);
  Erda degrades with size (client CRC), Forca is poor throughout
  (server on every read); eFactory ≈ 1.96×/1.67× Erda/Forca at 4 KiB.
* (b) read-intensive: same ordering, slightly more RPC fallbacks.
* (c) write-intensive: eFactory highest overall.
* (d) update-only: eFactory ≈ Erda ≈ Forca (same write path); IMM and
  SAW trail badly (synchronous flush + extra round trips) — paper
  ranges 0.42–2.79× over IMM and 0.66–2.85× over SAW.
* factor analysis: hybrid read lifts read-heavy throughput over the
  eFactory-w/o-hr ablation.
"""

import pytest

from benchmarks.conftest import scaled
from repro.harness.experiments import fig9_throughput, render_fig9

SIZES = (64, 1024, 4096)


def _run(workload):
    return fig9_throughput(
        workload, sizes=SIZES, ops=scaled(350), key_count=1024
    )


def test_fig9a_read_only(benchmark, show):
    data = benchmark.pedantic(lambda: _run("YCSB-C"), rounds=1, iterations=1)
    show(render_fig9("YCSB-C", data))

    # eFactory keeps pace with the no-verification readers (paper: ~2%).
    for size in SIZES:
        assert data["efactory"][size] > 0.90 * data["imm"][size]
        assert data["efactory"][size] > 0.90 * data["saw"][size]

    # Erda and Forca fall behind as values grow; big gap at 4 KiB.
    assert data["efactory"][4096] > 1.4 * data["erda"][4096]
    assert data["efactory"][4096] > 1.4 * data["forca"][4096]
    # ...but Erda is competitive at 64 B (the paper's footnote 2).
    assert data["erda"][64] > 0.9 * data["efactory"][64]

    # Forca is poor even at small values (always-RPC reads).
    assert data["forca"][64] < 0.8 * data["efactory"][64]

    # hybrid read beats the w/o-hr ablation on reads.
    for size in SIZES:
        assert data["efactory"][size] > data["efactory_nohr"][size]


def test_fig9b_read_intensive(benchmark, show):
    data = benchmark.pedantic(lambda: _run("YCSB-B"), rounds=1, iterations=1)
    show(render_fig9("YCSB-B", data))
    # eFactory still tracks IMM/SAW closely and beats Erda/Forca.
    for size in SIZES:
        assert data["efactory"][size] > 0.85 * data["imm"][size]
        assert data["efactory"][size] >= data["forca"][size]
    assert data["efactory"][4096] > 1.3 * data["forca"][4096]


def test_fig9c_write_intensive(benchmark, show):
    data = benchmark.pedantic(lambda: _run("YCSB-A"), rounds=1, iterations=1)
    show(render_fig9("YCSB-A", data))
    # "eFactory achieves the highest throughput for all the value sizes"
    # — reproduced up to 1 KiB. At 4 KiB our calibration diverges: the
    # single background thread cannot CRC 4 KiB objects at the write
    # rate (4.4 us each), so ~40% of zipfian-hot reads race and fall
    # back, and IMM (whose reads never verify) edges ahead — see
    # EXPERIMENTS.md for the full analysis. The assertions pin what
    # holds: decisive wins at <=1 KiB, near-parity at 4 KiB.
    for size in (64, 1024):
        for other in ("imm", "saw", "forca"):
            assert data["efactory"][size] >= data[other][size], (size, other)
        assert data["efactory"][size] >= 0.92 * data["erda"][size]
    best_other = max(
        v[4096] for k, v in data.items() if k != "efactory"
    )
    assert data["efactory"][4096] >= 0.82 * best_other
    assert data["efactory"][4096] > data["saw"][4096] * 0.95


def test_fig9d_update_only(benchmark, show):
    data = benchmark.pedantic(
        lambda: _run("update-only"), rounds=1, iterations=1
    )
    show(render_fig9("update-only", data))

    # The async-durability write path crushes the synchronous schemes.
    for size in SIZES:
        assert data["efactory"][size] > 1.2 * data["imm"][size]
        assert data["efactory"][size] > 1.4 * data["saw"][size]
    # Improvement grows with value size (flush cost scales with data).
    ratio_small = data["efactory"][64] / data["saw"][64]
    ratio_big = data["efactory"][4096] / data["saw"][4096]
    assert ratio_big > ratio_small * 0.9

    # Same client-active write path => Erda/Forca are close to eFactory.
    for size in SIZES:
        assert data["efactory"][size] > 0.9 * data["erda"][size]
        assert data["efactory"][size] >= 0.95 * data["forca"][size]
