"""Resilience under injected faults: throughput/availability vs fault rate.

Sweeps the injection probability of three fault kinds (QP error-state
flaps, lost completions, NVM flush spikes) against eFactory with the
client retry/backoff policy attached, and records goodput, availability,
and recovery effort for each point. Besides the rendered table, the full
sweep is written to ``benchmark_resilience.json`` so CI can archive the
curves as a machine-readable artifact.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness.chaos import ChaosSpec, run_chaos_experiment

from .conftest import scaled

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "benchmark_resilience.json")

#: (plan, label) pairs swept below; probability is overridden per point.
SWEEPS = [
    ("qp-flap", "QP error-state flaps"),
    ("drop-completions", "lost completions"),
    ("slow-nvm", "NVM flush spikes"),
]

FAULT_RATES = [0.0, 0.02, 0.08]


def _run_point(plan: str, probability: float) -> dict:
    spec = ChaosSpec(
        store="efactory",
        plan=plan,
        seed=7,
        n_clients=2,
        ops_per_client=scaled(60),
        key_count=24,
        plan_overrides={"probability": probability},
    )
    report = run_chaos_experiment(spec)
    ops = report.completed_ops
    goodput_kops = ops / report.wall_ns * 1e6 if report.wall_ns > 0 else 0.0
    return {
        "plan": plan,
        "fault_rate": probability,
        "faults_injected": len(report.fault_schedule),
        "availability": report.availability,
        "goodput_kops": goodput_kops,
        "retries": report.resilience["retries"],
        "timeouts": report.resilience["timeouts"],
        "reconnects": report.resilience["reconnects"],
        "degraded_reads": report.degraded_reads,
        "violations": len(report.violations),
    }


@pytest.fixture(scope="module")
def sweep():
    points = [
        _run_point(plan, rate) for plan, _ in SWEEPS for rate in FAULT_RATES
    ]
    with open(JSON_PATH, "w") as fh:
        json.dump({"store": "efactory", "seed": 7, "points": points}, fh, indent=2)
    return points


def test_resilience_sweep_table(sweep, show):
    rows = ["plan              rate   faults  avail  kops    retries  reconn"]
    rows += ["-" * len(rows[0])]
    for p in sweep:
        rows.append(
            f"{p['plan']:<17s} {p['fault_rate']:<6.2f} {p['faults_injected']:<7d} "
            f"{p['availability']:<6.3f} {p['goodput_kops']:<7.1f} "
            f"{p['retries']:<8d} {p['reconnects']}"
        )
    show("== resilience: throughput/availability vs fault rate ==\n" + "\n".join(rows))
    assert os.path.exists(JSON_PATH)


def test_no_guarantee_violations_at_any_rate(sweep):
    assert all(p["violations"] == 0 for p in sweep)


def test_zero_rate_injects_nothing(sweep):
    base = [p for p in sweep if p["fault_rate"] == 0.0]
    assert base and all(p["faults_injected"] == 0 for p in base)
    assert all(p["retries"] == 0 and p["reconnects"] == 0 for p in base)


def test_faults_cost_goodput_not_availability(sweep):
    """The resilience layer converts faults into latency (goodput loss),
    not into failed operations."""
    for plan, _ in SWEEPS:
        points = [p for p in sweep if p["plan"] == plan]
        assert all(p["availability"] == 1.0 for p in points), plan
        base = next(p for p in points if p["fault_rate"] == 0.0)
        worst = next(p for p in points if p["fault_rate"] == FAULT_RATES[-1])
        if worst["faults_injected"] > 0:
            assert worst["goodput_kops"] <= base["goodput_kops"]
