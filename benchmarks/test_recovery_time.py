"""Extension experiment: recovery time vs store population.

The paper argues NVM "allows applications to checkpoint fast and
recover fast" (§1); this quantifies eFactory's recovery on our
substrate: simulated recovery time should scale linearly with the
number of objects (one header scan + per-key verification), and keys
whose heads are torn cost extra CRC-walk work, not data loss.
"""

import numpy as np
import pytest

from benchmarks.conftest import scaled
from repro.analysis.tables import Table, banner
from repro.core.recovery import recover_bucketized
from repro.sim.kernel import Environment
from repro.stores import build_store
from repro.workloads.keyspace import make_key, make_value


def _populate_and_crash(n_keys: int, value_len: int = 256, seed: int = 3):
    env = Environment()
    setup = build_store(
        "efactory",
        env,
        n_clients=1,
        config_overrides={
            "pool_size": max(8 << 20, n_keys * (value_len + 128) * 2),
            "auto_clean": False,
        },
    ).start()
    c = setup.client()

    def load():
        for i in range(n_keys):
            yield from c.put(make_key(i), make_value(i, 1, value_len))

    env.run(env.process(load()))
    # settle until the verifier drains
    while setup.server.background.backlog:
        env.run(until=env.now + 100_000)
    setup.server.stop()
    setup.fabric.crash_node(setup.server.node, np.random.default_rng(seed), 0.5)
    setup.fabric.restart_node(setup.server.node)
    return env, setup


def test_recovery_scales_linearly(benchmark, show):
    sizes = [scaled(200), scaled(400), scaled(800)]

    def run():
        out = {}
        for n in sizes:
            env, setup = _populate_and_crash(n)
            report = env.run(env.process(recover_bucketized(setup.server)))
            out[n] = report
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(["objects", "recovered", "lost", "sim recovery time"])
    for n, rep in reports.items():
        table.add(
            n,
            rep.keys_recovered + rep.keys_rolled_back,
            rep.keys_lost,
            f"{rep.duration_ns / 1e6:.2f} ms",
        )
    show(banner("Extension: recovery time vs population") + "\n" + table.render())

    for n, rep in reports.items():
        assert rep.keys_recovered + rep.keys_rolled_back == n
        assert rep.keys_lost == 0

    # linear-ish scaling: 4x objects => between 2x and 8x time
    t_small = reports[sizes[0]].duration_ns
    t_large = reports[sizes[-1]].duration_ns
    ratio = t_large / t_small
    assert 2.0 < ratio < 8.0, ratio
