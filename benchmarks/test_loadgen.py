"""Thousand-client open-loop load cells (PR 10).

The headline assertion banks PR 6's named headroom: with cross-client
completion batching armed, the kernel dispatches at most 0.8x the
events per operation of the unbatched run on the same 1k-client cell —
a deterministic, seeded comparison (wall-clock speedup is reported but
not asserted; interpreter noise swamps it on shared CI runners).
"""

from dataclasses import replace

from benchmarks.conftest import scaled
from repro.loadgen.bench import load_cell_spec
from repro.loadgen.engine import run_load

CLIENTS = 1000


def _fmt(report):
    t = report.tenants[0]
    return (
        f"{t.name}: {report.clients} clients, {t.ops} ops, "
        f"p50 {t.p50_ns / 1e3:.1f}us p99 {t.p99_ns / 1e3:.1f}us "
        f"p999 {t.p999_ns / 1e3:.1f}us slo {t.slo_fraction * 100:.1f}% "
        f"goodput {t.goodput_ops_s:.0f}/s events/op {report.events_per_op:.2f}"
    )


def test_thousand_client_completion_batching(show):
    """Batching must cut kernel events/op by >=20% on the 1k-client cell."""
    base = load_cell_spec("YCSB-C", CLIENTS, scaled(40), seed=42)
    off = run_load(replace(base, completion_batching=False))
    on = run_load(base)
    show(
        "1k-client completion batching (YCSB-C):\n"
        f"  off: {_fmt(off)}\n"
        f"  on:  {_fmt(on)}\n"
        f"  events/op ratio {on.events_per_op / off.events_per_op:.3f}"
    )
    assert on.clients == CLIENTS
    assert on.total_errors == off.total_errors == 0
    assert on.sim["batched_waits"] > 0
    assert on.events_per_op <= 0.8 * off.events_per_op


def test_thousand_client_slo_under_load(show):
    """A healthy 1k-client cell meets its SLO almost everywhere."""
    report = run_load(load_cell_spec("YCSB-B", CLIENTS, scaled(40), seed=42))
    show("1k-client YCSB-B cell:\n  " + _fmt(report))
    t = report.tenants[0]
    assert t.ops == CLIENTS * scaled(40)
    assert t.slo_fraction > 0.95
    assert t.goodput_ops_s > 0.9 * t.ops / t.window_ns * 1e9


def test_multitenant_burst_goodput(show):
    """Per-tenant SLO accounting: the bursting bulk tenant degrades its
    own goodput fraction more than the steady gold tenant's."""
    from repro.loadgen.arrivals import ArrivalCurve
    from repro.loadgen.engine import LoadSpec
    from repro.loadgen.tenants import TenantSpec
    from repro.workloads.ycsb import ycsb_a, ycsb_b

    gold = TenantSpec(
        name="gold", workload=ycsb_b(key_count=1024, value_len=128),
        clients=100, ops_per_client=scaled(40),
        rate_ops_s=100 * 2_000.0, slo_ns=15_000.0,
    )
    bulk = TenantSpec(
        name="bulk", workload=ycsb_a(key_count=1024, value_len=128),
        clients=400, ops_per_client=scaled(40),
        rate_ops_s=400 * 2_000.0, slo_ns=15_000.0,
        curve=ArrivalCurve(kind="burst", burst_factor=8.0),
    )
    report = run_load(
        LoadSpec(
            tenants=(gold, bulk), seed=42,
            completion_batching=True, batch_bucket_ns=256.0,
            admission_watermark=64,
        )
    )
    show(
        "multi-tenant burst cell:\n  "
        + "\n  ".join(_fmt(replace(report, tenants=[t])) for t in report.tenants)
    )
    g, b = report.tenants
    assert g.slo_fraction > b.slo_fraction
    assert g.ops + b.ops == 500 * scaled(40)
