"""Crash-consistency audit — the guarantees of §4/§7 made measurable.

Not a figure in the paper, but the paper's core *claims*: eFactory's
multi-version log recovers a consistent state (atomic updates) and its
durability-gated reads are monotonic across crashes, while Erda's
two-version/natural-eviction design loses already-read data and the
naive client-active scheme exposes torn objects.
"""

from repro.harness.experiments import crash_consistency, render_crash

STORES = ("efactory", "efactory_nohr", "erda", "forca", "imm", "saw", "rpc", "ca")


def test_crash_consistency(benchmark, show):
    data = benchmark.pedantic(
        lambda: crash_consistency(stores=STORES, seeds=(7, 11, 13, 17)),
        rounds=1,
        iterations=1,
    )
    show(render_crash(data))

    # No store may violate its own advertised guarantees.
    for store, reports in data.items():
        for r in reports:
            assert r.ok, (store, r.violations)

    def total(store, attr):
        return sum(getattr(r, attr) for r in data[store])

    # eFactory: atomic, monotonic, never torn.
    for store in ("efactory", "efactory_nohr"):
        assert total(store, "torn_exposed") == 0
        assert total(store, "monotonicity_losses") == 0

    # Durable-on-ack stores never lose acknowledged writes.
    for store in ("imm", "saw", "rpc"):
        assert total(store, "durability_losses") == 0

    # The documented weaknesses reproduce:
    assert total("ca", "torn_exposed") > 0  # §3's torn objects
    assert total("erda", "monotonicity_losses") > 0  # §7's criticism

    benchmark.extra_info["erda_non_monotonic"] = total(
        "erda", "monotonicity_losses"
    )
    benchmark.extra_info["ca_torn"] = total("ca", "torn_exposed")
