"""Partitioned server core — throughput and recovery scaling.

The paper's server is deliberately single-threaded (one dispatch core,
one background thread); partitioning shards that design N ways behind a
key router. Expected shapes:

* aggregate update-only PUT throughput grows monotonically with the
  partition count (each shard owns its own dispatch budget, index
  segment and log pools, so there is no cross-shard serialisation);
* post-crash recovery wall-clock *shrinks* as partitions recover their
  disjoint pools and table segments concurrently.
"""

from benchmarks.conftest import scaled
from repro.harness.experiments import (
    partition_recovery_sweep,
    partition_scaling,
    render_partition_recovery,
    render_partition_scaling,
)

COUNTS = (1, 2, 4, 8)


def test_partition_throughput_scaling(benchmark, show):
    data = benchmark.pedantic(
        lambda: partition_scaling(partition_counts=COUNTS, ops=scaled(200)),
        rounds=1,
        iterations=1,
    )
    show(render_partition_scaling(data))

    # monotone: more partitions never hurt aggregate PUT throughput
    assert data[2] >= data[1]
    assert data[4] >= data[2]
    assert data[8] >= data[4]
    # and the first doubling is a real win, not noise
    assert data[2] > 1.5 * data[1]


def test_partition_recovery_scaling(benchmark, show):
    data = benchmark.pedantic(
        lambda: partition_recovery_sweep(partition_counts=COUNTS),
        rounds=1,
        iterations=1,
    )
    show(render_partition_recovery(data))

    # shards recover in parallel: wall-clock strictly improves over the
    # monolith and keeps improving (allow slack at the tail where the
    # slowest shard dominates)
    assert data[2] < data[1]
    assert data[4] < data[2]
    assert data[8] <= data[4] * 1.05
