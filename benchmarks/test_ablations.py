"""Ablations of eFactory's design choices (DESIGN.md §5).

Beyond the paper's own factor analysis (hybrid read on/off — covered in
the Fig 9/10 benches), these isolate:

* receive batching ("multiple receiving regions", §6.1);
* the background thread's verify timeout (too short invalidates
  in-flight writes; the default does not);
* sensitivity to a slower fabric (the client-active advantage persists
  when every wire cost doubles).
"""

import pytest

from benchmarks.conftest import scaled
from repro.analysis.tables import Table, banner
from repro.harness.runner import RunSpec, run_experiment
from repro.rdma.latency import FabricTiming
from repro.workloads.ycsb import update_only, ycsb_b


def _spec(store, workload, **cfg):
    return RunSpec(
        store=store,
        workload=workload,
        n_clients=8,
        ops_per_client=scaled(300),
        warmup_ops=30,
        config_overrides=cfg,
    )


def test_recv_batching_ablation(benchmark, show):
    """recv_batching < 1 trims per-request dispatch; with batching
    disabled eFactory's PUT throughput drops toward the others'."""

    def run():
        workload = update_only(value_len=256, key_count=512)
        batched = run_experiment(_spec("efactory", workload))
        unbatched = run_experiment(
            _spec("efactory", workload, recv_batching=1.0)
        )
        return batched.throughput_mops, unbatched.throughput_mops

    batched, unbatched = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(["variant", "Mops/s"])
    t.add("recv batching (default)", batched)
    t.add("no batching", unbatched)
    show(banner("Ablation: multiple receive regions") + "\n" + t.render())
    assert batched >= unbatched * 0.999


def test_adaptive_read_recovers_hot_write_regime(benchmark, show):
    """The Fig 9(c)@4KiB deviation and its fix: under write-heavy
    zipfian load the optimistic read is mostly wasted; the adaptive-read
    extension (skip the pure attempt for recently-raced keys) claws the
    throughput back."""
    from repro.workloads.ycsb import ycsb_a

    def run():
        workload = ycsb_a(value_len=4096, key_count=1024)
        plain = run_experiment(_spec("efactory", workload))
        adaptive = run_experiment(
            _spec("efactory", workload, adaptive_read=True)
        )
        nohr = run_experiment(_spec("efactory_nohr", workload))
        return {
            "hybrid": plain.throughput_mops,
            "adaptive": adaptive.throughput_mops,
            "always-rpc": nohr.throughput_mops,
            "hybrid_fallback_share": plain.fallback_reads
            / max(1, plain.fallback_reads + plain.pure_reads),
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(["variant", "Mops/s"])
    for k in ("hybrid", "adaptive", "always-rpc"):
        t.add(k, data[k])
    show(
        banner("Ablation: adaptive hybrid read (YCSB-A, 4 KiB)")
        + "\n"
        + t.render()
        + f"\nplain hybrid fallback share: {data['hybrid_fallback_share']:.0%}"
    )
    # the regime is real (plenty of races) and the fix helps
    assert data["hybrid_fallback_share"] > 0.2
    assert data["adaptive"] >= data["hybrid"] * 0.99


def test_verify_timeout_is_safe_for_live_writes(benchmark, show):
    """The §4.3.2 timeout must never invalidate writes that are merely
    slow: with the default timeout a loaded run invalidates nothing."""

    def run():
        workload = update_only(value_len=4096, key_count=256)
        spec = _spec("efactory", workload)
        result = run_experiment(spec)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.errors == 0
    show(
        banner("Ablation: verify timeout under load")
        + f"\nthroughput {result.throughput_mops:.3f} Mops/s, 0 invalidations expected"
    )


def test_skew_sensitivity_of_hybrid_read(benchmark, show):
    """Read-write races are a *skew* phenomenon: the hotter the keys,
    the more often a GET lands inside a racing write's window and falls
    back. Uniform traffic keeps the pure-read hit rate near 100%."""
    from repro.workloads.ycsb import ycsb_b

    def run():
        out = {}
        for label, dist, theta in (
            ("uniform", "uniform", 0.99),
            ("zipf .90", "zipfian", 0.90),
            ("zipf .99", "zipfian", 0.99),
        ):
            workload = ycsb_b(
                value_len=1024,
                key_count=1024,
                distribution=dist,
                zipf_theta=theta,
            )
            result = run_experiment(_spec("efactory", workload))
            total = result.pure_reads + result.fallback_reads
            out[label] = {
                "hit_rate": result.pure_reads / max(1, total),
                "mops": result.throughput_mops,
            }
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(["distribution", "pure-read hit rate", "Mops/s"])
    for label, row in data.items():
        t.add(label, f"{row['hit_rate']:.1%}", row["mops"])
    show(banner("Ablation: key skew vs hybrid-read hit rate") + "\n" + t.render())
    assert data["uniform"]["hit_rate"] >= data["zipf .99"]["hit_rate"]
    assert data["uniform"]["hit_rate"] > 0.97


@pytest.mark.parametrize("factor", [1.0, 2.0])
def test_fabric_scaling_preserves_ordering(benchmark, show, factor):
    """Double every wire cost: eFactory must still beat SAW on writes —
    the advantage is structural (fewer round trips), not a constant."""

    def run():
        workload = update_only(value_len=1024, key_count=256)
        timing = FabricTiming().scaled(factor)
        out = {}
        for store in ("efactory", "saw"):
            spec = RunSpec(
                store=store,
                workload=workload,
                n_clients=4,
                ops_per_client=scaled(200),
                warmup_ops=20,
            )
            # route the custom fabric through config-independent path
            from repro.harness import runner as _r
            from repro.sim.kernel import Environment
            from repro.stores import build_store
            from repro.workloads.keyspace import make_key, make_value

            env = Environment()
            setup = build_store(
                store,
                env,
                fabric_timing=timing,
                config_overrides={
                    "pool_size": _r.size_pool_for(spec),
                    **({"auto_clean": False} if store.startswith("efactory") else {}),
                },
                n_clients=spec.n_clients,
            ).start()
            result = _run_simple(env, setup, spec)
            out[store] = result
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        banner(f"Ablation: fabric x{factor}")
        + f"\neFactory {data['efactory']:.3f} vs SAW {data['saw']:.3f} Mops/s"
    )
    assert data["efactory"] > data["saw"]


def _run_simple(env, setup, spec):
    """Minimal closed-loop measurement on an existing deployment."""
    from repro.sim.rng import RngRegistry
    from repro.workloads.keyspace import make_key, make_value

    w = spec.workload
    keys = [make_key(k, w.key_len) for k in range(w.key_count)]
    rngs = RngRegistry(spec.seed)
    done = {"ops": 0, "start": None, "end": 0.0}

    def client(i):
        c = setup.client(i)
        rng = rngs.stream(f"abl{i}")
        ops = w.client_stream(rng, spec.ops_per_client)
        for j, op in enumerate(ops):
            if j == spec.warmup_ops:
                if done["start"] is None or env.now < done["start"]:
                    done["start"] = env.now
            ver = j + 1
            yield from c.put(keys[op.key_id], make_value(op.key_id, ver, w.value_len))
            if j >= spec.warmup_ops:
                done["ops"] += 1
        done["end"] = max(done["end"], env.now)

    procs = [env.process(client(i)) for i in range(spec.n_clients)]
    env.run(env.all_of(procs))
    setup.server.stop()
    window = done["end"] - (done["start"] or 0.0)
    return done["ops"] / window * 1e3 if window > 0 else 0.0
