"""Figure 1 — latency of writing to remote NVMM with different methods.

Paper shapes to reproduce (§3):
* "using the client-active scheme can greatly improve the performance
  (36%)" — CA w/o persistence beats RPC decisively at large values
  (~40% at 4 KiB on our calibration);
* "SAW performs worse than RPC for all data sizes";
* "IMM achieves slightly better performance (5%) than RPC" — holds at
  the large-value end; below ~1 KiB the allocation round trip makes
  IMM/CA trail RPC on our substrate (documented in EXPERIMENTS.md).
"""

from benchmarks.conftest import scaled
from repro.harness.experiments import fig1_write_latency, render_fig1

SIZES = (64, 1024, 4096)


def test_fig1(benchmark, show):
    data = benchmark.pedantic(
        lambda: fig1_write_latency(sizes=SIZES, ops=scaled(200)),
        rounds=1,
        iterations=1,
    )
    show(render_fig1(data))

    p50 = {s: {size: v[0] for size, v in by.items()} for s, by in data.items()}

    # SAW is the slowest durable-write scheme at every size.
    for size in SIZES:
        assert p50["saw"][size] > p50["rpc"][size]
        assert p50["saw"][size] > p50["imm"][size]

    # At 4 KiB the client-active scheme wins big over RPC (paper: 36%).
    gain = p50["rpc"][4096] / p50["ca"][4096] - 1.0
    assert gain > 0.25, f"CA only {gain:.0%} faster than RPC at 4 KiB"

    # IMM ends up slightly better than RPC at the large-value end.
    assert p50["imm"][4096] < p50["rpc"][4096] * 1.02

    # CA (no durability work at all) always beats the durable
    # client-active schemes, and beats RPC too once data costs dominate
    # (the crossover sits near 2 KiB on our calibration — see
    # EXPERIMENTS.md for why the smallest sizes deviate).
    for size in (1024, 4096):
        for other in ("saw", "imm"):
            assert p50["ca"][size] < p50[other][size]
    assert p50["ca"][4096] < p50["rpc"][4096]

    benchmark.extra_info["p50_us"] = {
        s: {size: v[0] / 1000 for size, v in by.items()}
        for s, by in data.items()
    }
