"""Benchmark-suite configuration.

Each benchmark regenerates one table/figure from the paper: it runs the
corresponding simulation experiment, prints the same rows/series the
paper plots, asserts the headline *shape* relations, and reports the
simulation's wall-time through pytest-benchmark (so regressions in the
simulator itself are also visible).

``REPRO_BENCH_SCALE`` (default 1) multiplies per-run operation counts;
raise it for tighter numbers at the cost of wall time.
"""

from __future__ import annotations

import os


import pytest

#: Global scale knob for ops-per-run.
SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))


def scaled(n: int) -> int:
    return n * SCALE


#: Every rendered figure table is appended here, so the reproduced
#: numbers survive pytest's output capture (add ``-s`` to also see them
#: live). Truncated once per benchmark session.
FIGURES_PATH = os.path.join(os.path.dirname(__file__), "..", "benchmark_figures.txt")


@pytest.fixture(scope="session", autouse=True)
def _fresh_figures_file():
    with open(FIGURES_PATH, "w") as fh:
        fh.write("# Reproduced figure tables from the last benchmark run\n")
    yield


@pytest.fixture
def show():
    """Print a rendered figure table and record it in
    ``benchmark_figures.txt`` (pytest captures stdout of passing tests,
    so the artifact file is the durable record)."""

    def _show(text: str) -> None:
        print("\n" + text + "\n")
        with open(FIGURES_PATH, "a") as fh:
            fh.write("\n" + text + "\n")

    return _show
