"""Figure 10 — throughput vs number of client processes
(32 B keys / 2048 B values, §6.2).

Paper shapes:
* eFactory grows ~linearly with client count in every mix;
* "when write dominates, IMM and SAW fail to scale well" (server CPU on
  the durability path saturates) — paper: up to 2.14×/2.18× at 16
  clients;
* eFactory w/o hr already improves on Forca for reads; hybrid reads add
  more on top.
"""

import pytest

from benchmarks.conftest import scaled
from repro.harness.experiments import fig10_scalability, render_fig10

COUNTS = (1, 4, 8, 16)


def _run(workload):
    return fig10_scalability(
        workload, client_counts=COUNTS, ops=scaled(250), key_count=1024
    )


def test_fig10_update_only(benchmark, show):
    data = benchmark.pedantic(
        lambda: _run("update-only"), rounds=1, iterations=1
    )
    show(render_fig10("update-only", data))

    # eFactory keeps scaling: 16 clients >> 4 clients.
    assert data["efactory"][16] > 2.2 * data["efactory"][4]

    # IMM and SAW trail badly at full concurrency (paper: up to
    # 2.14x/2.18x; our calibration lands ~1.45x/1.9x — same shape).
    assert data["efactory"][16] > 1.35 * data["imm"][16]
    assert data["efactory"][16] > 1.6 * data["saw"][16]


def test_fig10_read_only(benchmark, show):
    data = benchmark.pedantic(lambda: _run("YCSB-C"), rounds=1, iterations=1)
    show(render_fig10("YCSB-C", data))

    # eFactory w/o hr improves on Forca (paper: 16-45%)...
    assert data["efactory_nohr"][16] > 1.1 * data["forca"][16]
    # ...and hybrid reads improve on w/o-hr further (paper: 15-23%).
    assert data["efactory"][16] > 1.05 * data["efactory_nohr"][16]
    # near-linear client scaling for eFactory reads
    assert data["efactory"][16] > 2.5 * data["efactory"][4]


def test_fig10_write_intensive(benchmark, show):
    data = benchmark.pedantic(lambda: _run("YCSB-A"), rounds=1, iterations=1)
    show(render_fig10("YCSB-A", data))
    # In the unsaturated regime eFactory leads the mixed workload, as in
    # the paper. At 16 clients our simulated op rates exceed what one
    # background CRC thread can verify (a load regime the paper's
    # testbed never reaches), hot objects stay unverified, and the
    # field compresses — EXPERIMENTS.md discusses this deviation.
    at4 = {s: data[s][4] for s in data}
    assert at4["efactory"] >= max(
        v for k, v in at4.items() if k != "efactory"
    ) * 0.98
    at16 = {s: data[s][16] for s in data}
    assert at16["efactory"] >= max(
        v for k, v in at16.items() if k != "efactory"
    ) * 0.75
    assert at16["efactory"] > at16["forca"]
