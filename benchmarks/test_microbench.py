"""Substrate microbenchmarks (real wall-clock, via pytest-benchmark).

These watch the *simulator's* own performance: kernel event rate, verb
round-trip cost in Python time, and CRC throughput — regressions here
inflate every experiment's wall time.
"""

import numpy as np

from repro.crc.crc32 import crc32, crc32_fast
from repro.nvm.device import NVMDevice
from repro.rdma.fabric import Fabric
from repro.sim.kernel import Environment


def test_kernel_event_rate(benchmark):
    """Ping-pong processes: measures events/second through the kernel."""

    def run():
        env = Environment()

        def ping(n):
            for _ in range(n):
                yield env.timeout(1.0)

        for _ in range(4):
            env.process(ping(2500))
        env.run()
        return env.now

    assert benchmark(run) == 2500.0


def test_verb_roundtrip_wall_cost(benchmark):
    """Wall-clock cost of simulated one-sided op pairs."""

    def run():
        env = Environment()
        fabric = Fabric(env, jitter_ns=0.0)
        server = fabric.create_node("s", device=NVMDevice(env, 1 << 20))
        client = fabric.create_node("c")
        ep = fabric.connect(client, server)
        mr = server.register_memory(0, 1 << 20)

        def work():
            for i in range(200):
                yield from ep.write(mr.rkey, (i % 64) * 1024, b"x" * 512)
                yield from ep.read(mr.rkey, (i % 64) * 1024, 512)

        env.run(env.process(work()))
        return env.now

    assert benchmark(run) > 0


def test_crc_fast_throughput(benchmark):
    data = np.random.default_rng(0).bytes(1 << 20)
    result = benchmark(crc32_fast, data)
    assert result == crc32_fast(data)


def test_crc_reference_small(benchmark):
    data = bytes(range(256))
    assert benchmark(crc32, data) == crc32_fast(data)


def test_buffer_flush_sweep(benchmark):
    """Dirty-tracking sweep cost (NumPy-vectorised path)."""
    from repro.mem.buffer import PersistentBuffer

    buf = PersistentBuffer(1 << 20)
    rng = np.random.default_rng(1)
    addrs = rng.integers(0, (1 << 20) - 256, size=500)

    def run():
        for a in addrs:
            buf.write(int(a), b"y" * 256)
        return buf.flush(0, 1 << 20)

    assert benchmark(run) >= 0


def test_amortization_simulated_speedups(benchmark):
    """The PR-5 hot-path claims, in *simulated* time: the doorbell
    pipeline at batch >= 8 at least doubles PUT throughput, and a warm
    location cache improves pure-GET hit latency by >= 1.3x."""
    from repro.harness.bench import run_bench_suite

    suite = benchmark(run_bench_suite, ops=128, put_batch=8)
    rows = {(r["bench"], r["partitions"]): r for r in suite["results"]}
    for parts in (1, 4):
        put = rows[("put", parts)]
        many = rows[("put_many", parts)]
        assert many["ops_per_sec"] >= 2.0 * put["ops_per_sec"], (
            f"put_many at batch 8 only "
            f"{many['ops_per_sec'] / put['ops_per_sec']:.2f}x sequential "
            f"put at {parts} partition(s)"
        )
        uncached = rows[("get_uncached", parts)]
        cached = rows[("get_cached", parts)]
        assert cached["cache_misses"] == 0  # every measured GET hit
        assert uncached["p50_ns"] >= 1.3 * cached["p50_ns"], (
            f"cached GET p50 only "
            f"{uncached['p50_ns'] / cached['p50_ns']:.2f}x better "
            f"at {parts} partition(s)"
        )
