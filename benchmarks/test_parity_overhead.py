"""PR-8 acceptance cell: the integrity tier's PUT-throughput overhead.

The parity delta-XOR, ledger CRC, and coalesced region flushes all ride
the *background* verifier; the acked-PUT path is untouched. The bar is
<= 15% throughput loss with parity + the integrity tree armed.
"""

from repro.harness.bench import run_parity_bench_suite


def test_parity_put_overhead_within_budget():
    out = run_parity_bench_suite(ops=192, value_len=64, partitions=(1,))
    cells = {c["bench"]: c for c in out["results"]}
    off, on = cells["put_parity_off"], cells["put_parity_on"]
    assert on["overhead_frac"] <= 0.15, on
    assert on["ops_per_sec"] >= 0.85 * off["ops_per_sec"]
    # the "on" cell really did the extra background integrity work
    assert on["events_processed"] > off["events_processed"]
