"""Domain-aware static analysis suite (``python -m repro staticcheck``).

Four AST/CFG-based checkers enforce, at review time, the conventions the
rest of the repo can only test at runtime:

1. **Persist-ordering** (:mod:`repro.staticcheck.persist`, ``PO``) —
   durable writes must reach a ``persist()``/``flush()`` boundary
   before any publish (atomic pointer store, index insert, RPC reply).
2. **Yield-point races** (:mod:`repro.staticcheck.yieldrace`, ``YP``) —
   shared-state read-modify-writes must not straddle a cooperative
   yield point without re-validation.
3. **Determinism lint** (:mod:`repro.staticcheck.determinism`,
   ``DT``/``EX``) — no wall clock, no unseeded randomness, no
   id()-keyed or raw-set ordering, no over-broad excepts.
4. **Registry cross-check** (:mod:`repro.staticcheck.registry`,
   ``RG``) — fire() sites, fault-rule patterns, plan names and CLI
   metrics keys must agree with the generated registries, in both
   directions.

See DESIGN.md §14 for the architecture and rule catalog, and
``staticcheck.toml`` for the reviewed suppression baseline.
"""

from repro.staticcheck.model import RULES, Finding
from repro.staticcheck.runner import (
    DEFAULT_BASELINE,
    StaticCheckReport,
    run_staticcheck,
)

__all__ = [
    "DEFAULT_BASELINE",
    "Finding",
    "RULES",
    "StaticCheckReport",
    "run_staticcheck",
]
