"""DT/EX: determinism + exception-hygiene lint for ``src/repro/``.

Everything under ``src/repro`` must be a pure function of
``(config, seed, workload)``: fig1/fig2 and the 82-point crash matrix
are asserted *bit-identical* across runs and across the analytic fast
path (ROADMAP standing invariant). One wall-clock read or unseeded
draw in a scheduling- or serialization-feeding path breaks that
silently and only surfaces as a flaky chaos run. Randomness must come
from :class:`repro.sim.rng.RngRegistry` streams; simulated time from
``env.now``.

Rules:

* **DT001** — wall-clock: ``time.time``/``time.time_ns``/
  ``time.monotonic``/``time.perf_counter`` (the kernel bench's
  wall-clock cells are a deliberate, suppressed exception).
* **DT002** — calendar time: ``datetime.now``/``utcnow``/``today``.
* **DT003** — unseeded randomness: module-level ``random.*``,
  ``np.random.<draw>`` (global-state numpy draws; ``default_rng`` and
  ``Generator`` methods are fine), ``os.urandom``, ``uuid.uuid1/4``,
  ``secrets.*``.
* **DT004** — ``id()``-keyed ordering: ``key=id`` in ``sort``/
  ``sorted``/``min``/``max``, or ``id(...)`` as a mapping/set key
  (CPython address order varies run to run).
* **DT005** — iterating an unordered ``set`` into scheduling or
  serialization: ``for`` / comprehension over a set literal,
  ``set(...)`` call, set comprehension, or a local bound to one —
  unless wrapped in ``sorted(...)``.
* **EX001** — bare ``except:``, ``except Exception:`` or
  ``except BaseException:``: the tree's own
  :class:`~repro.errors.ReproError` hierarchy exists precisely so
  library failures can be caught without masking programming errors
  (and without swallowing :class:`~repro.errors.PowerFailure`).
"""

from __future__ import annotations

import ast

from repro.staticcheck.model import Finding, Module, attr_chain

__all__ = ["check_determinism"]

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
}
_CALENDAR = {
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
}
#: Global-state draws on the stdlib ``random`` module.
_RANDOM_MODULE_FNS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "random_sample",
    "seed",
    "getrandbits",
}
_OTHER_ENTROPY = {
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}
_SORTISH = {"sorted", "min", "max"}


def _np_random_chain(name: str) -> bool:
    """``np.random.<draw>`` / ``numpy.random.<draw>`` global-state use."""
    seeded = (
        "default_rng",
        "Generator",
        "SeedSequence",
        # explicitly-seeded bit generators
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    )
    for prefix in ("np.random.", "numpy.random."):
        if name.startswith(prefix):
            tail = name[len(prefix):]
            return tail not in seeded
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, module: Module, findings: list[Finding]) -> None:
        self.module = module
        self.findings = findings
        self.symbol_stack: list[str] = []
        #: locals bound to set expressions, per function scope
        self.set_locals: list[set[str]] = [set()]

    # -- bookkeeping ---------------------------------------------------------
    @property
    def symbol(self) -> str:
        return ".".join(self.symbol_stack)

    def add(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.path,
                line=getattr(node, "lineno", 1),
                symbol=self.symbol,
                message=message,
            )
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.symbol_stack.append(node.name)
        self.set_locals.append(set())
        self.generic_visit(node)
        self.set_locals.pop()
        self.symbol_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.symbol_stack.append(node.name)
        self.generic_visit(node)
        self.symbol_stack.pop()

    # -- EX001 ---------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        bad = None
        if node.type is None:
            bad = "bare except"
        else:
            name = attr_chain(node.type)
            if name in ("Exception", "BaseException"):
                bad = f"except {name}"
        if bad is not None:
            self.add(
                "EX001",
                node,
                f"{bad}: catch the specific expected types (the "
                "ReproError hierarchy exists for this; broad catches "
                "also swallow PowerFailure)",
            )
        self.generic_visit(node)

    # -- set tracking for DT005 ---------------------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = attr_chain(node.func)
            if name == "set" or name == "frozenset":
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.set_locals[-1]
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                if self._is_set_expr(node.value):
                    self.set_locals[-1].add(target.id)
                else:
                    self.set_locals[-1].discard(target.id)
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            self.add(
                "DT005",
                iter_node,
                "iterating an unordered set: wrap in sorted(...) so "
                "downstream scheduling/serialization order is stable",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = attr_chain(node.func)
        if name is not None:
            if name in _WALL_CLOCK:
                self.add(
                    "DT001",
                    node,
                    f"{name}() reads the wall clock; simulated time is "
                    "env.now",
                )
            elif name in _CALENDAR:
                self.add(
                    "DT002",
                    node,
                    f"{name}() is nondeterministic across runs",
                )
            elif name in _OTHER_ENTROPY or name.startswith("secrets."):
                self.add(
                    "DT003",
                    node,
                    f"{name}() draws OS entropy; use a seeded "
                    "RngRegistry stream",
                )
            elif name.startswith("random.") and name.split(".", 1)[1] in (
                _RANDOM_MODULE_FNS
            ):
                self.add(
                    "DT003",
                    node,
                    f"{name}() uses the global random state; use a "
                    "seeded RngRegistry stream",
                )
            elif _np_random_chain(name):
                self.add(
                    "DT003",
                    node,
                    f"{name}() uses numpy's global RNG; use a seeded "
                    "RngRegistry stream (np.random.default_rng)",
                )
            if name in _SORTISH or name.endswith(".sort"):
                self._check_id_key(node)
            if name == "sorted" and node.args:
                # sorted(set) is the sanctioned way to iterate one
                pass
        self.generic_visit(node)

    def _check_id_key(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            target = kw.value
            if isinstance(target, ast.Name) and target.id == "id":
                self.add(
                    "DT004",
                    node,
                    "ordering by id(): CPython addresses vary run to "
                    "run; key on a stable field",
                )
            elif isinstance(target, ast.Lambda):
                for sub in ast.walk(target.body):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "id"
                    ):
                        self.add(
                            "DT004",
                            node,
                            "ordering by id(): CPython addresses vary "
                            "run to run; key on a stable field",
                        )
                        break

    # -- DT004: id() as mapping key -------------------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            isinstance(node.ctx, ast.Store)
            and isinstance(node.slice, ast.Call)
            and isinstance(node.slice.func, ast.Name)
            and node.slice.func.id == "id"
        ):
            self.add(
                "DT004",
                node,
                "mapping keyed by id(): iteration order then depends "
                "on allocation addresses",
            )
        self.generic_visit(node)


def check_determinism(modules: list[Module]) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        _Visitor(module, findings).visit(module.tree)
    return findings
