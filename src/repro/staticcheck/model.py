"""Shared analysis substrate: findings, module loading, AST helpers.

Every checker in :mod:`repro.staticcheck` works over the same parsed
view of the tree — a list of :class:`Module` records (path, dotted
module name, AST) plus a project-wide :class:`FunctionIndex` of every
function/method definition. Loading and indexing happen once per run;
the four checkers are pure functions from that view to
:class:`Finding` lists.

Rule IDs are stable and namespaced by checker:

* ``PO0xx`` — persist-ordering (:mod:`repro.staticcheck.persist`)
* ``YP0xx`` — yield-point races (:mod:`repro.staticcheck.yieldrace`)
* ``DT0xx`` / ``EX0xx`` — determinism + exception-hygiene lint
  (:mod:`repro.staticcheck.determinism`)
* ``RG0xx`` — site/counter registry cross-check
  (:mod:`repro.staticcheck.registry`)

Suppressions (``staticcheck.toml``) key on these IDs, so renumbering a
rule is a breaking change to every baseline file downstream.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "Finding",
    "FunctionIndex",
    "FunctionInfo",
    "Module",
    "RULES",
    "attr_chain",
    "call_name",
    "call_tail",
    "load_modules",
    "walk_functions",
]

#: Rule catalog: id -> one-line description (rendered by --list-rules
#: and DESIGN.md §14; the fixture tests assert each id fires).
RULES: dict[str, str] = {
    "PO001": "publish/atomic store not dominated by a persist of the "
    "written range (flush-at-the-destination violation)",
    "PO002": "RPC reply reachable while durable writes are unpersisted",
    "YP001": "read-modify-write of shared state straddles a sim yield "
    "point without re-reading (stale value published after resume)",
    "DT001": "wall-clock call (time.time/monotonic/perf_counter) in "
    "simulation code",
    "DT002": "datetime.now/utcnow/today in simulation code",
    "DT003": "unseeded randomness (random.*, np.random.*, os.urandom, "
    "uuid.uuid4, secrets.*)",
    "DT004": "id()-keyed ordering (sort key or mapping key)",
    "DT005": "iteration over an unordered set feeding scheduling or "
    "serialization",
    "EX001": "bare or over-broad except handler (except / "
    "except Exception / except BaseException)",
    "RG001": "fire() names an injection site missing from the registry",
    "RG002": "fire() f-string site matches no registered site family",
    "RG003": "registered injection site is never fired (dead site)",
    "RG004": "fault-rule site pattern matches no registered site",
    "RG005": "plan-name set inconsistency (NODE_KILL_PLANS vs "
    "SHIPPED_PLANS)",
    "RG006": "CLI table references a metrics/report key no producer "
    "defines",
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic, addressable by a baseline suppression."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str
    symbol: str = ""  # dotted function/method the finding is inside

    def render(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}: {self.rule}{where} {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }


@dataclass(frozen=True)
class Module:
    """One parsed source file."""

    path: str  # repo-relative
    name: str  # dotted module name ("repro.core.server")
    tree: ast.Module


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    module: Module
    qualname: str  # "EFactoryServer.publish_object" or "recover_erda"
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_generator(self) -> bool:
        return _contains_yield(self.node)


@dataclass
class FunctionIndex:
    """Name-based call resolution over every definition in the run.

    Python has no static dispatch, so ``x.foo()`` resolves to *every*
    known ``foo`` — the standard flow-insensitive approximation. Good
    enough here because this tree's method names are distinctive
    (``persist_object``, ``repl_wait``); collisions only widen
    summaries, never narrow them, so the approximation is conservative
    for both the may-yield and persists-before-return analyses.
    """

    by_name: dict[str, list[FunctionInfo]] = field(default_factory=dict)
    functions: list[FunctionInfo] = field(default_factory=list)

    def add(self, info: FunctionInfo) -> None:
        self.functions.append(info)
        self.by_name.setdefault(info.name, []).append(info)

    def resolve(self, name: str) -> list[FunctionInfo]:
        """Candidate definitions for a call to bare/attribute ``name``."""
        return self.by_name.get(name, [])


def _contains_yield(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            # yields inside a nested def belong to the nested function
            if _owner_function(fn, node) is fn:
                return True
    return False


def _owner_function(root: ast.AST, target: ast.AST) -> Optional[ast.AST]:
    """The innermost function that lexically owns ``target``."""
    owner = {id(root): root}

    def visit(node: ast.AST, fn: ast.AST) -> Optional[ast.AST]:
        if node is target:
            return fn
        for child in ast.iter_child_nodes(node):
            nxt = fn
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                nxt = child
            found = visit(child, nxt)
            if found is not None:
                return found
        return None

    return visit(root, root)


def attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted source form of a Name/Attribute chain, or None.

    ``self.device.buffer`` -> ``"self.device.buffer"``; anything with a
    call/subscript in the middle breaks the chain (returns None).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """Full dotted name of a call's target, when it is a plain chain."""
    return attr_chain(call.func)


def call_tail(call: ast.Call) -> Optional[str]:
    """Last component of the call target (method name), chain or not."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def load_modules(root: str, *, rel_to: Optional[str] = None) -> list[Module]:
    """Parse every ``.py`` under ``root`` (sorted, deterministic).

    ``rel_to`` sets the base for repo-relative paths in findings
    (defaults to the parent of ``root``'s package directory, falling
    back to the current working directory).
    """
    root = os.path.abspath(root)
    base = os.path.abspath(rel_to) if rel_to else os.getcwd()
    modules: list[Module] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__" and not d.startswith(".")
        )
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            full = os.path.join(dirpath, fname)
            rel = os.path.relpath(full, base).replace(os.sep, "/")
            with open(full, "r", encoding="utf-8") as fh:
                source = fh.read()
            tree = ast.parse(source, filename=rel)
            modules.append(Module(path=rel, name=_module_name(full, root), tree=tree))
    return modules


def _module_name(full: str, root: str) -> str:
    """Dotted module name relative to the scanned root's package."""
    rel = os.path.relpath(full, os.path.dirname(root))
    rel = rel[:-3] if rel.endswith(".py") else rel
    parts = rel.split(os.sep)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def walk_functions(module: Module) -> Iterator[FunctionInfo]:
    """Yield every function/method with a class-qualified name."""

    def visit(node: ast.AST, prefix: str) -> Iterator[FunctionInfo]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield FunctionInfo(module=module, qualname=qual, node=child)
                yield from visit(child, qual + ".")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(module.tree, "")


def build_index(modules: list[Module]) -> FunctionIndex:
    index = FunctionIndex()
    for module in modules:
        for info in walk_functions(module):
            index.add(info)
    return index


__all__.append("build_index")
