"""RG: site/counter registry cross-check.

The chaos, crash-matrix and metrics machinery is stitched together by
string literals: ``injector.fire("nvm.persist")`` must agree with the
site a :class:`~repro.faults.plan.FaultRule` targets, the crash matrix
counts, and the registry documents — and the CLI's report tables
subscript metrics dicts other modules build. A typo in any of them
ships silently today: the rule never fires, the table raises at
runtime, or the dead site rots. This checker closes the loop against
the fault-site registry (:mod:`repro.faults.sites`) in *both*
directions:

* **RG001** — ``fire("<literal>")`` whose site is not registered.
* **RG002** — ``fire(f"...")`` whose literal prefix matches no
  registered site family (``bg.cleaner``, ``cluster`` ...).
* **RG003** — a registered site that no code fires (dead registry row;
  delete it or restore the hook).
* **RG004** — a ``FaultRule(site=...)`` literal pattern that can match
  no registered site (the rule would silently never trigger).
* **RG005** — plan-name bookkeeping: ``NODE_KILL_PLANS`` entries
  missing from ``SHIPPED_PLANS``, or a ``SHIPPED_PLANS`` key whose
  builder constructs a plan under a different name.
* **RG006** — a CLI table subscripting a metrics/report key
  (``row["shipped_records"]`` / ``res.get("retries")``) that no
  producer dict in the tree defines.

Sites fired through f-strings are matched by their literal prefix; the
registry's closed families enumerate the suffixes, so a family member
nothing can interpolate is still reported dead via RG003 only when no
f-string covers its family.
"""

from __future__ import annotations

import ast

from repro.faults import sites as site_registry
from repro.errors import ConfigError
from repro.staticcheck.model import Finding, Module, attr_chain, call_tail

__all__ = ["check_registry"]


def _fstring_prefix(node: ast.JoinedStr) -> str:
    """Leading literal text of an f-string, up to the first hole."""
    prefix = ""
    for part in node.values:
        if isinstance(part, ast.Constant) and isinstance(part.value, str):
            prefix += part.value
        else:
            break
    return prefix


def _symbol_of(module: Module, target: ast.AST) -> str:
    """Qualified name of the function lexically containing ``target``."""
    result = ""

    def visit(node: ast.AST, prefix: str) -> bool:
        nonlocal result
        if node is target:
            result = prefix.rstrip(".")
            return True
        for child in ast.iter_child_nodes(node):
            nxt = prefix
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nxt = f"{prefix}{child.name}."
            elif isinstance(child, ast.ClassDef):
                nxt = f"{prefix}{child.name}."
            if visit(child, nxt):
                return True
        return False

    visit(module.tree, "")
    return result


class _Collector(ast.NodeVisitor):
    """One pass per module: fire sites, rule literals, dict keys."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.fired_literals: list[tuple[str, ast.Call]] = []
        self.fired_prefixes: list[tuple[str, ast.Call]] = []
        self.rule_sites: list[tuple[str, ast.Call]] = []
        self.producer_keys: set[str] = set()
        self.consumer_keys: list[tuple[str, ast.AST]] = []
        self.shipped_plans: dict[str, str] = {}  # key -> builder name
        self.node_kill_plans: list[tuple[str, ast.AST]] = []
        self.plan_names_by_builder: dict[str, str] = {}

    # fire("...") / fire(f"...") / the qp verbs' _inject("...") wrapper
    def visit_Call(self, node: ast.Call) -> None:
        tail = call_tail(node)
        if tail in ("fire", "_inject") and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                self.fired_literals.append((arg.value, node))
            elif isinstance(arg, ast.JoinedStr):
                self.fired_prefixes.append((_fstring_prefix(arg), node))
        elif tail == "FaultRule":
            for kw in node.keywords:
                if (
                    kw.arg == "site"
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                ):
                    self.rule_sites.append((kw.value.value, node))
        elif tail == "FaultPlan" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                fn = _symbol_of(self.module, node)
                if fn:
                    self.plan_names_by_builder.setdefault(fn, first.value)
        elif tail == "get" and node.args:
            key = node.args[0]
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                self.consumer_keys.append((key.value, node))
        elif tail == "dict":
            for kw in node.keywords:
                if kw.arg is not None:
                    self.producer_keys.add(kw.arg)
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                self.producer_keys.add(key.value)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.slice, ast.Constant) and isinstance(
            node.slice.value, str
        ):
            if isinstance(node.ctx, ast.Store):
                self.producer_keys.add(node.slice.value)
            else:
                self.consumer_keys.append((node.slice.value, node))
        self.generic_visit(node)

    def _handle_binding(
        self, name: str, value: ast.AST, node: ast.stmt
    ) -> None:
        if name == "SHIPPED_PLANS" and isinstance(value, ast.Dict):
            for key, builder in zip(value.keys, value.values):
                if isinstance(key, ast.Constant):
                    self.shipped_plans[str(key.value)] = attr_chain(builder) or ""
        elif name == "NODE_KILL_PLANS":
            for sub in ast.walk(value):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    self.node_kill_plans.append((sub.value, node))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._handle_binding(target.id, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            self._handle_binding(node.target.id, node.value, node)
        self.generic_visit(node)


def check_registry(modules: list[Module]) -> list[Finding]:
    findings: list[Finding] = []
    collectors = []
    for module in modules:
        collector = _Collector(module)
        collector.visit(module.tree)
        collectors.append(collector)

    known = set(site_registry.all_known_sites())
    families = site_registry.family_prefixes()
    fired_sites: set[str] = set()
    fired_family_prefixes: set[str] = set()
    producer_keys: set[str] = set()

    # pass 1: collect + RG001/RG002/RG004
    for c in collectors:
        producer_keys |= c.producer_keys
        for site, node in c.fired_literals:
            fired_sites.add(site)
            if not site_registry.is_known_site(site):
                findings.append(
                    Finding(
                        rule="RG001",
                        path=c.module.path,
                        line=node.lineno,
                        symbol=_symbol_of(c.module, node),
                        message=(
                            f"fire({site!r}): site is not in the "
                            "registry (repro/faults/sites.py) — typo, "
                            "or register it"
                        ),
                    )
                )
        for prefix, node in c.fired_prefixes:
            trimmed = prefix.rstrip(".")
            match = next(
                (
                    fam
                    for fam in families
                    if trimmed == fam or prefix.startswith(fam + ".")
                ),
                None,
            )
            if match is None:
                findings.append(
                    Finding(
                        rule="RG002",
                        path=c.module.path,
                        line=node.lineno,
                        symbol=_symbol_of(c.module, node),
                        message=(
                            f"fire(f{prefix + '...'!r}): literal prefix "
                            "matches no registered site family"
                        ),
                    )
                )
            else:
                fired_family_prefixes.add(match)
        for pattern, node in c.rule_sites:
            try:
                site_registry.validate_pattern(pattern)
            except ConfigError as exc:
                findings.append(
                    Finding(
                        rule="RG004",
                        path=c.module.path,
                        line=node.lineno,
                        symbol=_symbol_of(c.module, node),
                        message=str(exc),
                    )
                )

    # pass 2: RG003 dead sites (both directions of RG001/RG002)
    registry_module = "src/repro/faults/sites.py"
    for row in site_registry.SITES:
        if row.dynamic:
            if row.name not in fired_family_prefixes:
                findings.append(
                    Finding(
                        rule="RG003",
                        path=registry_module,
                        line=1,
                        message=(
                            f"registered dynamic site family "
                            f"{row.name!r} is never fired "
                            f"(expected from {row.fired_by})"
                        ),
                    )
                )
            continue
        for name in row.site_names():
            if name in fired_sites:
                continue
            if row.members is not None and row.name in fired_family_prefixes:
                continue  # family fired via f-string interpolation
            findings.append(
                Finding(
                    rule="RG003",
                    path=registry_module,
                    line=1,
                    message=(
                        f"registered site {name!r} is never fired "
                        f"(expected from {row.fired_by})"
                    ),
                )
            )

    # pass 3: RG005 plan bookkeeping
    shipped: dict[str, str] = {}
    plan_names: dict[str, str] = {}
    for c in collectors:
        shipped.update(c.shipped_plans)
        plan_names.update(c.plan_names_by_builder)
    for c in collectors:
        for name, node in c.node_kill_plans:
            if shipped and name not in shipped:
                findings.append(
                    Finding(
                        rule="RG005",
                        path=c.module.path,
                        line=node.lineno,
                        message=(
                            f"NODE_KILL_PLANS entry {name!r} is not a "
                            "SHIPPED_PLANS key"
                        ),
                    )
                )
    for key, builder in shipped.items():
        built = plan_names.get(builder)
        if built is not None and built != key:
            findings.append(
                Finding(
                    rule="RG005",
                    path=registry_module,
                    line=1,
                    message=(
                        f"SHIPPED_PLANS[{key!r}] builds a plan named "
                        f"{built!r}; chaos reports and suppressions "
                        "will disagree"
                    ),
                )
            )

    # pass 4: RG006 CLI consumer keys vs producer universe
    for c in collectors:
        if not c.module.path.endswith("cli.py"):
            continue
        for key, node in c.consumer_keys:
            if key in producer_keys:
                continue
            findings.append(
                Finding(
                    rule="RG006",
                    path=c.module.path,
                    line=getattr(node, "lineno", 1),
                    symbol=_symbol_of(c.module, node),
                    message=(
                        f"CLI references key {key!r} that no metrics/"
                        "report producer in the tree defines"
                    ),
                )
            )
    return findings
