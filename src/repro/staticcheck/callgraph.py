"""Interprocedural summaries over the name-resolved call graph.

Two fixpoints feed the flow-sensitive checkers:

**May-yield** — in this codebase's cooperative-concurrency model
(generator processes driven by :mod:`repro.sim.kernel`), control can
only leave a function at an explicit ``yield`` (an Event handed to the
kernel — ``env.timeout``, verb waits, RPC waits) or at a ``yield from``
of a helper that itself may yield. Plain calls *cannot* deschedule the
caller, which is exactly what makes a static race detector tractable:
the yield points are syntactic. A function's summary is therefore: it
may yield iff it contains a bare ``yield``, or a ``yield from`` whose
callee resolves to a may-yield function (unresolved callees are assumed
yielding — conservative).

**Persists-before-return** — for the persist-ordering checker: a helper
counts as a persist barrier at its call sites iff every return path
executes a persist/flush operation after its last durable write. We
approximate with "the function body, walked in order with branch
joins, ends clean" (see :mod:`repro.staticcheck.persist` for the
vocabulary); the fixpoint lets barriers compose (a helper that calls a
barrier helper last is itself a barrier).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.staticcheck.model import FunctionIndex, FunctionInfo, call_tail

__all__ = ["YieldSummary", "compute_may_yield", "yield_from_target"]


def yield_from_target(node: ast.YieldFrom) -> str | None:
    """Callee name of ``yield from f(...)`` / ``yield from x.f(...)``."""
    value = node.value
    if isinstance(value, ast.Call):
        return call_tail(value)
    return None


@dataclass
class YieldSummary:
    """may_yield[fn-name] — union over same-name definitions."""

    may_yield: dict[str, bool] = field(default_factory=dict)

    def call_may_yield(self, callee: str | None) -> bool:
        """Would ``yield from callee(...)`` be a scheduling point?

        Unknown callees (stdlib, builtins, dynamically-bound) are
        assumed yielding: a false "yields" widens the race window the
        checker considers, never hides one.
        """
        if callee is None:
            return True
        return self.may_yield.get(callee, True)


#: Generator helpers that are pure data producers (consumed by ``for``
#: loops / ``list()``, never driven by the kernel): yielding *values*,
#: not Events. ``yield from`` of these is not a scheduling point. The
#: may-yield fixpoint discovers event-yielding helpers on its own; this
#: set only prevents data generators from polluting the summary via the
#: shared-name resolution.
_DATA_GENERATOR_NAMES = frozenset({"site_names", "walk_functions", "visit"})


def compute_may_yield(index: FunctionIndex) -> YieldSummary:
    """Fixpoint: does each named function contain a kernel yield point?

    Seeds: any function with a bare ``yield`` may yield (in this tree a
    bare yield inside a sim process always hands an Event to the
    kernel; data generators are listed in ``_DATA_GENERATOR_NAMES``).
    Then ``yield from`` edges propagate until stable. Names are merged
    across same-name definitions (see ``FunctionIndex``).
    """
    own_yield: dict[str, bool] = {}
    edges: dict[str, set[str]] = {}
    known: set[str] = set()
    for info in index.functions:
        name = info.name
        known.add(name)
        bare, callees = _scan_yields(info)
        own_yield[name] = own_yield.get(name, False) or bare
        edges.setdefault(name, set()).update(callees)

    may: dict[str, bool] = {
        name: own_yield.get(name, False) and name not in _DATA_GENERATOR_NAMES
        for name in known
    }
    changed = True
    while changed:
        changed = False
        for name in known:
            if may[name]:
                continue
            for callee in edges.get(name, ()):
                # unresolved yield-from callee => assume yielding
                if callee not in known or may.get(callee, False):
                    may[name] = True
                    changed = True
                    break
    return YieldSummary(may_yield=may)


def _scan_yields(info: FunctionInfo) -> tuple[bool, set[str]]:
    """(has bare yield, yield-from callee names) for one definition."""
    bare = False
    callees: set[str] = set()
    fn = info.node

    class V(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if node is not fn:
                return  # nested def: its yields are its own
            self.generic_visit(node)

        visit_AsyncFunctionDef = visit_FunctionDef

        def visit_Lambda(self, node: ast.Lambda) -> None:
            return

        def visit_Yield(self, node: ast.Yield) -> None:
            nonlocal bare
            bare = True
            self.generic_visit(node)

        def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
            target = yield_from_target(node)
            if target is None:
                nonlocal bare
                bare = True  # yield from <non-call>: assume event source
            else:
                callees.add(target)
            self.generic_visit(node)

    V().visit(fn)
    return bare, callees
