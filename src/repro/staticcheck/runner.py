"""Orchestration: load the tree once, run the four checkers, report.

``python -m repro staticcheck`` lands here. The runner is a pure
function from (paths, baseline) to a :class:`StaticCheckReport`; the
CLI renders it as a table and exits non-zero on any unsuppressed
finding, which is what gates CI ahead of the chaos/bench jobs.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.staticcheck import determinism, persist, registry, yieldrace
from repro.staticcheck.callgraph import compute_may_yield
from repro.staticcheck.model import (
    Finding,
    Module,
    RULES,
    build_index,
    load_modules,
)
from repro.staticcheck.suppress import Baseline, Suppression, load_baseline

__all__ = ["StaticCheckReport", "run_staticcheck", "DEFAULT_BASELINE"]

DEFAULT_BASELINE = "staticcheck.toml"

#: checker key -> callable run order (stable for reports)
CHECKERS = ("persist", "yieldrace", "determinism", "registry")


@dataclass
class StaticCheckReport:
    findings: list[Finding] = field(default_factory=list)  # unsuppressed
    suppressed: list[Finding] = field(default_factory=list)
    unused_suppressions: list[Suppression] = field(default_factory=list)
    modules_scanned: int = 0
    functions_scanned: int = 0
    elapsed_s: float = 0.0
    baseline_path: str = ""
    per_checker: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "modules_scanned": self.modules_scanned,
            "functions_scanned": self.functions_scanned,
            "elapsed_s": round(self.elapsed_s, 3),
            "baseline": self.baseline_path,
            "rules": dict(RULES),
            "per_checker_raw_findings": dict(self.per_checker),
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "unused_suppressions": [
                {"rule": s.rule, "path": s.path, "reason": s.reason}
                for s in self.unused_suppressions
            ],
        }


def run_staticcheck(
    root: str = "src/repro",
    *,
    baseline: Optional[str] = DEFAULT_BASELINE,
    rules: Optional[set[str]] = None,
    rel_to: Optional[str] = None,
) -> StaticCheckReport:
    """Run every checker over the tree rooted at ``root``.

    ``baseline`` names a ``staticcheck.toml`` (None or a missing
    default path means no suppressions). ``rules`` restricts output to
    rule-id prefixes (e.g. ``{"PO", "DT003"}``).
    """
    # Wall clock here is reporting-only (the <30s budget in CI), never
    # fed back into any analysis decision.
    t0 = time.perf_counter()
    modules = load_modules(root, rel_to=rel_to)
    index = build_index(modules)
    yields = compute_may_yield(index)

    raw: list[Finding] = []
    per_checker: dict[str, int] = {}
    for name, result in (
        ("persist", persist.check_persist_ordering(modules, index)),
        ("yieldrace", yieldrace.check_yield_races(modules, index, yields)),
        ("determinism", determinism.check_determinism(modules)),
        ("registry", registry.check_registry(modules)),
    ):
        per_checker[name] = len(result)
        raw.extend(result)

    if rules:
        raw = [
            f
            for f in raw
            if any(f.rule == r or f.rule.startswith(r) for r in rules)
        ]
    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    base = Baseline()
    baseline_path = ""
    if baseline is not None and os.path.exists(baseline):
        base = load_baseline(baseline)
        baseline_path = baseline
    live, quiet = base.filter(raw)

    return StaticCheckReport(
        findings=live,
        suppressed=quiet,
        unused_suppressions=base.unused(),
        modules_scanned=len(modules),
        functions_scanned=len(index.functions),
        elapsed_s=time.perf_counter() - t0,
        baseline_path=baseline_path,
        per_checker=per_checker,
    )
