"""PO: persist-ordering checker (flush-at-the-destination discipline).

The durable-publish invariant this tree inherits from the paper (and
from the NVTraverse / durable-sets lineage in PAPERS.md): object bytes
must reach a ``persist()``/``flush()`` boundary *before* any operation
that makes them reachable — an 8-byte atomic pointer/slot store, a hash
entry insert, or an RPC reply acking durability. A publish of
unpersisted bytes is exactly the bug class the crash matrix exists to
catch at runtime; this checker catches it at review time.

Analysis model
--------------
Flow-sensitive walk of each function body in statement order (branches
analyzed independently from the pre-state and joined by union of
surviving facts — i.e. a write is only considered persisted when every
path persists it; loop bodies are walked once).

* A *write op* (``pool.write``, ``device.copy_in`` ...) adds a dirty
  fact tagged with the write's base token (the receiver/argument names)
  — a cheap alias class standing in for the written range.
* A *persist op* (``persist``, ``flush``, ``persist_object``,
  ``persist_header`` ...) clears facts whose token appears among the
  persist call's receiver or argument names; a persist with no
  matchable token clears everything (conservative against noise, not
  against bugs: the no-persist-at-all case is what PO001 targets).
* A *publish op* (``write_atomic64``, ``set_cur``/``set_alt``/
  ``promote_alt``, ``publish_object``, ``store(..., atomic=True)``)
  while any fact is dirty raises **PO001**.
* A ``return`` from an RPC handler (``_handle_*`` generator) with dirty
  facts raises **PO002** — acking a client while bytes are volatile —
  unless the return is an ``rpc_error(...)`` (a nack promises nothing).

Interprocedural summaries (fixpoint over the name-resolved call graph):
a helper whose every path ends persisted-and-clean acts as a persist
barrier at its call sites ("persists-before-return"); a helper that may
return with dirty facts contributes a dirty fact at its call sites.
Summaries are consulted for **same-module** callees only — bare-name
resolution across the whole tree lets unrelated ``fire``/``get``/
``record`` definitions poison call sites, and the named persist/write/
publish vocabularies already cover the cross-module protocol surface.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.staticcheck.model import (
    Finding,
    FunctionIndex,
    FunctionInfo,
    Module,
    attr_chain,
    call_tail,
)

__all__ = ["check_persist_ordering"]

#: Calls that deposit bytes into PersistentBuffer-backed regions.
WRITE_TAILS = frozenset({"write", "copy_in", "set_object_flags", "flush_torn"})

#: Calls that drive the written range to the power-fail domain.
PERSIST_TAILS = frozenset(
    {
        "persist",
        "flush",
        "persist_object",
        "persist_header",
        "persist_entry",
        "persist_entry_timed",
    }
)

#: Calls that make written bytes reachable (publish boundaries).
PUBLISH_TAILS = frozenset(
    {
        "write_atomic64",
        "set_cur",
        "set_alt",
        "promote_alt",
        "publish_object",
        "_write_word",
        "find_or_create",
    }
)

#: Base tokens whose ``.write`` is not NVM (file handles, streams).
_NON_NVM_BASES = frozenset({"fh", "f", "file", "out", "sys", "buf", "io"})


@dataclass
class _Summary:
    """Interprocedural facts for one function name."""

    persists_before_return: bool = False
    may_leave_dirty: bool = False


@dataclass
class _State:
    """Dirty facts live here; keyed by alias token -> first write line."""

    dirty: dict[str, int] = field(default_factory=dict)
    #: Has a persist op happened on this path since the last write?
    persisted_any: bool = False

    def copy(self) -> "_State":
        return _State(dict(self.dirty), self.persisted_any)

    @staticmethod
    def join(states: list["_State"]) -> "_State":
        out = _State()
        for st in states:
            out.dirty.update(st.dirty)
        out.persisted_any = all(st.persisted_any for st in states)
        return out


def _base_token(node: ast.AST) -> str | None:
    """Root name of an expression (``pool.abs_addr(x)`` -> ``pool``)."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return None


def _call_tokens(call: ast.Call) -> set[str]:
    """Alias tokens a call touches: receiver chain root + argument roots."""
    tokens: set[str] = set()
    if isinstance(call.func, ast.Attribute):
        root = _base_token(call.func.value)
        if root is not None:
            tokens.add(root)
        # one attribute step too: self.device vs self.pools
        chain = attr_chain(call.func.value)
        if chain is not None:
            tokens.add(chain)
    for arg in call.args:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Name):
                tokens.add(sub.id)
    return tokens


def _receiver_token(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return _base_token(call.func.value)
    return None


def _is_atomic_store_call(call: ast.Call) -> bool:
    """``store(..., atomic=True)`` — a timed publish."""
    if call_tail(call) != "store":
        return False
    for kw in call.keywords:
        if kw.arg == "atomic" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


def _is_error_return(node: ast.Return) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and call_tail(sub) == "rpc_error":
            return True
    return False


class _FunctionChecker:
    def __init__(
        self,
        info: FunctionInfo,
        summaries: dict[str, dict[str, _Summary]],
        known: set[str],
        collect: list[Finding] | None,
    ) -> None:
        self.info = info
        self.summaries = summaries.get(info.module.name, {})
        self.known = known
        self.collect = collect
        self.is_handler = info.name.startswith("_handle_")
        self.ended_dirty = False
        self.all_paths_persist = True  # refined during the walk

    # -- statement walk ------------------------------------------------------
    def run(self) -> _State:
        state = _State()
        state = self.walk_body(self.info.node.body, state)
        self.ended_dirty = bool(state.dirty)
        return state

    def walk_body(self, body: list[ast.stmt], state: _State) -> _State:
        for stmt in body:
            state = self.walk_stmt(stmt, state)
        return state

    def walk_stmt(self, stmt: ast.stmt, state: _State) -> _State:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return state  # nested defs analyzed on their own
        if isinstance(stmt, ast.If):
            then = self.walk_body(stmt.body, state.copy())
            other = self.walk_body(stmt.orelse, state.copy())
            return _State.join([then, other])
        if isinstance(stmt, (ast.For, ast.While)):
            self.scan_expr(getattr(stmt, "iter", None) or getattr(stmt, "test"), state)
            body = self.walk_body(stmt.body, state.copy())
            done = self.walk_body(stmt.orelse, body.copy())
            return _State.join([state, done])
        if isinstance(stmt, ast.Try):
            body = self.walk_body(stmt.body, state.copy())
            states = [body]
            for handler in stmt.handlers:
                states.append(self.walk_body(handler.body, state.copy()))
            merged = _State.join(states)
            merged = self.walk_body(stmt.orelse, merged)
            return self.walk_body(stmt.finalbody, merged)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.scan_expr(item.context_expr, state)
            return self.walk_body(stmt.body, state)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.scan_expr(stmt.value, state)
            if (
                self.is_handler
                and state.dirty
                and not _is_error_return(stmt)
                and self.collect is not None
            ):
                first = min(state.dirty.values())
                self.collect.append(
                    Finding(
                        rule="PO002",
                        path=self.info.module.path,
                        line=stmt.lineno,
                        symbol=self.info.qualname,
                        message=(
                            "RPC handler replies while writes from line "
                            f"{first} are unpersisted (ack implies "
                            "durability; persist or reply rpc_error)"
                        ),
                    )
                )
            return state
        # generic statement: scan contained expressions in order
        for node in ast.iter_child_nodes(stmt):
            self.scan_expr(node, state)
        return state

    # -- expression scan (calls in evaluation order) -------------------------
    def scan_expr(self, node: ast.AST | None, state: _State) -> None:
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self.apply_call(sub, state)

    def apply_call(self, call: ast.Call, state: _State) -> None:
        tail = call_tail(call)
        if tail is None:
            return
        if tail in PERSIST_TAILS:
            self.apply_persist(call, state)
            return
        if tail in PUBLISH_TAILS or _is_atomic_store_call(call):
            self.apply_publish(call, tail, state)
            return
        if tail in WRITE_TAILS:
            recv = _receiver_token(call)
            if tail == "write" and (recv is None or recv in _NON_NVM_BASES):
                return
            token = recv or tail
            state.dirty.setdefault(token, call.lineno)
            state.persisted_any = False
            return
        # interprocedural: helper summaries
        summary = self.summaries.get(tail)
        if summary is None:
            return
        if summary.persists_before_return:
            self.apply_persist(call, state)
        elif summary.may_leave_dirty:
            token = _receiver_token(call) or tail
            state.dirty.setdefault(token, call.lineno)
            state.persisted_any = False

    def apply_persist(self, call: ast.Call, state: _State) -> None:
        state.persisted_any = True
        tokens = _call_tokens(call)
        if not tokens:
            state.dirty.clear()
            return
        matched = [t for t in state.dirty if t in tokens]
        if matched:
            for t in matched:
                del state.dirty[t]
        else:
            # No token overlap: assume the persist covers the pending
            # writes anyway (ranges, not names, are what matter; names
            # are only a refinement). The no-persist case is the bug.
            state.dirty.clear()

    def apply_publish(self, call: ast.Call, tail: str, state: _State) -> None:
        if not state.dirty or self.collect is None:
            return
        first_line = min(state.dirty.values())
        tokens = ", ".join(sorted(state.dirty))
        self.collect.append(
            Finding(
                rule="PO001",
                path=self.info.module.path,
                line=call.lineno,
                symbol=self.info.qualname,
                message=(
                    f"publish op {tail!r} reachable with writes to "
                    f"[{tokens}] (line {first_line}) not persisted on "
                    "every path"
                ),
            )
        )
        # report once per publish; assume intent was persisted
        state.dirty.clear()


def _compute_summaries(
    index: FunctionIndex,
) -> dict[str, dict[str, _Summary]]:
    """Fixpoint of persists-before-return / may-leave-dirty, per module.

    Keyed module -> bare name -> summary; a checker only consults its
    own module's table (see the module docstring for why).
    """
    summaries: dict[str, dict[str, _Summary]] = {}
    known = set(index.by_name)
    for _round in range(4):
        changed = False
        per_name: dict[tuple[str, str], list[tuple[bool, bool]]] = {}
        for info in index.functions:
            end = _FunctionChecker(info, summaries, known, collect=None).run()
            per_name.setdefault((info.module.name, info.name), []).append(
                (end.persisted_any and not end.dirty, bool(end.dirty))
            )
        for (mod, name), results in per_name.items():
            # merge across same-name defs: barrier only if every def is,
            # dirty if any def is
            merged = _Summary(
                persists_before_return=all(p for p, _ in results),
                may_leave_dirty=any(d for _, d in results),
            )
            table = summaries.setdefault(mod, {})
            if table.get(name) != merged:
                table[name] = merged
                changed = True
        if not changed:
            break
    return summaries


def check_persist_ordering(
    modules: list[Module], index: FunctionIndex
) -> list[Finding]:
    summaries = _compute_summaries(index)
    findings: list[Finding] = []
    known = set(index.by_name)
    for info in index.functions:
        has_boundary = any(
            isinstance(n, ast.Call)
            and (
                (call_tail(n) in PUBLISH_TAILS)
                or _is_atomic_store_call(n)
            )
            for n in ast.walk(info.node)
        )
        if not (has_boundary or info.name.startswith("_handle_")):
            continue
        checker = _FunctionChecker(info, summaries, known, collect=findings)
        checker.run()
    return findings
