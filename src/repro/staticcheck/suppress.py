"""Baseline/suppression file (``staticcheck.toml``) handling.

A suppression is deliberate, reviewed acceptance of one finding class —
each entry carries a mandatory one-line ``reason`` so the justification
lives next to the waiver, not in a commit message::

    [[suppress]]
    rule = "DT001"
    path = "src/repro/harness/kernelbench.py"
    reason = "wall-clock cells measure the host, not the simulation"

Match fields: ``rule`` (required), ``path`` (exact repo-relative path,
or a prefix ending in ``/``), optional ``symbol`` (exact dotted
function) and ``contains`` (substring of the message). An entry that
matched nothing in a run is reported — stale waivers hide regressions,
so the runner surfaces them (and ``--strict-baseline`` makes them
errors).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.staticcheck.model import Finding

__all__ = ["Suppression", "Baseline", "load_baseline"]


@dataclass
class Suppression:
    rule: str
    reason: str
    path: str = ""
    symbol: str = ""
    contains: str = ""
    hits: int = 0

    def matches(self, finding: Finding) -> bool:
        if self.rule != finding.rule:
            return False
        if self.path:
            if self.path.endswith("/"):
                if not finding.path.startswith(self.path):
                    return False
            elif finding.path != self.path:
                return False
        if self.symbol and finding.symbol != self.symbol:
            return False
        if self.contains and self.contains not in finding.message:
            return False
        return True


@dataclass
class Baseline:
    suppressions: list[Suppression] = field(default_factory=list)
    source: str = ""

    def filter(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """(unsuppressed, suppressed) partition; counts hits."""
        live: list[Finding] = []
        quiet: list[Finding] = []
        for finding in findings:
            hit = next(
                (s for s in self.suppressions if s.matches(finding)), None
            )
            if hit is None:
                live.append(finding)
            else:
                hit.hits += 1
                quiet.append(finding)
        return live, quiet

    def unused(self) -> list[Suppression]:
        return [s for s in self.suppressions if s.hits == 0]


def load_baseline(path: str) -> Baseline:
    with open(path, "rb") as fh:
        data = tomllib.load(fh)
    entries = data.get("suppress", [])
    if not isinstance(entries, list):
        raise ConfigError(f"{path}: [[suppress]] must be an array of tables")
    suppressions: list[Suppression] = []
    for i, entry in enumerate(entries):
        rule = entry.get("rule")
        reason = entry.get("reason")
        if not rule or not reason:
            raise ConfigError(
                f"{path}: suppress[{i}] needs both 'rule' and a one-line "
                "'reason' justifying the waiver"
            )
        unknown = set(entry) - {"rule", "reason", "path", "symbol", "contains"}
        if unknown:
            raise ConfigError(
                f"{path}: suppress[{i}] has unknown keys {sorted(unknown)}"
            )
        suppressions.append(
            Suppression(
                rule=str(rule),
                reason=str(reason),
                path=str(entry.get("path", "")),
                symbol=str(entry.get("symbol", "")),
                contains=str(entry.get("contains", "")),
            )
        )
    return Baseline(suppressions=suppressions, source=path)
