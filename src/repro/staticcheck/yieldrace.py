"""YP: yield-point race detector for cooperative sim processes.

In generator-based cooperative concurrency, the race surface is
exactly the set of explicit yield points: between a ``yield`` (or a
``yield from`` of a may-yield helper — see
:mod:`repro.staticcheck.callgraph`) and the resume, *any* other process
may run and mutate shared state. The classic bug is a read-modify-write
that straddles one:

    head = pool.head          # read shared
    yield from device.persist(...)   # another process may allocate!
    pool.head = head + size   # publish stale value

**YP001** flags a store to a shared attribute path whose right-hand
side uses a local that was read from that same path *before* the most
recent yield point, with no re-read of the path after resuming.

Sharedness is syntactic: attribute paths rooted at a function
parameter (``self``, ``part``, ``server`` ...), or at a local that
aliases one (``pool = self.pools[i]`` makes ``pool.*`` shared).
Locals themselves are process-private (each process owns its stack) and
are never flagged. Augmented assigns (``pool.head += n``) are atomic
within a step and safe unless their own RHS holds a stale read.

Re-validation resets tracking: re-reading the path after the yield, or
calling a method on the path's root object whose name suggests a
refresh (``read*``/``lookup*``/``refresh*``/``reload*``), clears
staleness for that root.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.staticcheck.callgraph import YieldSummary, yield_from_target
from repro.staticcheck.model import (
    Finding,
    FunctionIndex,
    FunctionInfo,
    Module,
    attr_chain,
    call_tail,
)

__all__ = ["check_yield_races"]

_REVALIDATE_PREFIXES = ("read", "lookup", "refresh", "reload", "check")


@dataclass
class _VarFact:
    """A local bound from a shared read."""

    source_path: str  # the shared attribute path it was read from
    epoch: int  # yield-epoch at bind time


@dataclass
class _Scope:
    epoch: int = 0
    #: local name -> fact (only locals read from shared paths)
    stale_reads: dict[str, _VarFact] = field(default_factory=dict)
    #: shared path -> epoch of its most recent read
    path_read_epoch: dict[str, int] = field(default_factory=dict)
    #: local name -> shared path it aliases (pool = self.pools[i])
    aliases: dict[str, str] = field(default_factory=dict)

    def copy(self) -> "_Scope":
        return _Scope(
            self.epoch,
            dict(self.stale_reads),
            dict(self.path_read_epoch),
            dict(self.aliases),
        )

    @staticmethod
    def join(scopes: list["_Scope"]) -> "_Scope":
        out = scopes[0].copy()
        for other in scopes[1:]:
            out.epoch = max(out.epoch, other.epoch)
            # keep a fact only if identical in all branches; otherwise
            # keep the *older* epoch (more conservative: more stale)
            for name, fact in other.stale_reads.items():
                cur = out.stale_reads.get(name)
                if cur is None or fact.epoch < cur.epoch:
                    out.stale_reads[name] = fact
            for path, ep in other.path_read_epoch.items():
                cur_ep = out.path_read_epoch.get(path)
                out.path_read_epoch[path] = (
                    ep if cur_ep is None else min(cur_ep, ep)
                )
            out.aliases.update(other.aliases)
        return out


class _RaceChecker:
    def __init__(
        self,
        info: FunctionInfo,
        yields: YieldSummary,
        findings: list[Finding],
    ) -> None:
        self.info = info
        self.yields = yields
        self.findings = findings
        args = info.node.args
        self.params = {
            a.arg
            for a in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        }

    # -- shared-path resolution ----------------------------------------------
    def shared_path(self, node: ast.AST, scope: _Scope) -> str | None:
        """Canonical shared path for an attribute chain, or None.

        ``self.pool.head`` -> ``"self.pool.head"``;
        ``pool.head`` with ``pool`` aliasing ``self.pools[i]`` ->
        ``"self.pools[?].head"``-style expansion via the alias table.
        """
        chain = attr_chain(node)
        if chain is None:
            return None
        root, _, rest = chain.partition(".")
        if root in self.params:
            return chain
        alias = scope.aliases.get(root)
        if alias is not None:
            return f"{alias}.{rest}" if rest else alias
        return None

    def alias_target(self, value: ast.AST, scope: _Scope) -> str | None:
        """Shared path a bound expression aliases (attr/subscript chain
        rooted at a param or existing alias), for assignments like
        ``pool = self.pools[i]`` / ``part = server.partitions[pid]``."""
        # strip trailing subscripts: self.pools[i] -> self.pools[?]
        suffix = ""
        node = value
        while isinstance(node, ast.Subscript):
            node = node.value
            suffix = "[?]" + suffix
        path = self.shared_path(node, scope)
        if path is None:
            return None
        return path + suffix

    # -- walk ---------------------------------------------------------------
    def run(self) -> None:
        self.walk_body(self.info.node.body, _Scope())

    def walk_body(self, body: list[ast.stmt], scope: _Scope) -> _Scope:
        for stmt in body:
            scope = self.walk_stmt(stmt, scope)
        return scope

    def walk_stmt(self, stmt: ast.stmt, scope: _Scope) -> _Scope:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return scope
        if isinstance(stmt, ast.If):
            self.scan_reads(stmt.test, scope)
            then = self.walk_body(stmt.body, scope.copy())
            other = self.walk_body(stmt.orelse, scope.copy())
            return _Scope.join([then, other])
        if isinstance(stmt, ast.While):
            self.scan_reads(stmt.test, scope)
            body = self.walk_body(stmt.body, scope.copy())
            # second pass over the body from the joined state models the
            # back edge: a read in iteration N feeding a store after the
            # yield in iteration N+1 is still a straddle
            again = self.walk_body(stmt.body, _Scope.join([scope, body]).copy())
            done = self.walk_body(stmt.orelse, again)
            return _Scope.join([scope, done])
        if isinstance(stmt, ast.For):
            self.scan_reads(stmt.iter, scope)
            self.kill_targets(stmt.target, scope)
            body = self.walk_body(stmt.body, scope.copy())
            again = self.walk_body(stmt.body, _Scope.join([scope, body]).copy())
            done = self.walk_body(stmt.orelse, again)
            return _Scope.join([scope, done])
        if isinstance(stmt, ast.Try):
            body = self.walk_body(stmt.body, scope.copy())
            states = [body]
            for handler in stmt.handlers:
                states.append(self.walk_body(handler.body, scope.copy()))
            merged = _Scope.join(states)
            merged = self.walk_body(stmt.orelse, merged)
            return self.walk_body(stmt.finalbody, merged)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.scan_reads(item.context_expr, scope)
            return self.walk_body(stmt.body, scope)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return self.walk_assign(stmt, scope)
        if isinstance(stmt, ast.AugAssign):
            # atomic within a step; only stale RHS locals are a hazard
            self.scan_reads(stmt.value, scope)
            self.check_store(stmt.target, stmt.value, stmt, scope)
            return scope
        # expression statements (incl. bare yields), return, etc.
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self.scan_reads(node, scope)
        return scope

    def walk_assign(
        self, stmt: ast.Assign | ast.AnnAssign, scope: _Scope
    ) -> _Scope:
        value = stmt.value
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        if value is not None:
            self.scan_reads(value, scope)
        for target in targets:
            if isinstance(target, ast.Name) and value is not None:
                self.bind_local(target.id, value, scope)
            elif isinstance(target, ast.Attribute):
                self.check_store(target, value, stmt, scope)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        scope.stale_reads.pop(elt.id, None)
                        scope.aliases.pop(elt.id, None)
                    elif isinstance(elt, ast.Attribute):
                        self.check_store(elt, value, stmt, scope)
        return scope

    def bind_local(self, name: str, value: ast.AST, scope: _Scope) -> None:
        scope.stale_reads.pop(name, None)
        scope.aliases.pop(name, None)
        src = self.shared_path(value, scope)
        if src is not None:
            scope.stale_reads[name] = _VarFact(src, scope.epoch)
            scope.path_read_epoch[src] = scope.epoch
            return
        alias = self.alias_target(value, scope)
        if alias is not None:
            scope.aliases[name] = alias

    def kill_targets(self, target: ast.AST, scope: _Scope) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                scope.stale_reads.pop(node.id, None)
                scope.aliases.pop(node.id, None)

    # -- reads / yields ------------------------------------------------------
    def scan_reads(self, node: ast.AST, scope: _Scope) -> None:
        """Note shared-path reads and advance the epoch at yields, in a
        best-effort left-to-right order."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.YieldFrom):
                if self.yields.call_may_yield(yield_from_target(sub)):
                    scope.epoch += 1
            elif isinstance(sub, ast.Yield):
                scope.epoch += 1
            elif isinstance(sub, ast.Attribute) and isinstance(
                sub.ctx, ast.Load
            ):
                path = self.shared_path(sub, scope)
                if path is not None:
                    scope.path_read_epoch[path] = scope.epoch
            elif isinstance(sub, ast.Call):
                tail = call_tail(sub)
                if tail is not None and tail.startswith(_REVALIDATE_PREFIXES):
                    # method call that re-reads state from its receiver:
                    # treat every path under the receiver as re-read
                    recv = (
                        self.shared_path(sub.func.value, scope)
                        if isinstance(sub.func, ast.Attribute)
                        else None
                    )
                    if recv is not None:
                        for path in scope.path_read_epoch:
                            if path.startswith(recv):
                                scope.path_read_epoch[path] = scope.epoch

    # -- the rule ------------------------------------------------------------
    def check_store(
        self,
        target: ast.Attribute,
        value: ast.AST | None,
        stmt: ast.stmt,
        scope: _Scope,
    ) -> None:
        if value is None:
            return
        path = self.shared_path(target, scope)
        if path is None:
            return
        for sub in ast.walk(value):
            if not (isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)):
                continue
            fact = scope.stale_reads.get(sub.id)
            if fact is None or fact.source_path != path:
                continue
            if fact.epoch >= scope.epoch:
                continue  # no yield since the read
            if scope.path_read_epoch.get(path, -1) >= scope.epoch:
                continue  # re-validated after resuming
            self.findings.append(
                Finding(
                    rule="YP001",
                    path=self.info.module.path,
                    line=stmt.lineno,
                    symbol=self.info.qualname,
                    message=(
                        f"store to shared {path!r} uses {sub.id!r} read "
                        "before a yield point; another process may have "
                        "mutated it (re-read after resuming or move the "
                        "store before the yield)"
                    ),
                )
            )
            return


def check_yield_races(
    modules: list[Module], index: FunctionIndex, yields: YieldSummary
) -> list[Finding]:
    findings: list[Finding] = []
    for info in index.functions:
        if not info.is_generator:
            continue  # only sim processes can be descheduled
        _RaceChecker(info, yields, findings).run()
    return findings
