"""Replicated multi-server cluster: log shipping, failover, migration.

See :mod:`repro.cluster.node` for the architecture overview. The
package is entirely additive — a ``nodes=1, replication=1`` deployment
degenerates to a standalone :class:`~repro.core.server.EFactoryServer`
with the exact single-node event sequence.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.config import ClusterConfig
from repro.cluster.failover import FailureDetector, partition_digest, promote_partition
from repro.cluster.migration import migrate_partition
from repro.cluster.node import Cluster, ClusterNode, ClusterSetup, build_cluster
from repro.cluster.replicator import LogShipper
from repro.cluster.router import ClusterRouter, PartitionRoute

__all__ = [
    "Cluster",
    "ClusterClient",
    "ClusterConfig",
    "ClusterNode",
    "ClusterRouter",
    "ClusterSetup",
    "FailureDetector",
    "LogShipper",
    "PartitionRoute",
    "build_cluster",
    "migrate_partition",
    "partition_digest",
    "promote_partition",
]
