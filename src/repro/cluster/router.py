"""The cluster routing map: which node owns which partition.

Every partition has an ordered replica list (primary first). The map is
versioned by a single ``epoch`` counter bumped on every visible change —
clients compare epochs instead of diffing routes, and a stale client
flushes its connection-scoped caches the moment it notices a bump.

States:

* ``normal``     — primary serving, backups receiving shipped log.
* ``migrating``  — copy stage of a live migration; the primary still
  serves reads *and* writes (stage 1 is concurrent).
* ``draining``   — the short fenced window before the ownership flip:
  writes are rejected at the source (``ERR_FENCED``), clients wait.
* ``promoting``  — primary died; a backup is replaying its shipped log.
  Not routable until recovery finishes.
* ``dead``       — no replicas left. Ops fail until the deadline.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError

__all__ = ["ClusterRouter", "PartitionRoute"]

NORMAL = "normal"
MIGRATING = "migrating"
DRAINING = "draining"
PROMOTING = "promoting"
DEAD = "dead"


class PartitionRoute:
    """Mutable routing state of one partition."""

    __slots__ = ("part_id", "replicas", "state", "migrating_to")

    def __init__(self, part_id: int, replicas: list[int]) -> None:
        self.part_id = part_id
        #: Node ids, primary first.
        self.replicas = replicas
        self.state = NORMAL
        #: Destination node of an in-flight migration, or None.
        self.migrating_to: Optional[int] = None

    def as_dict(self) -> dict:
        return {
            "part": self.part_id,
            "replicas": list(self.replicas),
            "state": self.state,
            "migrating_to": self.migrating_to,
        }


class ClusterRouter:
    """Owns the partition → replica-list map and its epoch."""

    def __init__(self, n_nodes: int, n_partitions: int, replication_factor: int) -> None:
        if replication_factor > n_nodes:
            raise ConfigError("replication_factor exceeds node count")
        self.n_nodes = n_nodes
        self.epoch = 0
        #: Round-robin placement: partition p's primary is node
        #: p % n_nodes, its backups the next rf-1 nodes — every node is
        #: primary for ~P/N partitions and backup for the neighbours'.
        self.routes = [
            PartitionRoute(
                p, [(p + i) % n_nodes for i in range(replication_factor)]
            )
            for p in range(n_partitions)
        ]
        self.alive = list(range(n_nodes))

    # -- queries ------------------------------------------------------------
    def primary(self, part: int) -> Optional[int]:
        r = self.routes[part].replicas
        return r[0] if r else None

    def backups(self, part: int) -> list[int]:
        return [n for n in self.routes[part].replicas[1:] if n in self.alive]

    def replicas(self, part: int) -> list[int]:
        return list(self.routes[part].replicas)

    def routable(self, part: int) -> bool:
        """Can a client usefully send ops at this partition right now?"""
        route = self.routes[part]
        return (
            route.state in (NORMAL, MIGRATING)
            and bool(route.replicas)
            and route.replicas[0] in self.alive
        )

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "alive": list(self.alive),
            "routes": [r.as_dict() for r in self.routes],
        }

    # -- failure ------------------------------------------------------------
    def mark_failed(self, node_id: int) -> list[int]:
        """Remove a dead node from every replica list.

        Returns the partitions orphaned by the failure (the dead node
        was their primary): each flips to ``promoting`` when a backup
        remains, ``dead`` when none does. Partitions that only lost a
        backup shrink their replica list in place — the shipper simply
        stops targeting it (degraded redundancy, not unavailability).
        """
        if node_id in self.alive:
            self.alive.remove(node_id)
        orphans: list[int] = []
        for route in self.routes:
            if node_id not in route.replicas:
                continue
            was_primary = route.replicas[0] == node_id
            route.replicas.remove(node_id)
            if was_primary:
                if route.replicas:
                    route.state = PROMOTING
                    orphans.append(route.part_id)
                else:
                    route.state = DEAD
                route.migrating_to = None
        self.epoch += 1
        return orphans

    def mark_ready(self, part: int) -> None:
        """Promotion finished: the first surviving replica is primary."""
        self.routes[part].state = NORMAL
        self.epoch += 1

    # -- migration ----------------------------------------------------------
    def begin_migration(self, part: int, dst: int) -> None:
        route = self.routes[part]
        if route.state != NORMAL:
            raise ConfigError(
                f"partition {part} is {route.state}; cannot migrate"
            )
        route.state = MIGRATING
        route.migrating_to = dst
        self.epoch += 1

    def drain(self, part: int) -> None:
        self.routes[part].state = DRAINING
        self.epoch += 1

    def finish_migration(self, part: int) -> None:
        """Ownership flip: the destination becomes primary; surviving
        old replicas (minus the old primary) stay as backups."""
        route = self.routes[part]
        dst = route.migrating_to
        if dst is None:
            raise ConfigError(f"partition {part} has no migration target")
        survivors = [
            n for n in route.replicas[1:] if n in self.alive and n != dst
        ]
        route.replicas = [dst] + survivors
        route.state = NORMAL
        route.migrating_to = None
        self.epoch += 1

    def abort_migration(self, part: int) -> None:
        """Roll the route back to the source-owned normal state."""
        route = self.routes[part]
        if route.state in (MIGRATING, DRAINING):
            route.state = NORMAL
        route.migrating_to = None
        self.epoch += 1
