"""Cluster membership: N eFactory servers on one fabric.

Every node runs a *full* :class:`~repro.core.server.EFactoryServer` with
identical geometry — same partition count, same pool layout, same table
segments. The cluster layer assigns each partition a primary (which
serves client ops exactly as a standalone server would) and
``replication_factor - 1`` backups (whose copy of the partition is fed
purely by shipped log records — their table segments stay empty until a
promotion rebuilds them from the log, see
:func:`repro.core.recovery.seed_index_from_pools`).

:class:`ClusterNode` wraps one server with the cluster-internal RPC
handlers (ping / repl_commit / repl_reset / repl_wait / mig_alloc /
mig_commit) and the per-partition :class:`~repro.cluster.replicator.
LogShipper` instances; :class:`Cluster` owns the router, the failure
detector, and the whole-node-kill fault hook; :class:`ClusterSetup`
mirrors :class:`repro.stores.StoreSetup` so the chaos harness drives a
cluster through the same surface as a standalone store.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional

from repro.baselines.base import RESPONSE_BYTES
from repro.baselines.partition import ObjectLocation
from repro.cluster.config import ClusterConfig
from repro.cluster.replicator import PING_BYTES, LogShipper, repl_wait_loop
from repro.cluster.router import ClusterRouter
from repro.core import EFactoryServer, efactory_config
from repro.errors import ConfigError
from repro.kv.hashtable import key_fingerprint
from repro.kv.objects import parse_object
from repro.rdma.fabric import Fabric
from repro.rdma.latency import FabricTiming
from repro.rdma.qp import Endpoint
from repro.rdma.rpc import (
    ERR_NOT_FOUND,
    ERR_POOL_EXHAUSTED,
    ERR_REPL_LAG,
    RpcClient,
    rpc_error,
)
from repro.rdma.verbs import Message
from repro.sim.kernel import Environment, Event, Interrupt

__all__ = ["Cluster", "ClusterNode", "ClusterSetup", "build_cluster"]


class ClusterNode:
    """One server plus its cluster-facing plumbing."""

    def __init__(self, cluster: "Cluster", node_id: int, server: EFactoryServer) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.server = server
        self.env: Environment = server.env
        self.name = f"node{node_id}"
        self.alive = True
        server.cluster_node = self
        #: Cached fabric links / RPC clients to the other nodes.
        self._links: dict[int, Endpoint] = {}
        self._rpcs: dict[int, RpcClient] = {}
        #: Shippers for partitions this node is primary of.
        self.shippers: dict[int, LogShipper] = {}
        #: Backup-side watermark per partition: (pool, gen, end).
        self.replica_state: dict[int, tuple[int, int, int]] = {}
        #: Dirty-byte extent per (partition, pool) — how far shipped or
        #: migrated records reach, so repl_reset knows what to zero.
        self.replica_extent: dict[tuple[int, int], int] = {}
        rpc = server.rpc
        rpc.register("ping", self._handle_ping)
        rpc.register("repl_commit", self._handle_repl_commit)
        rpc.register("repl_reset", self._handle_repl_reset)
        rpc.register("repl_wait", self._handle_repl_wait)
        rpc.register("mig_alloc", self._handle_mig_alloc)
        rpc.register("mig_commit", self._handle_mig_commit)
        rpc.register("repair_fetch", self._handle_repair_fetch)

    # -- inter-node transport ----------------------------------------------
    def link(self, other_id: int) -> Endpoint:
        ep = self._links.get(other_id)
        if ep is None:
            ep = self.cluster.fabric.connect(
                self.server.node, self.cluster.nodes[other_id].server.node
            )
            self._links[other_id] = ep
        return ep

    def call(
        self, other_id: int, payload: dict, nbytes: int
    ) -> Generator[Event, Any, Any]:
        rpc = self._rpcs.get(other_id)
        if rpc is None:
            rpc = self._rpcs[other_id] = RpcClient(self.link(other_id))
        return (yield from rpc.call(payload, nbytes))

    # -- lifecycle ----------------------------------------------------------
    def start_shipper(self, part_id: int) -> None:
        if self.cluster.cfg.replication_factor < 2:
            return
        if part_id not in self.shippers:
            shipper = LogShipper(self, part_id)
            self.shippers[part_id] = shipper
            shipper.start()

    def stop_shippers(self) -> None:
        for shipper in self.shippers.values():
            shipper.stop()
        self.shippers.clear()

    def kill(self) -> None:
        """Whole-node failure: the NIC goes dark (in-flight RDMA to this
        node is dropped, new verbs fail with ``target_down``) and every
        server process stops. NVM contents survive — a promoted backup
        does not read them; they model the dead machine's disk."""
        if not self.alive:
            return
        self.alive = False
        self.server.node.alive = False
        self.stop_shippers()
        self.server.stop()

    # -- cluster-internal RPC handlers --------------------------------------
    def _handle_ping(self, msg: Message) -> Generator[Event, Any, tuple[Any, int]]:
        return {"ok": 1}, PING_BYTES
        yield  # pragma: no cover - generator form required by RpcServer

    def _handle_repl_commit(
        self, msg: Message
    ) -> Generator[Event, Any, tuple[Any, int]]:
        """Backup side of a ship round: persist the written ranges and
        advance the watermark the primary will report to repl_wait."""
        p = msg.payload
        part = self.server.partitions[p["part"]]
        pool = part.pools[p["pool"]]
        total = 0
        for off, size in p["ranges"]:
            yield from self.server.device.persist(pool.abs_addr(off), size)
            total += size
        if part.integrity is not None:
            # Validate-then-cover: a record the shipping persist itself
            # corrupted stays uncovered here; this backup's scrubber
            # re-fetches it from the primary on its next lap.
            for off, size in p["ranges"]:
                part.integrity.cover_from_media(
                    ObjectLocation(pool=p["pool"], offset=off, size=size)
                )
            yield from part.integrity.flush()
        self.replica_state[p["part"]] = (p["pool"], p["gen"], p["end"])
        key = (p["part"], p["pool"])
        self.replica_extent[key] = max(self.replica_extent.get(key, 0), p["end"])
        return {"ok": total}, RESPONSE_BYTES

    def _handle_repl_reset(
        self, msg: Message
    ) -> Generator[Event, Any, tuple[Any, int]]:
        """Zero this partition's shipped/migrated extents.

        Ran before a new shipping generation (pool switch) and before a
        migration starts filling this node. Plain ``LogPool.reset()`` is
        not enough: it rewinds the head but leaves old record *bytes*,
        and the promotion scan trusts any parseable header — stale
        records from a dead generation would be resurrected.
        """
        p = msg.payload
        part = self.server.partitions[p["part"]]
        t = self.server.config.nvm_timing
        dev = self.server.device
        total = 0
        for pid, pool in enumerate(part.pools):
            extent = max(
                self.replica_extent.pop((p["part"], pid), 0), pool.head
            )
            if extent <= 0:
                continue
            extent = min(pool.size, extent + pool.align)
            pool.write(0, bytes(extent))
            dev.flush(pool.abs_addr(0), extent)
            pool.reset()
            if part.integrity is not None:
                part.integrity.reset_pool(pid)
            total += extent
        self.replica_state.pop(p["part"], None)
        if total:
            yield self.env.timeout(t.copy_cost(total) + t.flush_cost(total))
        return {"ok": total}, RESPONSE_BYTES

    def _handle_repl_wait(
        self, msg: Message
    ) -> Generator[Event, Any, tuple[Any, int]]:
        """Primary side of the ack gate: block until the record's pool
        prefix is durable on every live backup (see replicator docs)."""
        p = msg.payload
        covered = yield from repl_wait_loop(self, p["part"], p["pool"], p["end"])
        if not covered:
            return (
                rpc_error(
                    f"partition {p['part']} replication watermark behind "
                    f"{p['end']} (pool {p['pool']})",
                    code=ERR_REPL_LAG,
                ),
                RESPONSE_BYTES,
            )
        return {"ok": 1}, RESPONSE_BYTES

    def _handle_mig_alloc(
        self, msg: Message
    ) -> Generator[Event, Any, tuple[Any, int]]:
        """Migration destination: reserve compacted log space for a
        batch of incoming records (offsets are *not* preserved across a
        migration — unlike shipping, the destination's pool may hold
        other partitions' history, so records are re-packed from 0)."""
        p = msg.payload
        part = self.server.partitions[p["part"]]
        pool_id = part.write_pool_id
        pool = part.pools[pool_id]
        cfg = self.server.config
        yield self.env.timeout(cfg.alloc_ns)
        offs: list[int] = []
        for size in p["sizes"]:
            if not pool.can_fit(size):
                return (
                    rpc_error(
                        f"migration target pool full on {self.name}",
                        code=ERR_POOL_EXHAUSTED,
                    ),
                    RESPONSE_BYTES,
                )
            offs.append(pool.allocate(size))
        if offs:
            key = (p["part"], pool_id)
            self.replica_extent[key] = max(
                self.replica_extent.get(key, 0), pool.head
            )
        return {"pool": pool_id, "offs": offs}, RESPONSE_BYTES + 8 * len(offs)

    def _handle_mig_commit(
        self, msg: Message
    ) -> Generator[Event, Any, tuple[Any, int]]:
        """Migration destination: persist landed records, mark them
        durable, and index them. A record copied twice (copy pass then
        delta pass) simply re-points the entry — last write wins."""
        p = msg.payload
        part = self.server.partitions[p["part"]]
        pool = part.pools[p["pool"]]
        cfg = self.server.config
        t = cfg.nvm_timing
        done = 0
        for off, size in p["items"]:
            yield from self.server.device.persist(pool.abs_addr(off), size)
            img = parse_object(pool.read(off, size))
            if not img.well_formed:
                continue  # torn in flight; source will see no ack for it
            loc = ObjectLocation(pool=p["pool"], offset=off, size=size)
            part.mark_durable(loc, img)
            yield self.env.timeout(cfg.index_ns)
            entry_off = part.table.find_or_create(key_fingerprint(img.key))
            part.table.set_cur(entry_off, loc.slot)
            yield from part.persist_entry_timed(entry_off)
            done += 1
            if part.integrity is not None:
                part.integrity.cover_from_media(loc)
        if done and part.integrity is not None:
            yield from part.integrity.flush()
        return {"ok": done}, RESPONSE_BYTES

    def _handle_repair_fetch(
        self, msg: Message
    ) -> Generator[Event, Any, tuple[Any, int]]:
        """Serve raw pool bytes to a peer's scrubber (replica-assisted
        repair). Shipping keeps replicas at identical pool offsets, so
        the requested (pool, offset, size) names the same record here;
        the *requester* validates the bytes (parse, fingerprint, value
        CRC) before installing them — this side just reads the media."""
        p = msg.payload
        part = self.server.partitions[p["part"]]
        pool_id, off, size = p["pool"], p["off"], p["size"]
        if pool_id >= len(part.pools):
            return rpc_error("repair_fetch: no such pool", ERR_NOT_FOUND), RESPONSE_BYTES
        pool = part.pools[pool_id]
        if off < 0 or size <= 0 or off + size > pool.size:
            return (
                rpc_error("repair_fetch: range outside pool", ERR_NOT_FOUND),
                RESPONSE_BYTES,
            )
        yield self.env.timeout(self.server.config.nvm_timing.read_cost(size))
        return {"data": bytes(pool.read(off, size))}, RESPONSE_BYTES + size

    # -- metrics -------------------------------------------------------------
    def metrics(self) -> dict[str, Any]:
        c = self.cluster
        return {
            "node": self.node_id,
            "alive": self.alive,
            "primary_of": [
                r.part_id
                for r in c.router.routes
                if r.replicas and r.replicas[0] == self.node_id
            ],
            "shipped_records": sum(
                s.shipped_records for s in self.shippers.values()
            ),
            "shipped_bytes": sum(s.shipped_bytes for s in self.shippers.values()),
            "repl_lag_bytes": sum(s.lag_bytes for s in self.shippers.values()),
            "scrub": self.server.scrubber.stats(),
            "failovers": c.failovers,
            "promotions": c.promotions,
            "migrations": c.migrations,
            "migrations_aborted": c.migrations_aborted,
        }


class Cluster:
    """The whole deployment: nodes + router + detector + fault hook."""

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        cfg: ClusterConfig,
        store_config,
    ) -> None:
        self.env = env
        self.fabric = fabric
        self.cfg = cfg
        self.store_config = store_config
        self.nodes = [
            ClusterNode(
                self, i, EFactoryServer(env, fabric, store_config, name=f"node{i}")
            )
            for i in range(cfg.n_nodes)
        ]
        self.router = ClusterRouter(
            cfg.n_nodes, store_config.num_partitions, cfg.replication_factor
        )
        from repro.cluster.failover import FailureDetector  # import cycle

        self.detector: Optional[FailureDetector] = (
            FailureDetector(self) if cfg.n_nodes > 1 else None
        )
        self.failovers = 0
        self.promotions = 0
        self.migrations = 0
        self.migrations_aborted = 0
        #: Result of each promotion's byte-identical idempotence check
        #: (only populated with ``cfg.verify_promotion``).
        self.promotion_idempotent: list[bool] = []
        self._dead_handled: set[int] = set()
        self._promotions_active = 0
        self._injector = None
        self._kill_proc = None

    # -- queries -------------------------------------------------------------
    def alive(self, node_id: int) -> bool:
        return self.nodes[node_id].alive

    def pool_rkey(self, node_id: int, part: int, pool: int) -> int:
        return self.nodes[node_id].server.partitions[part].pool_mrs[pool].rkey

    @property
    def servers(self) -> list[EFactoryServer]:
        return [n.server for n in self.nodes]

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "Cluster":
        for node in self.nodes:
            node.server.start()
        if self.cfg.replication_factor > 1:
            for route in self.router.routes:
                self.nodes[route.replicas[0]].start_shipper(route.part_id)
        if self.detector is not None:
            self.detector.start()
        return self

    def stop(self) -> None:
        if self.detector is not None:
            self.detector.stop()
        self.disarm()
        for node in self.nodes:
            if node.alive:
                node.stop_shippers()
                node.server.stop()

    # -- failure handling ------------------------------------------------------
    def kill_node(self, node_id: int) -> None:
        """The fault: power off a node. Detection and failover follow
        through the seeded failure detector, like production would."""
        self.nodes[node_id].kill()

    def on_node_dead(self, node_id: int) -> None:
        """Detector verdict: reroute and promote. Idempotent."""
        if node_id in self._dead_handled:
            return
        self._dead_handled.add(node_id)
        self.nodes[node_id].kill()
        orphans = self.router.mark_failed(node_id)
        self.failovers += 1
        from repro.cluster.failover import promote_partition  # import cycle

        for part_id in orphans:
            self._promotions_active += 1
            self.env.process(
                self._promote_tracked(promote_partition(self, part_id)),
                name=f"promote:p{part_id}",
            )

    def _promote_tracked(self, gen) -> Generator[Event, Any, None]:
        try:
            yield from gen
        finally:
            self._promotions_active -= 1

    # -- migration -------------------------------------------------------------
    def migrate(self, part_id: int, dst_id: int) -> Generator[Event, Any, dict]:
        from repro.cluster.migration import migrate_partition  # import cycle

        return (yield from migrate_partition(self, part_id, dst_id))

    # -- settling (used by harnesses) ------------------------------------------
    def stable(self) -> bool:
        if self._promotions_active:
            return False
        for route in self.router.routes:
            if route.state in ("promoting", "draining", "migrating"):
                return False
        return True

    def await_stable(
        self, timeout_ns: float = 5_000_000.0
    ) -> Generator[Event, Any, bool]:
        """Wait until no promotion/migration is in flight (or timeout)."""
        deadline = self.env.now + timeout_ns
        while not self.stable():
            if self.env.now >= deadline:
                return False
            yield self.env.timeout(10_000.0)
        return True

    # -- fault-injection hook ---------------------------------------------------
    def arm(self, injector) -> None:
        """Attach an armed injector and start the node-kill tick: every
        ``kill_poll_ns`` each live node's ``cluster.node{id}`` site gets
        one ``fire`` poll, so plans schedule whole-node kills with the
        same after_op/max_fires machinery as every other fault kind."""
        self._injector = injector
        if self._kill_proc is None or not self._kill_proc.is_alive:
            self._kill_proc = self.env.process(
                self._kill_tick(), name="cluster-kill-tick"
            )

    def disarm(self) -> None:
        self._injector = None
        if self._kill_proc is not None and self._kill_proc.is_alive:
            if self._kill_proc is not self.env.active_process:
                self._kill_proc.interrupt("disarm")
        self._kill_proc = None

    def _kill_tick(self) -> Generator[Event, Any, None]:
        try:
            while True:
                inj = self._injector
                if inj is None:
                    return
                for node in self.nodes:
                    if not node.alive:
                        continue
                    act = inj.fire(
                        f"cluster.{node.name}", partition=node.node_id
                    )
                    if act is not None and act.kind == "node_kill":
                        self.kill_node(node.node_id)
                yield self.env.timeout(self.cfg.kill_poll_ns)
        except Interrupt:
            return

    # -- metrics -----------------------------------------------------------------
    def metrics(self) -> dict[str, Any]:
        return {
            "nodes": [n.metrics() for n in self.nodes],
            "router": self.router.as_dict(),
            "failovers": self.failovers,
            "promotions": self.promotions,
            "migrations": self.migrations,
            "migrations_aborted": self.migrations_aborted,
            "promotion_idempotent": list(self.promotion_idempotent),
            "shipped_records": sum(
                s.shipped_records for n in self.nodes for s in n.shippers.values()
            ),
            "repl_lag_bytes": sum(
                s.lag_bytes
                for n in self.nodes
                if n.alive
                for s in n.shippers.values()
            ),
        }


class ClusterSetup:
    """StoreSetup-shaped wrapper so harnesses drive a cluster through
    the same attributes they use for a standalone store."""

    def __init__(self, env, fabric, cluster: Cluster, clients) -> None:
        self.env = env
        self.fabric = fabric
        self.cluster = cluster
        self.clients = clients
        from repro.stores import STORES

        self.spec = STORES["efactory"]

    @property
    def server(self) -> EFactoryServer:
        """Node 0's server (compatibility view for single-server code)."""
        return self.cluster.nodes[0].server

    @property
    def servers(self) -> list[EFactoryServer]:
        return self.cluster.servers

    def client(self, i: int = 0):
        return self.clients[i]

    def start(self) -> "ClusterSetup":
        self.cluster.start()
        return self

    def stop(self) -> None:
        self.cluster.stop()


def build_cluster(
    env: Environment,
    *,
    nodes: int = 3,
    replication: int = 2,
    fabric: Optional[Fabric] = None,
    fabric_timing: Optional[FabricTiming] = None,
    config_overrides: Optional[dict[str, Any]] = None,
    cluster_overrides: Optional[dict[str, Any]] = None,
    n_clients: int = 1,
) -> ClusterSetup:
    """Deploy an N-node replicated eFactory cluster.

    ``nodes=1, replication=1`` degenerates to a standalone server plus
    plain clients — no shippers, no detector, no extra events.
    """
    if n_clients < 0:
        raise ConfigError("n_clients must be >= 0")
    overrides = dict(config_overrides or {})
    if "num_partitions" not in overrides:
        # Enough shards that every node owns some, and a power of two so
        # the default table geometry still divides evenly.
        n_parts = 4
        while n_parts < nodes:
            n_parts *= 2
        overrides["num_partitions"] = n_parts
    # Event-driven verifier wakeups: N nodes of idle 2µs polling would
    # dominate the event count. Cluster runs are new — no bit-compat
    # constraint — so default to the batched mode.
    overrides.setdefault("bg_batch", 8)
    cluster_cfg = ClusterConfig(
        n_nodes=nodes,
        replication_factor=replication,
        **(cluster_overrides or {}),
    )
    store_config = efactory_config(**overrides)
    fabric = fabric or Fabric(env, timing=fabric_timing)
    cluster = Cluster(env, fabric, cluster_cfg, store_config)
    from repro.cluster.client import ClusterClient  # import cycle

    clients = [
        ClusterClient(env, cluster, name=f"cluster-client{i}")
        for i in range(n_clients)
    ]
    return ClusterSetup(env, fabric, cluster, clients)
