"""The cluster-aware client: route, retry, re-route.

A :class:`ClusterClient` holds one ordinary
:class:`~repro.core.client.EFactoryClient` per node (each with its own
QP, session, and notification listener — exactly what a real client
library keeps per server connection) and routes every op by the cluster
routing map:

* **Epoch sync** — before each op the client compares the router epoch
  with the last one it saw; on a bump (failover, migration flip) every
  sub-client's location cache is dropped: cached (partition, slot)
  pairs may describe a node that no longer owns the data. This is the
  cluster-wide companion of the per-reconnect flush in
  ``EFactoryClient._reconnected``.
* **Ack gating** — with ``replication_factor > 1`` a put only returns
  after a ``repl_wait`` RPC confirms the record's log prefix is durable
  on every live backup (see :mod:`repro.cluster.replicator`). A put
  that fails *after* its WRITE landed retries with identical version
  bytes — at-least-once, never lost-ack.
* **Re-routing** — transport faults (dead primary), write fences
  (draining migration), and retryable server conditions send the op
  back through the routing map after ``route_retry_ns``, up to a
  ``route_timeout_ns`` deadline that comfortably covers a detection +
  promotion cycle. Non-retryable faults (not_found, protocol errors)
  propagate immediately.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING, Any, Optional

from repro.cluster.replicator import REPL_WAIT_BYTES
from repro.core.client import EFactoryClient
from repro.errors import OperationTimeout, QPError
from repro.kv.hashtable import key_fingerprint, partition_of_fp
from repro.rdma.rpc import ERR_FENCED, RpcFault
from repro.sim.kernel import Environment, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Cluster

__all__ = ["ClusterClient"]


class _SubClient(EFactoryClient):
    """Per-node connection; remembers its last alloc for the ack gate."""

    def __init__(self, env, server, name: str) -> None:
        super().__init__(env, server, name)
        #: (partition, pool, end_offset) of the most recent allocation.
        self.last_alloc: Optional[tuple[int, int, int]] = None

    def _note_alloc(self, key: bytes, resp: dict) -> None:
        super()._note_alloc(key, resp)
        self.last_alloc = (
            resp.get("part", 0),
            resp["pool"],
            resp["obj_off"] + resp["size"],
        )


class ClusterClient:
    """Routing front-end over one sub-client per node."""

    def __init__(self, env: Environment, cluster: "Cluster", name: str) -> None:
        self.env = env
        self.cluster = cluster
        self.router = cluster.router
        self.name = name
        self.config = cluster.store_config
        self.subs = [
            _SubClient(env, node.server, name=f"{name}.n{node.node_id}")
            for node in cluster.nodes
        ]
        self._epoch_seen = self.router.epoch
        self.resilience = None
        #: Ops that had to leave their first-choice node.
        self.rerouted_ops = 0
        #: Waits spent on a partition with no routable primary.
        self.route_waits = 0

    # -- resilience (shared across sub-clients: one budget, one log) --------
    def enable_resilience(self, policy, rng, tracer=None):
        from repro.faults.policy import ClientResilience

        self.resilience = ClientResilience(
            policy, rng, tracer=tracer, name=self.name
        )
        for sub in self.subs:
            sub.resilience = self.resilience
        return self.resilience

    def reset_endpoints(self) -> None:
        """Heal every per-node QP (the chaos harness's end-of-run heal)."""
        for sub in self.subs:
            sub.ep.reset()

    # -- routing helpers -----------------------------------------------------
    def _part_of(self, key: bytes) -> int:
        return partition_of_fp(
            key_fingerprint(key), self.config.num_partitions
        )

    def _sync_epoch(self) -> None:
        if self.router.epoch != self._epoch_seen:
            self._epoch_seen = self.router.epoch
            for sub in self.subs:
                sub._loc_cache.clear()

    def _route(self, part: int) -> Optional[int]:
        """Current primary when the partition is serviceable, else None."""
        self._sync_epoch()
        if not self.router.routable(part):
            return None
        nid = self.router.primary(part)
        if nid is None or not self.cluster.alive(nid):
            return None
        return nid

    def _routed_op(
        self, part: int, attempt, label: str
    ) -> Generator[Event, Any, Any]:
        """Run ``attempt(sub)`` against the partition's primary,
        re-routing on transport faults / fences until the deadline."""
        cfg = self.cluster.cfg
        env = self.env
        deadline = env.now + cfg.route_timeout_ns
        last: Optional[Exception] = None
        while True:
            nid = self._route(part)
            if nid is None:
                self.route_waits += 1
            else:
                try:
                    return (yield from attempt(self.subs[nid]))
                except (QPError, OperationTimeout) as exc:
                    last = exc
                except RpcFault as exc:
                    # Fences and transient conditions re-route; real
                    # errors (not_found, protocol) are the answer.
                    if exc.code != ERR_FENCED and not exc.retryable:
                        raise
                    last = exc
                self.rerouted_ops += 1
            if env.now >= deadline:
                if last is not None:
                    raise last
                raise OperationTimeout(
                    f"{self.name} {label}: partition {part} had no routable "
                    f"primary within {cfg.route_timeout_ns:.0f}ns"
                )
            yield env.timeout(cfg.route_retry_ns)

    # -- ops -----------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> Generator[Event, Any, None]:
        part = self._part_of(key)

        def attempt(sub: _SubClient) -> Generator[Event, Any, None]:
            yield from sub.put(key, value)
            if self.cluster.cfg.replication_factor > 1:
                alloc = sub.last_alloc
                if alloc is not None and alloc[0] == part:
                    yield from self._repl_wait(sub, part, alloc)

        return (yield from self._routed_op(part, attempt, "put"))

    def _repl_wait(
        self, sub: _SubClient, part: int, alloc: tuple[int, int, int]
    ) -> Generator[Event, Any, None]:
        _part, pool, end = alloc
        payload = {"op": "repl_wait", "part": part, "pool": pool, "end": end}

        def op():
            return sub.rpc.call(payload, REPL_WAIT_BYTES)

        if sub.resilience is not None:
            yield from sub.call_resilient(op, label="repl_wait")
        else:
            yield from op()

    def get(
        self, key: bytes, size_hint: Optional[int] = None
    ) -> Generator[Event, Any, bytes]:
        part = self._part_of(key)

        def attempt(sub: _SubClient) -> Generator[Event, Any, bytes]:
            return (yield from sub.get(key, size_hint))

        return (yield from self._routed_op(part, attempt, "get"))

    def put_many(
        self, items: "list[tuple[bytes, bytes]]"
    ) -> Generator[Event, Any, None]:
        """Sequential puts: cross-node batching would need per-node
        chunk regrouping under route churn — future work; the ack gate
        per item is the semantics that matter here."""
        for key, value in items:
            yield from self.put(key, value)

    def delete(self, key: bytes) -> Generator[Event, Any, None]:
        part = self._part_of(key)

        def attempt(sub: _SubClient) -> Generator[Event, Any, None]:
            return (yield from sub.delete(key))

        return (yield from self._routed_op(part, attempt, "delete"))

    # -- surface shared with BaseClient (harness compatibility) --------------
    def poll_notifications(self) -> Generator[Event, Any, None]:
        for sub in self.subs:
            yield from sub.poll_notifications()

    @property
    def degraded_reads(self) -> int:
        return sum(sub.degraded_reads for sub in self.subs)

    def read_stats(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for sub in self.subs:
            for k, v in sub.read_stats().items():
                out[k] = out.get(k, 0) + v
        out["rerouted"] = self.rerouted_ops
        out["route_waits"] = self.route_waits
        return out
