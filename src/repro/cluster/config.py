"""Cluster-level configuration.

Separate from :class:`~repro.core.config.EFactoryConfig` on purpose: the
per-node store config describes *one* server's geometry and timing and
is shared byte-for-byte by every replica (shipped log records land at
identical offsets only because the pool layout is identical), while this
dataclass describes the topology and the replication/failover/migration
protocol knobs layered on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    #: Number of server nodes. 1 degenerates to a standalone server (no
    #: shippers, no detector) — the bit-identical baseline.
    n_nodes: int = 3
    #: Copies per partition, primary included. 1 disables replication:
    #: puts ack exactly as on a standalone server.
    replication_factor: int = 2

    # -- log shipping -------------------------------------------------------
    #: Max records per doorbell-batched WRITE chain to each backup.
    ship_batch: int = 8
    #: Shipper poll period while the log is idle.
    ship_interval_ns: float = 20_000.0
    #: Backoff after a failed ship round (dead/unreachable backup).
    ship_retry_ns: float = 50_000.0
    #: How long a put's ``repl_wait`` polls the watermark before giving
    #: up with a retryable ``replication_lag`` error.
    repl_wait_timeout_ns: float = 500_000.0
    #: Watermark poll period inside ``repl_wait``.
    repl_poll_ns: float = 5_000.0

    # -- failure detection / failover --------------------------------------
    #: Period between ping sweeps.
    heartbeat_interval_ns: float = 100_000.0
    #: Per-ping deadline before it counts as a miss.
    heartbeat_timeout_ns: float = 40_000.0
    #: Consecutive misses before a node is declared dead.
    miss_threshold: int = 3
    #: Settling delay between declaring a node dead and starting the
    #: promotions (lets in-flight writes to the dead node resolve).
    failover_grace_ns: float = 10_000.0
    #: Re-run recovery after promoting and assert the second pass is a
    #: no-op on the partition image (byte-identical idempotence). Costs
    #: a full extra pass; chaos tests switch it on.
    verify_promotion: bool = False

    # -- migration ----------------------------------------------------------
    #: Records per mig_alloc/WRITE-chain/mig_commit round.
    migrate_batch: int = 16
    #: Drain window: how long the source stays write-fenced before the
    #: delta pass (in-flight client WRITEs land within this window).
    drain_grace_ns: float = 30_000.0

    # -- cluster client -----------------------------------------------------
    #: Pause between route-refresh retries after a routing failure.
    route_retry_ns: float = 20_000.0
    #: Total deadline for one client op across re-routes (covers a full
    #: detection + promotion cycle with slack).
    route_timeout_ns: float = 10_000_000.0

    # -- fault hooks --------------------------------------------------------
    #: Poll period of the node-kill injection tick (armed chaos only).
    kill_poll_ns: float = 10_000.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigError("n_nodes must be >= 1")
        if not 1 <= self.replication_factor <= self.n_nodes:
            raise ConfigError(
                "replication_factor must be in [1, n_nodes] "
                f"(got {self.replication_factor} with {self.n_nodes} nodes)"
            )
        if self.ship_batch < 1:
            raise ConfigError("ship_batch must be >= 1")
        if self.migrate_batch < 1:
            raise ConfigError("migrate_batch must be >= 1")
        if self.miss_threshold < 1:
            raise ConfigError("miss_threshold must be >= 1")
