"""Failure detection and backup promotion.

The :class:`FailureDetector` is a tiny monitor host on the same fabric:
it pings every live node each ``heartbeat_interval_ns`` and counts
consecutive misses (a miss is a ping that faults — dead NIC — or blows
its ``heartbeat_timeout_ns`` deadline, the same proc-vs-timer race the
client resilience layer uses). ``miss_threshold`` misses declare the
node dead, which fences it, repoints the routing map, and starts one
promotion process per orphaned partition.

Promotion is deliberately *not* new machinery: the backup's partition
holds a byte-identical prefix of the dead primary's log (shipped at
identical offsets), so promoting is exactly crash recovery —

1. :func:`~repro.core.recovery.seed_index_from_pools` rebuilds the
   backup's empty table segment from the shipped log (scan, newest
   version per fingerprint), because unlike a crashed *primary* the
   backup never had index entries to repair;
2. :func:`~repro.core.recovery.recover_partition` then runs the
   standard pass — durability-flag / CRC verification with pre_ptr
   rollback — so exactly the versions a local restart would trust
   survive the promotion.

With ``verify_promotion`` the pass is run a second time and the
partition image (pools + table segment) is hashed before and after:
recovery must be byte-identical-idempotent on a promoted replica, the
same property the crash matrix pins for single-node recovery.
"""

from __future__ import annotations

import hashlib
from collections.abc import Generator
from typing import TYPE_CHECKING, Any, Optional

from repro.cluster.replicator import PING_BYTES
from repro.core.recovery import recover_partition, seed_index_from_pools
from repro.errors import RDMAError, StoreError
from repro.rdma.rpc import RpcClient
from repro.sim.kernel import Event, Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Cluster

__all__ = ["FailureDetector", "partition_digest", "promote_partition"]


class FailureDetector:
    """Seeded, deterministic heartbeat monitor."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.node = cluster.fabric.create_node("cluster-monitor")
        self._rpcs: dict[int, RpcClient] = {}
        self.misses: dict[int, int] = {n.node_id: 0 for n in cluster.nodes}
        self.probes = 0
        self.deaths_declared = 0
        self._proc: Optional[Process] = None

    def _rpc(self, node_id: int) -> RpcClient:
        rpc = self._rpcs.get(node_id)
        if rpc is None:
            ep = self.cluster.fabric.connect(
                self.node, self.cluster.nodes[node_id].server.node
            )
            rpc = self._rpcs[node_id] = RpcClient(ep)
        return rpc

    def start(self) -> None:
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.env.process(self._run(), name="failure-detector")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            if self._proc is not self.env.active_process:
                self._proc.interrupt("stop")
        self._proc = None

    def _ping(self, node_id: int) -> Generator[Event, Any, bool]:
        try:
            yield from self._rpc(node_id).call({"op": "ping"}, PING_BYTES)
        except (RDMAError, StoreError):
            return False
        return True

    def _run(self) -> Generator[Event, Any, None]:
        cfg = self.cluster.cfg
        env = self.env
        try:
            while True:
                yield env.timeout(cfg.heartbeat_interval_ns)
                # Probe sequentially in node order: deterministic event
                # sequence for a given seed/topology.
                for node in self.cluster.nodes:
                    nid = node.node_id
                    if nid in self.cluster._dead_handled:
                        continue
                    self.probes += 1
                    proc = env.process(
                        self._ping(nid), name=f"ping:node{nid}"
                    )
                    timer = env.timeout(cfg.heartbeat_timeout_ns)
                    outcome = yield (proc | timer)
                    ok = bool(proc in outcome and proc.value)
                    if proc.is_alive:
                        proc.interrupt("deadline")
                    if ok:
                        self.misses[nid] = 0
                        continue
                    self.misses[nid] += 1
                    if self.misses[nid] >= cfg.miss_threshold:
                        self.deaths_declared += 1
                        self.cluster.on_node_dead(nid)
        except Interrupt:
            return


def partition_digest(server, part) -> str:
    """Hash of one partition's durable image: both pools plus its table
    segment (the crash matrix's byte-identity idiom, per partition)."""
    h = hashlib.sha256()
    for pool in part.pools:
        h.update(pool.read(0, pool.size))
    geom = server.config.partition_geometry
    base = getattr(part.table, "base", 0)
    h.update(bytes(server.device.read(base, geom.table_bytes)))
    return h.hexdigest()


def promote_partition(
    cluster: "Cluster", part_id: int
) -> Generator[Event, Any, None]:
    """Promote the first surviving backup of an orphaned partition."""
    env = cluster.env
    cfg = cluster.cfg
    route = cluster.router.routes[part_id]
    if not route.replicas:
        return
    node = cluster.nodes[route.replicas[0]]
    if not node.alive:
        return
    # Let straggler in-flight WRITEs aimed at the dead primary resolve
    # (they tear against the dead node, never against us).
    yield env.timeout(cfg.failover_grace_ns)
    server = node.server
    part = server.partitions[part_id]
    yield from seed_index_from_pools(server, part)
    yield from recover_partition(server, part)
    if cfg.verify_promotion:
        before = partition_digest(server, part)
        yield from recover_partition(server, part)
        after = partition_digest(server, part)
        cluster.promotion_idempotent.append(before == after)
    cluster.router.mark_ready(part_id)
    # Resume shipping to whatever backups the route still lists.
    node.start_shipper(part_id)
    cluster.promotions += 1
