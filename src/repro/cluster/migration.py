"""Online partition migration between nodes.

Reuses the log cleaner's playbook — copy live versions elsewhere, mark
the originals with ``FLAG_TRANS``, flip the pointer — across the fabric
instead of across pools:

1. **Clean slate** — the destination ``repl_reset``s the partition
   (zeroing any stale shipped extents) so the promotion scan can never
   resurrect a previous tenant's records.
2. **Copy pass (live)** — walk the source's table segment, pick each
   key's newest *intact* version (valid + durable-or-CRC-ok, the
   cleaner's rule), and move batches: one ``mig_alloc`` RPC reserves
   compacted destination offsets, one doorbell-batched WRITE chain
   carries the records, one ``mig_commit`` RPC persists + indexes them.
   Records are rebuilt with ``FLAG_VALID`` only (the destination sets
   the durability flag itself after persisting — same discipline as the
   verifier) and cleared pointers (the destination log is a fresh,
   single-version history). The source keeps serving reads and writes
   throughout; copied source versions gain ``FLAG_TRANS``, which the
   client location cache already treats as "stale, re-resolve".
3. **Drain + delta** — the source partition is write-fenced (allocs
   fail with ``ERR_FENCED``; the cluster client waits and re-routes),
   in-flight WRITEs get ``drain_grace_ns`` to land, and every record
   appended since the copy-pass snapshot is re-copied (last write wins
   at the destination index).
4. **Flip** — the router makes the destination primary (epoch bump →
   clients drop caches and re-route), the fence drops, and the
   destination starts shipping its fresh log to the surviving backups
   (after ``repl_reset``-ing them: their bytes describe the *source's*
   layout, the destination's is compacted differently).

A node death mid-migration aborts cleanly: the route rolls back (or the
failure path takes over when the source itself died) and the
destination's partial copy is inert — the next migration to that
destination starts with its own reset.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING, Any, Optional

from repro.baselines.partition import ObjectLocation, Partition
from repro.cluster.replicator import REPL_RESET_BYTES
from repro.errors import RDMAError, StoreError
from repro.kv.hashtable import key_fingerprint
from repro.kv.objects import (
    FLAG_TRANS,
    FLAG_VALID,
    HEADER_SIZE,
    build_header,
    parse_header,
)
from repro.sim.kernel import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Cluster, ClusterNode

__all__ = ["migrate_partition"]

MIG_ALLOC_OVERHEAD = 24
MIG_ALLOC_ITEM_BYTES = 8
MIG_COMMIT_OVERHEAD = 24
MIG_COMMIT_ITEM_BYTES = 12


def _latest_intact(
    part: Partition, entry_off: int, fp: int
) -> Generator[Event, Any, Optional[tuple[ObjectLocation, Any]]]:
    """The cleaner's selection rule: newest version that is valid and
    provably intact (durable flag, else CRC), walking pre_ptr down."""
    env = part.env
    cfg = part.config
    t = cfg.nvm_timing
    slot = part.table.read_cur(entry_off)
    loc = (
        ObjectLocation(pool=slot.pool, offset=slot.offset, size=slot.size)
        if slot is not None
        else None
    )
    visited: set[tuple[int, int]] = set()
    while loc is not None:
        if (loc.pool, loc.offset) in visited:
            return None
        visited.add((loc.pool, loc.offset))
        yield env.timeout(t.read_cost(loc.size))
        img = part.read_object(loc)
        if (
            img.well_formed
            and key_fingerprint(img.key) == fp
            and img.valid
        ):
            if img.durable:
                return loc, img
            yield env.timeout(cfg.crc_cost.cost_ns(img.vlen))
            if part.object_value_ok(img):
                return loc, img
        loc = part.previous_location(loc)
    return None


def _copy_batch(
    cluster: "Cluster",
    src: "ClusterNode",
    dst_id: int,
    part_id: int,
    records: list[tuple[ObjectLocation, Any]],
    stats: dict,
) -> Generator[Event, Any, None]:
    """Move one batch: mig_alloc → doorbell WRITE chain → mig_commit,
    then FLAG_TRANS the source copies."""
    src_part = src.server.partitions[part_id]
    datas = []
    for _loc, img in records:
        datas.append(
            build_header(
                flags=FLAG_VALID,
                klen=img.klen,
                vlen=img.vlen,
                crc=img.crc,
                ts=img.ts,
            )
            + img.key
            + img.value
        )
    resp = yield from src.call(
        dst_id,
        {"op": "mig_alloc", "part": part_id, "sizes": [len(d) for d in datas]},
        MIG_ALLOC_OVERHEAD + MIG_ALLOC_ITEM_BYTES * len(datas),
    )
    ep = src.link(dst_id)
    rkey = cluster.pool_rkey(dst_id, part_id, resp["pool"])
    yield from ep.write_many(
        [(rkey, off, data) for off, data in zip(resp["offs"], datas)]
    )
    yield from src.call(
        dst_id,
        {
            "op": "mig_commit",
            "part": part_id,
            "pool": resp["pool"],
            "items": [
                (off, len(data)) for off, data in zip(resp["offs"], datas)
            ],
        },
        MIG_COMMIT_OVERHEAD + MIG_COMMIT_ITEM_BYTES * len(datas),
    )
    for loc, img in records:
        src_part.set_object_flags(loc, img.flags | FLAG_TRANS)
    stats["moved"] += len(records)
    stats["bytes"] += sum(len(d) for d in datas)


def migrate_partition(
    cluster: "Cluster", part_id: int, dst_id: int
) -> Generator[Event, Any, dict]:
    """Live-migrate one partition to ``dst_id``. Returns a stats dict;
    failures abort the migration (stats["aborted"]) rather than raise —
    a node death mid-move is the failover path's business, not ours."""
    env = cluster.env
    cfg = cluster.cfg
    router = cluster.router
    stats: dict[str, Any] = {
        "part": part_id,
        "dst": dst_id,
        "moved": 0,
        "delta_moved": 0,
        "bytes": 0,
        "aborted": False,
        "duration_ns": 0.0,
    }
    start = env.now
    src_id = router.primary(part_id)
    if (
        src_id is None
        or src_id == dst_id
        or not cluster.alive(src_id)
        or not cluster.alive(dst_id)
        or not router.routable(part_id)
    ):
        stats["aborted"] = True
        cluster.migrations_aborted += 1
        return stats
    src = cluster.nodes[src_id]
    src_part = src.server.partitions[part_id]
    t = src.server.config.nvm_timing

    def check_live() -> None:
        if (
            not cluster.alive(src_id)
            or not cluster.alive(dst_id)
            or router.primary(part_id) != src_id
        ):
            raise StoreError("migration interrupted by node failure")

    began = False
    try:
        # 1. clean slate at the destination.
        yield from src.call(
            dst_id,
            {"op": "repl_reset", "part": part_id, "gen": -1},
            REPL_RESET_BYTES,
        )
        wp = src_part.write_pool_id
        mark = src_part.pools[wp].head
        router.begin_migration(part_id, dst_id)
        began = True

        # 2. copy pass over a snapshot of the index (writes continue).
        batch: list[tuple[ObjectLocation, Any]] = []
        for entry_off, entry in list(src_part.table.iter_entries()):
            check_live()
            found = yield from _latest_intact(src_part, entry_off, entry.fp)
            if found is None:
                continue
            batch.append(found)
            if len(batch) >= cfg.migrate_batch:
                yield from _copy_batch(
                    cluster, src, dst_id, part_id, batch, stats
                )
                batch = []
        if batch:
            yield from _copy_batch(cluster, src, dst_id, part_id, batch, stats)

        # 3. fence, drain, delta.
        check_live()
        router.drain(part_id)
        src_part.fenced = True
        yield env.timeout(cfg.drain_grace_ns)
        check_live()
        if src_part.write_pool_id != wp:
            raise StoreError("log cleaning switched pools mid-migration")
        pool = src_part.pools[wp]
        delta_fps: list[int] = []
        seen: set[int] = set()
        for alloc in pool.allocations:
            if alloc.offset < mark:
                continue
            yield env.timeout(t.read_cost(HEADER_SIZE))
            hdr = parse_header(pool.read(alloc.offset, HEADER_SIZE))
            if hdr is None:
                continue
            yield env.timeout(t.read_cost(hdr.klen))
            key = bytes(pool.read(alloc.offset + HEADER_SIZE, hdr.klen))
            fp = key_fingerprint(key)
            if fp not in seen:
                seen.add(fp)
                delta_fps.append(fp)
        moved_before_delta = stats["moved"]
        batch = []
        for fp in delta_fps:
            check_live()
            entry_off = src_part.table.find(fp)
            if entry_off is None:
                continue
            found = yield from _latest_intact(src_part, entry_off, fp)
            if found is None:
                continue
            batch.append(found)
            if len(batch) >= cfg.migrate_batch:
                yield from _copy_batch(
                    cluster, src, dst_id, part_id, batch, stats
                )
                batch = []
        if batch:
            yield from _copy_batch(cluster, src, dst_id, part_id, batch, stats)
        stats["delta_moved"] = stats["moved"] - moved_before_delta

        # 4. flip ownership; re-seed replication from the new primary.
        check_live()
        router.finish_migration(part_id)
        src_part.fenced = False
        # The source is out of the replica set: its shipper would race
        # the new primary's (stale layout vs compacted) on any surviving
        # backup. Retire it before the destination starts shipping.
        old_shipper = src.shippers.pop(part_id, None)
        if old_shipper is not None:
            old_shipper.stop()
        dst = cluster.nodes[dst_id]
        if cfg.replication_factor > 1:
            dst.start_shipper(part_id)
            shipper = dst.shippers.get(part_id)
            if shipper is not None:
                # The surviving backups hold the *source's* byte layout;
                # the destination's is compacted. Reset before shipping.
                shipper._need_reset = set(router.backups(part_id))
                shipper.caught_up = False
        cluster.migrations += 1
    except (RDMAError, StoreError) as exc:
        stats["aborted"] = True
        stats["error"] = str(exc)
        cluster.migrations_aborted += 1
        if cluster.alive(src_id):
            src_part.fenced = False
        if began and router.routes[part_id].migrating_to == dst_id:
            router.abort_migration(part_id)
    stats["duration_ns"] = env.now - start
    return stats
