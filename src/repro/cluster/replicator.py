"""Server-side log shipping: primary → backup replication of the log pool.

One :class:`LogShipper` runs per (primary node, owned partition). It
walks the write pool's allocation journal in order and ships appended
records to every live backup as **doorbell-batched one-sided WRITE
chains at identical offsets** — replicas share the primary's pool
geometry byte-for-byte, so a shipped record lands exactly where the
primary wrote it and the existing recovery pass (pre_ptr rollback, CRC
checks) replays a promoted backup's log with no translation. After the
WRITEs land, a small ``repl_commit`` RPC makes the backup persist the
ranges and advance its **replication watermark** — the byte offset up
to which the shipped prefix of the pool is durable remotely.

The watermark is what gates acknowledgement: a cluster put with
``replication_factor > 1`` follows its normal durable put with a
``repl_wait`` RPC that polls the primary's shipped watermark until the
record's end offset is covered on *every* live backup, so an acked PUT
is durable on ``replication_factor`` nodes. Only *settled* records are
shipped in order — durable ones (the verifier's flag is set), invalid
ones (deleted / superseded before verification), or ones whose verify
window expired (an abandoned client write; it can never ack, so it is
shipped as-is rather than letting it dam the watermark forever).

Failure semantics: a ship round that cannot reach a backup retries
after ``ship_retry_ns`` without advancing the watermark — repl_waits
behind it observe ``replication_lag`` until the failure detector
removes the dead backup from the route, at which point the round's
target set shrinks and acks resume at degraded redundancy. Lost
redundancy is *not* re-established by re-replicating to a new backup
(documented limitation; the route simply carries fewer replicas).

Log cleaning moves the partition's write pool: the shipper detects the
pool switch, bumps its shipping generation, tells every backup to
``repl_reset`` (zero the partition's shipped extents — stale records
from the previous generation would otherwise be resurrected by the
promotion scan, which trusts any parseable header), and re-ships the
new pool from offset zero.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import RDMAError, StoreError
from repro.kv.objects import FLAG_DURABLE, FLAG_VALID, HEADER_SIZE, parse_header
from repro.sim.kernel import Event, Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import ClusterNode

__all__ = [
    "LogShipper",
    "PING_BYTES",
    "REPAIR_FETCH_BYTES",
    "REPL_COMMIT_OVERHEAD",
    "REPL_RANGE_BYTES",
    "REPL_RESET_BYTES",
    "REPL_WAIT_BYTES",
]

#: Wire sizes of the cluster-internal control messages (bytes).
PING_BYTES = 16
REPL_COMMIT_OVERHEAD = 32
REPL_RANGE_BYTES = 12
REPL_RESET_BYTES = 24
REPL_WAIT_BYTES = 32
#: ``repair_fetch`` request (op + part/pool/offset/size); the response
#: pays its own size (header + the fetched record bytes).
REPAIR_FETCH_BYTES = 28


class LogShipper:
    """Ships one partition's log from its primary to the live backups."""

    def __init__(self, node: "ClusterNode", part_id: int) -> None:
        self.node = node
        self.cluster = node.cluster
        self.part_id = part_id
        self.part = node.server.partitions[part_id]
        self.env = node.env
        #: Pool currently being shipped (follows ``write_pool_id``).
        self.pool_id = self.part.write_pool_id
        #: Shipping generation, bumped on every pool switch; lets
        #: backups discard commits that raced a reset.
        self.gen = 0
        #: Next journal index to ship.
        self.cursor = 0
        #: Watermark: pool bytes [0, shipped_end) are durable on every
        #: target this shipper currently ships to.
        self.shipped_end = 0
        #: True when the last round found nothing left to ship.
        self.caught_up = True
        #: Backups that must ``repl_reset`` before receiving this gen.
        self._need_reset: set[int] = set()
        self.shipped_records = 0
        self.shipped_bytes = 0
        self.ship_rounds = 0
        self.failed_rounds = 0
        self._proc: Optional[Process] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> Process:
        self._proc = self.env.process(
            self._run(), name=f"ship:{self.node.name}:p{self.part_id}"
        )
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            if self._proc is not self.env.active_process:
                self._proc.interrupt("stop")
        self._proc = None

    # -- watermark queries --------------------------------------------------
    def covered(self, pool: int, end: int) -> bool:
        """Is the record ending at ``end`` in ``pool`` durable on every
        live backup? Records from a superseded pool generation are
        covered once the current pool is fully shipped (cleaning moved
        every live version there)."""
        if pool == self.pool_id:
            return self.shipped_end >= end and not self._need_reset
        return self.caught_up and not self._need_reset

    def is_shipped(self, pool: int, end: int) -> bool:
        """Are pool bytes ``[0, end)`` part of the shipped prefix every
        live backup holds *at identical offsets*? Gates replica-assisted
        repair: only then does ``repair_fetch(pool, off, size)`` name
        byte-for-byte the same record on a backup."""
        return (
            pool == self.pool_id
            and self.shipped_end >= end
            and not self._need_reset
        )

    @property
    def lag_bytes(self) -> int:
        """Bytes appended to the write pool but not yet watermarked."""
        pool = self.part.pools[self.pool_id]
        return max(0, pool.head - self.shipped_end)

    # -- the shipping loop --------------------------------------------------
    def _targets(self) -> list[int]:
        router = self.cluster.router
        return [
            nid
            for nid in router.backups(self.part_id)
            if self.cluster.alive(nid)
        ]

    def _run(self) -> Generator[Event, Any, None]:
        cfg = self.cluster.cfg
        env = self.env
        try:
            while True:
                if not self.node.alive:
                    return
                try:
                    advanced = yield from self._ship_round()
                except (RDMAError, StoreError):
                    # Unreachable backup (or it died mid-commit): hold
                    # the watermark and retry; the failure detector will
                    # shrink the target set if the backup is gone.
                    self.failed_rounds += 1
                    yield env.timeout(cfg.ship_retry_ns)
                    continue
                if not advanced:
                    yield env.timeout(cfg.ship_interval_ns)
        except Interrupt:
            return

    def _ship_round(self) -> Generator[Event, Any, bool]:
        """One scan-and-ship pass. Returns True when records moved."""
        cfg = self.cluster.cfg
        env = self.env
        part = self.part
        t = part.config.nvm_timing

        wp = part.write_pool_id
        if wp != self.pool_id:
            # Log cleaning switched pools: restart shipping at gen+1.
            self.gen += 1
            self.pool_id = wp
            self.cursor = 0
            self.shipped_end = 0
            self.caught_up = False
            self._need_reset = set(self._targets())

        targets = self._targets()
        if self._need_reset:
            # Only nodes still routed as backups need the reset.
            for nid in sorted(self._need_reset & set(targets)):
                yield from self.node.call(
                    nid,
                    {"op": "repl_reset", "part": self.part_id, "gen": self.gen},
                    REPL_RESET_BYTES,
                )
                self._need_reset.discard(nid)
            self._need_reset &= set(targets)

        pool = part.pools[self.pool_id]
        allocs = pool.allocations
        hold_window = part.config.verify_timeout_ns + cfg.ship_interval_ns
        batch = []
        while (
            self.cursor + len(batch) < len(allocs)
            and len(batch) < cfg.ship_batch
        ):
            a = allocs[self.cursor + len(batch)]
            yield env.timeout(t.read_cost(HEADER_SIZE))
            hdr = parse_header(pool.read(a.offset, HEADER_SIZE))
            if (
                hdr is not None
                and (hdr.flags & FLAG_VALID)
                and not (hdr.flags & FLAG_DURABLE)
                and env.now - hdr.ts <= hold_window
            ):
                # Not yet verified and still inside its verify window:
                # stop here to keep the shipped prefix in order.
                break
            batch.append(a)
        if not batch:
            self.caught_up = self.cursor >= len(allocs)
            return False
        self.caught_up = False

        end = batch[-1].offset + batch[-1].size
        payload = [(a.offset, pool.read(a.offset, a.size)) for a in batch]
        for nid in targets:
            ep = self.node.link(nid)
            rkey = self.cluster.pool_rkey(nid, self.part_id, self.pool_id)
            yield from ep.write_many(
                [(rkey, off, data) for off, data in payload]
            )
            yield from self.node.call(
                nid,
                {
                    "op": "repl_commit",
                    "part": self.part_id,
                    "pool": self.pool_id,
                    "gen": self.gen,
                    "end": end,
                    "ranges": [(a.offset, a.size) for a in batch],
                },
                REPL_COMMIT_OVERHEAD + REPL_RANGE_BYTES * len(batch),
            )
        self.cursor += len(batch)
        self.shipped_end = end
        self.shipped_records += len(batch)
        self.shipped_bytes += sum(a.size for a in batch)
        self.ship_rounds += 1
        return True

    # -- metrics ------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        return {
            "part": self.part_id,
            "pool": self.pool_id,
            "gen": self.gen,
            "shipped_records": self.shipped_records,
            "shipped_bytes": self.shipped_bytes,
            "ship_rounds": self.ship_rounds,
            "failed_rounds": self.failed_rounds,
            "watermark": self.shipped_end,
            "lag_bytes": self.lag_bytes,
        }


def repl_wait_loop(
    node: "ClusterNode", part_id: int, pool: int, end: int
) -> Generator[Event, Any, bool]:
    """Primary-side watermark wait (the body of the ``repl_wait`` RPC).

    Polls until the record is covered on every live backup or the wait
    times out. Returns True when covered; False on timeout (the handler
    maps that to a retryable ``replication_lag`` fault). With no shipper
    (replication off, or this partition not primaried here — e.g. the
    route moved while the request was in flight) the record has nothing
    to wait on and the wait succeeds immediately; the client's next op
    will observe the new epoch.
    """
    cfg = node.cluster.cfg
    env = node.env
    deadline = env.now + cfg.repl_wait_timeout_ns
    while True:
        shipper = node.shippers.get(part_id)
        if shipper is None or shipper.covered(pool, end):
            return True
        if env.now >= deadline:
            return False
        yield env.timeout(cfg.repl_poll_ns)
