"""Small shared utilities (no simulation dependencies)."""

from repro.util.lru import LruMap

__all__ = ["LruMap"]
