"""A small bounded LRU map.

Shared by the client-side amortization state: the key→location cache
(skip the bucket READ on the pure GET path) and the adaptive-read skip
map (which previously grew one entry per key forever). Deliberately
simulation-free and deterministic: eviction order depends only on the
operation sequence.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Iterator, Optional

__all__ = ["LruMap"]

_MISSING = object()


class LruMap:
    """Bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``peek`` does not. Inserting beyond
    ``capacity`` evicts the LRU entry (returned so callers can observe
    eviction). ``capacity <= 0`` disables the map entirely: every
    insert is dropped and every lookup misses, so a disabled cache
    costs one branch and keeps no state.
    """

    __slots__ = ("capacity", "_data")

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._data: OrderedDict[Any, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def get(self, key: Any, default: Any = None) -> Any:
        """Lookup that refreshes the entry's recency on a hit."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            return default
        self._data.move_to_end(key)
        return value

    def peek(self, key: Any, default: Any = None) -> Any:
        """Lookup without touching recency (tests / introspection)."""
        value = self._data.get(key, _MISSING)
        return default if value is _MISSING else value

    def put(self, key: Any, value: Any) -> Optional[tuple[Any, Any]]:
        """Insert/refresh ``key``; returns the evicted ``(key, value)``
        pair when the insert pushed an older entry out, else None."""
        if self.capacity <= 0:
            return None
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return None
        data[key] = value
        if len(data) > self.capacity:
            return data.popitem(last=False)
        return None

    def pop(self, key: Any, default: Any = None) -> Any:
        return self._data.pop(key, default)

    def clear(self) -> None:
        self._data.clear()

    def drop_where(self, predicate: Callable[[Any, Any], bool]) -> int:
        """Remove every entry for which ``predicate(key, value)`` holds;
        returns how many were dropped (cache invalidation sweeps)."""
        doomed = [k for k, v in self._data.items() if predicate(k, v)]
        for k in doomed:
            del self._data[k]
        return len(doomed)

    def evict_expired(
        self, is_expired: Callable[[Any, Any], bool], scan_limit: int = 4
    ) -> int:
        """Opportunistically drop up to ``scan_limit`` *oldest* entries
        that ``is_expired(key, value)`` says are dead. Called on the hot
        path, so it scans a bounded prefix instead of the whole map —
        repeated inserts sweep the expired tail out incrementally."""
        dropped = 0
        for key in list(self._data)[:scan_limit]:
            if is_expired(key, self._data[key]):
                del self._data[key]
                dropped += 1
        return dropped
