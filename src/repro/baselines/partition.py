"""One server partition: the unit of sharding in the partitioned core.

The paper's eFactory server is deliberately single-threaded per node —
one hash table, one log pool, one background verification thread
(§4.3.2).  To give the reproduction a scaling axis the monolith lacks,
:class:`~repro.baselines.base.BaseServer` is a composition of N
:class:`Partition` objects behind a deterministic key→partition router
(:func:`repro.kv.hashtable.partition_of_fp`).  Each partition models one
server core's worth of state:

* its own log pool(s) — pool ids stay partition-local, so the 1-bit
  pool field in packed slots and every ``pre_ptr``/``nxt_ptr`` chain
  remain valid without widening the on-media layout;
* its own hash-table segment (a contiguous slice of the table MR, so
  clients still resolve any key with one one-sided READ);
* its own background-verifier cursor and log-cleaner state (attached by
  :class:`~repro.core.server.EFactoryServer`);
* an optional CPU dispatch budget serializing handler work per
  partition (one core per partition; ``None`` when ``num_partitions ==
  1`` so the single-partition event sequence is bit-for-bit the
  monolith's).

All object-path helpers that used to live on ``BaseServer`` (allocate,
publish, persist, lookup, read) live here at partition scope;
``BaseServer`` keeps thin partition-0 delegates for compatibility.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

from repro.crc.crc32 import crc32_fast
from repro.kv.hashtable import Slot, key_fingerprint
from repro.kv.objects import (
    FLAG_DURABLE,
    FLAG_VALID,
    HEADER_SIZE,
    NULL_PTR,
    OBJECT_HEADER,
    ObjectImage,
    build_header,
    object_size,
    pack_ptr,
    parse_header,
    parse_object,
    unpack_ptr,
)
from repro.sim.kernel import Event
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.baselines.base import BaseServer
    from repro.kv.logpool import LogPool
    from repro.rdma.mr import MemoryRegion

__all__ = ["ObjectLocation", "Partition"]


@dataclass(frozen=True)
class ObjectLocation:
    """Where an object lives: pool id, pool-relative offset, total size.

    Pool ids are partition-local; an :class:`ObjectLocation` is only
    meaningful together with the partition that owns the pools.
    """

    pool: int
    offset: int
    size: int

    @property
    def slot(self) -> Slot:
        return Slot(pool=self.pool, size=self.size, offset=self.offset)


class Partition:
    """State and object-path operations of one server shard."""

    def __init__(
        self,
        server: "BaseServer",
        part_id: int,
        table: Any,
        pools: "list[LogPool]",
        pool_mrs: "list[MemoryRegion]",
        *,
        cpu_budget: Optional[int] = None,
    ) -> None:
        self.server = server
        self.env = server.env
        self.part_id = part_id
        self.table = table
        self.pools = pools
        self.pool_mrs = pool_mrs
        #: Pool receiving new writes (log cleaning redirects this).
        self.write_pool_id = 0
        #: Set while this partition's log cleaner runs a cycle.
        self.cleaning_active = False
        #: Write fence: while True, alloc RPCs fail with ERR_FENCED.
        #: Raised by cluster migration during the drain window so the
        #: delta pass sees a frozen log; never set on single-node runs.
        self.fenced = False
        #: Attached by EFactoryServer (None for the other schemes).
        self.verifier: Any = None
        self.cleaner: Any = None
        self.scrubber: Any = None
        #: Parity/checksum-ledger tier; attached by BaseServer when
        #: ``parity_stripe_kb > 0``, else None (legacy paths verbatim).
        self.integrity: Any = None
        #: Per-partition dispatch budget (one core per partition).  None
        #: when the server is unpartitioned: acquire_budget then yields
        #: nothing, keeping the monolith's event sequence untouched.
        self.cpu: Optional[Resource] = (
            Resource(server.env, capacity=cpu_budget) if cpu_budget else None
        )
        # -- admission control (config.admission_watermark > 0) --------
        #: Requests admitted and not yet departed (handler in flight).
        self.inflight = 0
        #: High-water mark of :attr:`inflight` (load metric).
        self.peak_inflight = 0
        #: Requests admitted / shed with ERR_BUSY since server start.
        self.admitted_requests = 0
        self.shed_requests = 0

    # -- admission control ----------------------------------------------------
    def try_admit(self) -> bool:
        """Admission decision at handler entry (instant, no events).

        With the watermark disabled (0, the default) this is a bare
        ``return True`` — no counters move, no injection site fires, so
        every existing run stays bit-identical. Enabled, a request over
        the watermark is shed (the handler answers retryable
        ``ERR_BUSY``); admitted requests must be balanced with
        :meth:`depart`.
        """
        wm = self.config.admission_watermark
        if wm == 0:
            return True
        inj = self.server.fabric.injector
        if inj is not None:
            act = inj.fire("admission.enter")
            if act is not None and act.kind == "admission_shed":
                # Chaos-forced shed: exercises the client backoff loop
                # without needing real overload.
                self.shed_requests += 1
                return False
        if self.inflight >= wm:
            self.shed_requests += 1
            if inj is not None:
                inj.fire("admission.shed")
            return False
        self.inflight += 1
        self.admitted_requests += 1
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight
        return True

    def depart(self) -> None:
        """Balance a successful :meth:`try_admit` at handler exit."""
        if self.config.admission_watermark:
            self.inflight -= 1

    @property
    def config(self):
        return self.server.config

    @property
    def device(self):
        return self.server.device

    # -- dispatch budget ------------------------------------------------------
    def acquire_budget(self) -> Generator[Event, Any, Any]:
        """Claim this partition's handler budget (no-op when unsharded)."""
        if self.cpu is None:
            return None
        req = yield from self.cpu.acquire()
        return req

    def release_budget(self, req: Any) -> None:
        if req is not None:
            self.cpu.release(req)

    # -- the shared allocation path (client-active PUT, steps 2-4) ------------
    def alloc_object(
        self,
        key: bytes,
        vlen: int,
        crc: int,
        *,
        publish: bool = True,
        flags: int = FLAG_VALID,
        charge_alloc: bool = True,
    ) -> Generator[Event, Any, tuple[ObjectLocation, int]]:
        """Allocate + write header/key (+ index update when ``publish``).

        Runs inside a request handler (CPU already held). Returns the
        location and the hash-entry offset. ``publish=False`` defers the
        index update (IMM/SAW publish only after the data is durable).
        ``charge_alloc=False`` skips the allocator's CPU cost — the
        ``alloc_batch`` handler carves one slab per partition group, so
        only the group's first object pays the log-head bump.
        """
        cfg = self.config
        env = self.env
        pool = self.pools[self.write_pool_id]
        size = object_size(len(key), vlen)
        if charge_alloc:
            yield env.timeout(cfg.alloc_ns)
        offset = pool.allocate(size)
        loc = ObjectLocation(pool=pool.pool_id, offset=offset, size=size)

        # previous-version link (the version list, §4.2.2)
        fp = key_fingerprint(key)
        yield env.timeout(cfg.index_ns)
        entry_off = self.table.find_or_create(fp)
        prev = self.table.read_cur(entry_off)
        pre_ptr = pack_ptr(prev.pool, prev.offset) if prev is not None else NULL_PTR

        header = build_header(
            flags=flags,
            klen=len(key),
            vlen=vlen,
            crc=crc,
            pre_ptr=pre_ptr,
            ts=int(env.now),
        )
        yield env.timeout(cfg.header_write_ns + cfg.meta_indirection_ns)
        pool.write(offset, header + key)

        # Forward link (§4.2.2 NextPTR): lets the log cleaner find "the
        # next version of the migrated current version". One atomic
        # 8-byte store into the previous version's header.
        if prev is not None:
            nxt_field = OBJECT_HEADER.offset_of("nxt_ptr")
            prev_pool = self.pools[prev.pool]
            old_nxt = (
                bytes(prev_pool.read(prev.offset + nxt_field, 8))
                if self.integrity is not None
                else None
            )
            self.device.write_atomic64(
                prev_pool.abs_addr(prev.offset) + nxt_field,
                OBJECT_HEADER.pack_field(
                    "nxt_ptr", pack_ptr(pool.pool_id, offset)
                ),
            )
            if old_nxt is not None:
                # The previous head may already be covered by the parity
                # tier; fold the link rewrite into parity + ledger.
                self.integrity.note_mutation(
                    prev.pool, prev.offset, nxt_field, old_nxt
                )

        # Ordering matters for recoverability (§4.3.1: "after all the
        # metadata has been updated and persisted"): the header must be
        # durable *before* the hash entry can point at it — otherwise a
        # crash could naturally evict the entry update while losing the
        # header, severing the version list below an intact version.
        if cfg.persist_meta:
            yield from self.persist_header(loc, len(key))
        if publish:
            yield from self.publish_object(entry_off, loc)
        if cfg.persist_meta:
            yield from self.persist_entry_timed(entry_off)
        self.server.on_allocated(self, loc, entry_off)
        return loc, entry_off

    def publish_object(
        self, entry_off: int, loc: ObjectLocation
    ) -> Generator[Event, Any, None]:
        """Make the hash entry point at the object (one atomic store)."""
        yield self.env.timeout(self.config.entry_update_ns)
        self.table.set_cur(entry_off, loc.slot)

    def persist_header(
        self, loc: ObjectLocation, klen: int
    ) -> Generator[Event, Any, None]:
        """Flush the object header + key (before any entry exposes it)."""
        t = self.config.nvm_timing
        meta_len = HEADER_SIZE + klen
        yield self.env.timeout(t.flush_cost(meta_len))
        self.device.flush(self.pools[loc.pool].abs_addr(loc.offset), meta_len)

    def persist_entry_timed(self, entry_off: int) -> Generator[Event, Any, None]:
        """Flush the hash entry's line (one CLWB + fence)."""
        t = self.config.nvm_timing
        yield self.env.timeout(t.flush_line_ns + t.fence_ns)
        self.table.persist_entry(entry_off)

    # -- shared object helpers ------------------------------------------------
    def read_object(self, loc: ObjectLocation) -> ObjectImage:
        """Instant state read of an object (timing charged by caller)."""
        return parse_object(self.pools[loc.pool].read(loc.offset, loc.size))

    def object_value_ok(self, img: ObjectImage) -> bool:
        """Functional CRC verification (the *time* is charged by caller
        via ``config.crc_cost``)."""
        return (
            img.well_formed
            and img.vlen == len(img.value)
            and crc32_fast(img.value) == img.crc
        )

    def persist_object(self, loc: ObjectLocation) -> Generator[Event, Any, None]:
        """Timed flush of a whole object."""
        pool = self.pools[loc.pool]
        yield from self.device.persist(pool.abs_addr(loc.offset), loc.size)

    def set_object_flags(self, loc: ObjectLocation, flags: int) -> None:
        """Instant single-byte flag store (offset 2 in the header)."""
        pool = self.pools[loc.pool]
        if self.integrity is None:
            pool.write(loc.offset + 2, bytes([flags]))
            return
        old = bytes(pool.read(loc.offset + 2, 1))
        pool.write(loc.offset + 2, bytes([flags]))
        self.integrity.note_mutation(loc.pool, loc.offset, 2, old)

    def mark_durable(self, loc: ObjectLocation, img: ObjectImage) -> None:
        self.set_object_flags(loc, img.flags | FLAG_DURABLE)
        # the flag itself must be durable before pure-RDMA readers trust it
        self.device.flush(self.pools[loc.pool].abs_addr(loc.offset), 8)

    def lookup_slot(
        self, key: bytes
    ) -> Optional[tuple[int, Optional[Slot], Optional[Slot]]]:
        """(entry_off, cur, alt) for ``key`` or None (state only)."""
        fp = key_fingerprint(key)
        entry_off = self.table.find(fp)
        if entry_off is None:
            return None
        return entry_off, self.table.read_cur(entry_off), self.table.read_alt(entry_off)

    def previous_location(self, loc: ObjectLocation) -> Optional[ObjectLocation]:
        """Follow the on-media pre_ptr one hop down the version list."""
        hdr = parse_header(self.pools[loc.pool].read(loc.offset, HEADER_SIZE))
        if hdr is None:
            return None
        prev = unpack_ptr(hdr.pre_ptr)
        if prev is None:
            return None
        pool_id, offset = prev
        prev_hdr = parse_header(self.pools[pool_id].read(offset, HEADER_SIZE))
        if prev_hdr is None:
            return None
        return ObjectLocation(
            pool=pool_id,
            offset=offset,
            size=object_size(prev_hdr.klen, prev_hdr.vlen),
        )
