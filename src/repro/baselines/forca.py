"""Forca — server-side verification and persisting on the read path
(§5.3.4, after Huang et al. [ICCD'18]).

PUT: exactly Erda's write path (client-active, CRC shipped in the
request, nothing flushed) over the bucketized index, plus the extra
object-metadata indirection the paper calls out in §6.1 ("Forca has an
extra intermediate layer of object metadata") — modelled as added
handler CPU per operation.

GET: always an RPC. The server looks up the object, CRC-verifies it,
*persists it*, and returns its location; the client then fetches it with
a one-sided READ. Verification failure walks to the previous version.
Server CPU + CRC on every read is why Forca trails in Figs 2/9/10.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional

from repro.baselines.base import (
    BaseClient,
    BaseServer,
    GET_REQUEST_OVERHEAD,
    ObjectLocation,
    RESPONSE_BYTES,
    StoreConfig,
)
from repro.kv.objects import HEADER_SIZE, object_size, parse_header, unpack_ptr
from repro.rdma.rpc import ERR_NO_INTACT, ERR_NOT_FOUND, rpc_error
from repro.rdma.verbs import Message
from repro.sim.kernel import Event

__all__ = ["ForcaServer", "ForcaClient", "forca_config"]


def forca_config(**overrides: Any) -> StoreConfig:
    cfg = StoreConfig(
        persist_meta=False,
        crc_on_put=True,
        meta_indirection_ns=120.0,
    )
    return cfg.with_(**overrides) if overrides else cfg


class ForcaServer(BaseServer):
    store_name = "forca"

    def _register_handlers(self) -> None:
        super()._register_handlers()
        self.rpc.register("get_loc", self._handle_get_loc)

    def _handle_get_loc(self, msg: Message) -> Generator[Event, Any, tuple[Any, int]]:
        cfg = self.config
        key: bytes = msg.payload["key"]
        part = self.partition_for_key(key)
        budget = yield from part.acquire_budget()
        try:
            yield self.env.timeout(cfg.index_ns + cfg.meta_indirection_ns)
            found = part.lookup_slot(key)
            if found is None:
                return rpc_error(f"key {key!r} not found", ERR_NOT_FOUND), RESPONSE_BYTES
            _entry_off, cur, _alt = found
            if cur is None:
                return rpc_error(f"key {key!r} has no version", ERR_NOT_FOUND), RESPONSE_BYTES

            loc: Optional[ObjectLocation] = ObjectLocation(
                pool=cur.pool, offset=cur.offset, size=cur.size
            )
            while loc is not None:
                img = part.read_object(loc)
                # Forca verifies by CRC on *every* read (no durability flag).
                yield self.env.timeout(cfg.crc_cost.cost_ns(img.vlen))
                if img.well_formed and img.key == key and part.object_value_ok(img):
                    # ... and persists on the read path before returning.
                    # (No durability flag — Forca re-verifies every read;
                    # that absence is the design gap eFactory closes.)
                    yield from part.persist_object(loc)
                    return (
                        {"pool": loc.pool, "offset": loc.offset,
                         "size": loc.size, "part": part.part_id},
                        RESPONSE_BYTES,
                    )
                loc = self._previous_location(part, img)
            return rpc_error(f"key {key!r}: no intact version", ERR_NO_INTACT), RESPONSE_BYTES
        finally:
            part.release_budget(budget)

    def _previous_location(self, part, img) -> Optional[ObjectLocation]:
        prev = unpack_ptr(img.pre_ptr) if img.well_formed else None
        if prev is None:
            return None
        pool_id, offset = prev
        # Size the previous version from its own header (state read; the
        # walk's timing is dominated by the CRC charges above).
        hdr = parse_header(part.pools[pool_id].read(offset, HEADER_SIZE))
        if hdr is None:
            return None  # header itself torn: cannot even size the object
        return ObjectLocation(
            pool=pool_id, offset=offset, size=object_size(hdr.klen, hdr.vlen)
        )


class ForcaClient(BaseClient):
    def put(self, key: bytes, value: bytes) -> Generator[Event, Any, None]:
        yield from self.put_client_active(key, value, with_crc=True)

    def get(
        self, key: bytes, size_hint: Optional[int] = None
    ) -> Generator[Event, Any, bytes]:
        resp = yield from self.rpc.call(
            {"op": "get_loc", "key": key}, GET_REQUEST_OVERHEAD + len(key)
        )
        img = yield from self.read_object_loc(
            resp["pool"], resp["offset"], resp["size"], resp.get("part", 0)
        )
        self._check_found(img, key)
        return img.value
