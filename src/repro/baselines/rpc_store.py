"""Pure RPC store: the server's CPU does everything (§2.2, Fig 1).

PUT: the value travels inside the SEND; the server copies it from the
staging buffer into NVM (an extra pass over the data the client-active
schemes avoid), flushes it, *then* publishes the hash entry — so
metadata never exposes incomplete data and no CRC is ever needed.

GET: request/response RPC with the value inline.

This is the paper's durable baseline: simple, always consistent, and
CPU-bound — the scheme the client-active designs are measured against.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional

from repro.baselines.base import (
    BaseClient,
    BaseServer,
    GET_REQUEST_OVERHEAD,
    PUT_REQUEST_OVERHEAD,
    RESPONSE_BYTES,
    StoreConfig,
)
from repro.kv.objects import FLAG_DURABLE, FLAG_VALID, HEADER_SIZE
from repro.rdma.rpc import ERR_NOT_FOUND, rpc_error
from repro.rdma.verbs import Message
from repro.sim.kernel import Event

__all__ = ["RpcStoreServer", "RpcStoreClient", "rpc_store_config"]


def rpc_store_config(**overrides: Any) -> StoreConfig:
    cfg = StoreConfig(persist_meta=False, crc_on_put=False)
    return cfg.with_(**overrides) if overrides else cfg


class RpcStoreServer(BaseServer):
    store_name = "rpc"

    def _register_handlers(self) -> None:
        self.rpc.register("put", self._handle_put)
        self.rpc.register("get", self._handle_get)

    def _handle_put(self, msg: Message) -> Generator[Event, Any, tuple[Any, int]]:
        p = msg.payload
        key: bytes = p["key"]
        value: bytes = p["value"]
        part = self.partition_for_key(key)
        budget = yield from part.acquire_budget()
        try:
            # Allocate + write metadata, but publish only after durability.
            loc, entry_off = yield from part.alloc_object(
                key, len(value), 0, publish=False, flags=FLAG_VALID | FLAG_DURABLE
            )
            # Staging-buffer -> NVM copy (the extra data pass RPC pays).
            value_addr = (
                part.pools[loc.pool].abs_addr(loc.offset) + HEADER_SIZE + len(key)
            )
            yield from self.device.copy_in(value_addr, value)
            yield from part.persist_object(loc)
            yield from part.publish_object(entry_off, loc)
            yield from self._persist_entry_timed(part, entry_off)
            return {"ok": True}, RESPONSE_BYTES
        finally:
            part.release_budget(budget)

    def _handle_get(self, msg: Message) -> Generator[Event, Any, tuple[Any, int]]:
        key: bytes = msg.payload["key"]
        part = self.partition_for_key(key)
        budget = yield from part.acquire_budget()
        try:
            yield self.env.timeout(self.config.index_ns)
            found = part.lookup_slot(key)
            if found is None or found[1] is None:
                return rpc_error(f"key {key!r} not found", ERR_NOT_FOUND), RESPONSE_BYTES
            _entry_off, cur, _alt = found
            loc_img = part.read_object(
                # metadata published only after durability => object intact
                _loc_from_slot(cur)
            )
            # server-side read of the value before shipping it back
            yield self.env.timeout(self.config.nvm_timing.read_cost(loc_img.vlen))
            return (
                {"value": loc_img.value},
                RESPONSE_BYTES + loc_img.vlen,
            )
        finally:
            part.release_budget(budget)

    def _persist_entry_timed(self, part, entry_off: int) -> Generator[Event, Any, None]:
        t = self.config.nvm_timing
        yield self.env.timeout(t.flush_cost(32))
        part.table.persist_entry(entry_off)


def _loc_from_slot(slot):
    from repro.baselines.base import ObjectLocation

    return ObjectLocation(pool=slot.pool, offset=slot.offset, size=slot.size)


class RpcStoreClient(BaseClient):
    def put(self, key: bytes, value: bytes) -> Generator[Event, Any, None]:
        yield from self.call_resilient(
            lambda: self.rpc.call(
                {"op": "put", "key": key, "value": value},
                PUT_REQUEST_OVERHEAD + len(key) + len(value),
            ),
            label="put.rpc",
        )

    def get(
        self, key: bytes, size_hint: Optional[int] = None
    ) -> Generator[Event, Any, bytes]:
        resp = yield from self.call_resilient(
            lambda: self.rpc.call(
                {"op": "get", "key": key}, GET_REQUEST_OVERHEAD + len(key)
            ),
            label="get.rpc",
        )
        return resp["value"]
