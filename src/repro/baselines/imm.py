"""IMM — durability via WRITE_WITH_IMM (§5.3.2, after Orion [FAST'19]).

PUT: alloc RPC → WRITE_WITH_IMM carrying the value; the immediate field
names the allocation, so the server learns of completion instantly,
flushes the data into NVM, publishes metadata, and acks the client. One
fewer round trip than SAW (the Fig 1 "~5% better than RPC" scheme), but
the synchronous flush still sits on the critical path and burns server
CPU — which is why IMM stops scaling in Fig 10 once writes dominate.

GET: two one-sided READs, no verification needed.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional

from repro.baselines.base import (
    BaseClient,
    BaseServer,
    RESPONSE_BYTES,
    StoreConfig,
)
from repro.errors import KeyNotFoundError, StoreError
from repro.kv.objects import FLAG_DURABLE
from repro.rdma.verbs import Message, Opcode
from repro.sim.kernel import Event

__all__ = ["IMMServer", "IMMClient", "imm_config"]


def imm_config(**overrides: Any) -> StoreConfig:
    cfg = StoreConfig(persist_meta=False, crc_on_put=False)
    return cfg.with_(**overrides) if overrides else cfg


class IMMServer(BaseServer):
    store_name = "imm"
    publish_on_alloc = False

    def _register_handlers(self) -> None:
        super()._register_handlers()
        # WRITE_WITH_IMM completions arrive as non-dict-payload messages.
        self.rpc.register_default(self._handle_imm_completion)

    def _handle_imm_completion(
        self, msg: Message
    ) -> Generator[Event, Any, Optional[tuple[Any, int]]]:
        if msg.opcode is not Opcode.WRITE_WITH_IMM or msg.imm is None:
            return None  # stray message; drop
        pending = self.pending_allocs.pop(msg.imm, None)
        if pending is None:
            return None
        loc, entry_off, _klen, part = pending
        budget = yield from part.acquire_budget()
        try:
            # Flag before flushing so the durable flag never outruns the data.
            img = part.read_object(loc)
            part.set_object_flags(loc, img.flags | FLAG_DURABLE)
            yield from part.persist_object(loc)
            yield from part.publish_object(entry_off, loc)
            yield self.env.timeout(self.config.nvm_timing.flush_cost(32))
            part.table.persist_entry(entry_off)
        finally:
            part.release_budget(budget)
        # Acked off-CPU by the dispatch loop; the client matches on the
        # payload since it never saw this message's req_id.
        return {"ack_alloc": msg.imm}, RESPONSE_BYTES


class IMMClient(BaseClient):
    def put(self, key: bytes, value: bytes) -> Generator[Event, Any, None]:
        resp = yield from self.alloc_rpc(key, len(value), 0)
        alloc_id = resp["alloc_id"]
        if alloc_id > 0xFFFFFFFF:
            raise StoreError("alloc_id no longer fits the 32-bit imm field")
        rkey = self._pool_rkey(resp.get("part", 0), resp["pool"])
        yield from self.ep.write_with_imm(
            rkey, resp["value_off"], value, imm=alloc_id
        )
        # Wait for the server's durability ack.
        yield self.node.srq.get(
            lambda m: isinstance(m.payload, dict)
            and m.payload.get("ack_alloc") == alloc_id
        )

    def get(
        self, key: bytes, size_hint: Optional[int] = None
    ) -> Generator[Event, Any, bytes]:
        fp, slots = yield from self.read_bucket(key)
        if slots is None:
            raise KeyNotFoundError(f"key {key!r} not indexed")
        cur, alt = slots
        slot = cur or alt
        if slot is None:
            raise KeyNotFoundError(f"key {key!r} has no published version")
        img = yield from self.read_object_at(slot, self.partition_of(fp))
        self._check_found(img, key)
        return img.value
