"""SAW — send-after-write remote durability (§5.3.1, after [Douglas'15]).

PUT: alloc RPC → one-sided WRITE of the value → an *extra* RDMA SEND
telling the server to flush the data and (only then) update metadata.
The trailing round trip plus the synchronous flush is why SAW "performs
worse than RPC for all data sizes" in Fig 1.

GET: two one-sided READs with no verification — safe, because metadata
is published only after the data is durable.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional

from repro.baselines.base import (
    BaseClient,
    BaseServer,
    RESPONSE_BYTES,
    StoreConfig,
)
from repro.errors import KeyNotFoundError
from repro.kv.objects import FLAG_DURABLE
from repro.rdma.rpc import ERR_UNKNOWN_ALLOC, rpc_error
from repro.rdma.verbs import Message
from repro.sim.kernel import Event

__all__ = ["SAWServer", "SAWClient", "saw_config"]


def saw_config(**overrides: Any) -> StoreConfig:
    cfg = StoreConfig(persist_meta=False, crc_on_put=False)
    return cfg.with_(**overrides) if overrides else cfg


class SAWServer(BaseServer):
    store_name = "saw"
    publish_on_alloc = False  # metadata only after durability

    def _register_handlers(self) -> None:
        super()._register_handlers()
        self.rpc.register("persist", self._handle_persist)

    def _handle_persist(self, msg: Message) -> Generator[Event, Any, tuple[Any, int]]:
        pending = self.pending_allocs.pop(msg.payload["alloc_id"], None)
        if pending is None:
            return rpc_error("unknown alloc_id", ERR_UNKNOWN_ALLOC), RESPONSE_BYTES
        loc, entry_off, _klen, part = pending
        budget = yield from part.acquire_budget()
        try:
            # Flag first so the flush below covers it: post-crash, a set
            # durability flag must imply the value is on media.
            img = part.read_object(loc)
            part.set_object_flags(loc, img.flags | FLAG_DURABLE)
            yield from part.persist_object(loc)
            yield from part.publish_object(entry_off, loc)
            yield self.env.timeout(self.config.nvm_timing.flush_cost(32))
            part.table.persist_entry(entry_off)
        finally:
            part.release_budget(budget)
        return {"ok": True}, RESPONSE_BYTES


class SAWClient(BaseClient):
    def put(self, key: bytes, value: bytes) -> Generator[Event, Any, None]:
        resp = yield from self.alloc_rpc(key, len(value), 0)
        yield from self.write_value(resp, value)
        # The durability point: tell the server to flush (extra round trip).
        yield from self.rpc.call(
            {"op": "persist", "alloc_id": resp["alloc_id"]}, 32
        )

    def get(
        self, key: bytes, size_hint: Optional[int] = None
    ) -> Generator[Event, Any, bytes]:
        fp, slots = yield from self.read_bucket(key)
        if slots is None:
            raise KeyNotFoundError(f"key {key!r} not indexed")
        cur, alt = slots
        slot = cur or alt
        if slot is None:
            raise KeyNotFoundError(f"key {key!r} has no published version")
        img = yield from self.read_object_at(slot, self.partition_of(fp))
        self._check_found(img, key)
        return img.value
