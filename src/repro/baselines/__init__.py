"""The comparison systems of §5.3, implemented on the shared code base."""

from repro.baselines.base import (
    BaseClient,
    BaseServer,
    ClientSession,
    ObjectLocation,
    Partition,
    StoreConfig,
)
from repro.baselines.ca import CAClient, CAServer, ca_config
from repro.baselines.erda import ErdaClient, ErdaServer, erda_config
from repro.baselines.forca import ForcaClient, ForcaServer, forca_config
from repro.baselines.imm import IMMClient, IMMServer, imm_config
from repro.baselines.rpc_store import (
    RpcStoreClient,
    RpcStoreServer,
    rpc_store_config,
)
from repro.baselines.saw import SAWClient, SAWServer, saw_config

__all__ = [
    "BaseClient",
    "BaseServer",
    "CAClient",
    "CAServer",
    "ClientSession",
    "ErdaClient",
    "ErdaServer",
    "ForcaClient",
    "ForcaServer",
    "IMMClient",
    "IMMServer",
    "ObjectLocation",
    "Partition",
    "RpcStoreClient",
    "RpcStoreServer",
    "SAWClient",
    "SAWServer",
    "StoreConfig",
    "ca_config",
    "erda_config",
    "forca_config",
    "imm_config",
    "rpc_store_config",
    "saw_config",
]
