"""Client-active scheme *without* a persistence guarantee (§3, Fig 1).

The fastest possible write path over RDMA+NVM — and the unsafe one: the
server allocates and publishes metadata immediately, the client pushes
the value with a one-sided WRITE, and nothing is ever explicitly
flushed. The paper uses this as the performance ceiling ("CA w/o
persistence", 36% faster than RPC); we keep it both as that yardstick
and as the demonstration that the naive scheme really does tear objects
across crashes (see the crash-consistency bench).
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional

from repro.baselines.base import BaseClient, BaseServer, StoreConfig
from repro.errors import KeyNotFoundError
from repro.sim.kernel import Event

__all__ = ["CAServer", "CAClient", "ca_config"]


def ca_config(**overrides: Any) -> StoreConfig:
    """Defaults for CA: no metadata persistence, no CRC anywhere."""
    cfg = StoreConfig(persist_meta=False, crc_on_put=False)
    return cfg.with_(**overrides) if overrides else cfg


class CAServer(BaseServer):
    """Only the shared allocation handler — the server never flushes."""

    store_name = "ca"


class CAClient(BaseClient):
    """PUT = alloc RPC + RDMA WRITE; GET = two RDMA READs, no checks."""

    def put(self, key: bytes, value: bytes) -> Generator[Event, Any, None]:
        yield from self.put_client_active(key, value, with_crc=False)

    def get(
        self, key: bytes, size_hint: Optional[int] = None
    ) -> Generator[Event, Any, bytes]:
        fp, slots = yield from self.read_bucket(key)
        if slots is None:
            raise KeyNotFoundError(f"key {key!r} not indexed")
        cur, alt = slots
        slot = cur or alt
        if slot is None:
            raise KeyNotFoundError(f"key {key!r} has no published version")
        img = yield from self.read_object_at(slot, self.partition_of(fp))
        self._check_found(img, key)
        # No durability or integrity verification — by design.
        return img.value
