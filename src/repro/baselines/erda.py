"""Erda — client-side CRC verification with a two-version atomic region
(§5.3.3, after Liu et al. [arXiv 1906.08173]).

PUT: alloc RPC (hopscotch insert; the 8-byte atomic region atomically
becomes ``{new, previous}``) → one-sided WRITE. Nothing is flushed —
dirty data "becomes durable through natural eviction", which is where
Erda's non-monotonic reads come from (§7).

GET: READ the hopscotch neighborhood, READ the latest version, verify
the CRC *on the client* (the Fig 2 overhead), and on failure re-READ the
previous version from the atomic region. Only two versions are
addressable — the robustness gap eFactory's version list closes.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional

from repro.baselines.base import (
    BaseClient,
    BaseServer,
    RESPONSE_BYTES,
    StoreConfig,
)
from repro.crc.crc32 import crc32_fast
from repro.errors import CorruptObjectError, KeyNotFoundError, StoreError
from repro.kv.hopscotch import (
    ERDA_ENTRY_SIZE,
    HopscotchTable,
    client_scan_neighborhood,
)
from repro.kv.objects import (
    FLAG_VALID,
    HEADER_SIZE,
    NULL_PTR,
    build_header,
    object_size,
    pack_ptr,
)
from repro.rdma.rpc import rpc_error_for
from repro.rdma.verbs import Message
from repro.sim.kernel import Event

__all__ = ["ErdaServer", "ErdaClient", "erda_config"]


def erda_config(**overrides: Any) -> StoreConfig:
    """Erda defaults: no flushing anywhere; hopscotch insert pays more
    index CPU than a simple bucket probe (displacement scans)."""
    cfg = StoreConfig(persist_meta=False, crc_on_put=True, index_ns=100.0)
    return cfg.with_(**overrides) if overrides else cfg


class ErdaServer(BaseServer):
    """Hopscotch-indexed server; allocation publishes immediately."""

    store_name = "erda"
    #: The hopscotch neighborhood spans bucket ranges, so the index has
    #: no clean segment boundary to shard on.
    supports_partitions = False

    def _table_bytes(self) -> int:
        return self.config.table_buckets * ERDA_ENTRY_SIZE

    def _make_table(self, part: int = 0) -> HopscotchTable:
        return HopscotchTable(
            self.device,
            0,
            self.config.table_buckets,
            H=self.config.hopscotch_neighborhood,
        )

    def _register_handlers(self) -> None:
        self.rpc.register("alloc", self._handle_alloc)

    def _handle_alloc(self, msg: Message) -> Generator[Event, Any, tuple[Any, int]]:
        cfg = self.config
        p = msg.payload
        key: bytes = p["key"]
        vlen: int = p["vlen"]
        pool = self.pools[0]
        size = object_size(len(key), vlen)
        yield self.env.timeout(cfg.alloc_ns)
        try:
            offset = pool.allocate(size)
        except StoreError as exc:
            return rpc_error_for(exc), RESPONSE_BYTES

        yield self.env.timeout(cfg.index_ns)
        fp = _fp(key)
        prior = self.table.lookup(fp)
        pre_ptr = (
            pack_ptr(0, prior[1].off1)
            if prior is not None and prior[1].off1 is not None
            else NULL_PTR
        )
        header = build_header(
            flags=FLAG_VALID,
            klen=len(key),
            vlen=vlen,
            crc=p.get("crc", 0),
            pre_ptr=pre_ptr,
            ts=int(self.env.now),
        )
        yield self.env.timeout(cfg.header_write_ns)
        pool.write(offset, header + key)

        yield self.env.timeout(cfg.entry_update_ns)
        self.table.insert_or_update(fp, offset)
        return (
            {
                "pool": 0,
                "value_off": offset + HEADER_SIZE + len(key),
                "obj_off": offset,
                "size": size,
            },
            RESPONSE_BYTES,
        )


def _fp(key: bytes) -> int:
    from repro.kv.hashtable import key_fingerprint

    return key_fingerprint(key)


class ErdaClient(BaseClient):
    def put(self, key: bytes, value: bytes) -> Generator[Event, Any, None]:
        yield from self.put_client_active(key, value, with_crc=True)

    def get(
        self, key: bytes, size_hint: Optional[int] = None
    ) -> Generator[Event, Any, bytes]:
        """Neighborhood READ → object READ → client CRC → maybe re-read.

        ``size_hint`` (the value length) is required: Erda's atomic
        region carries no size, so the client must know how much to
        fetch — fine under the paper's fixed-size YCSB workloads.
        """
        if size_hint is None:
            raise StoreError("Erda GET requires a value-size hint")
        server: ErdaServer = self.server  # type: ignore[assignment]
        table: HopscotchTable = server.table
        fp = _fp(key)
        n_off, n_len = table.neighborhood_offset(fp)
        raw = yield from self.ep.read(self.session.table_rkey, n_off, n_len)
        region = client_scan_neighborhood(raw, fp)
        if region is None:
            raise KeyNotFoundError(f"key {key!r} not in hopscotch neighborhood")

        obj_size = HEADER_SIZE + len(key) + size_hint
        for attempt, off in enumerate((region.off1, region.off2)):
            if off is None:
                continue
            img = yield from self.read_object_loc(0, off, obj_size)
            # Client-side CRC — the Fig 2 read-path overhead.
            yield self.env.timeout(self.config.crc_cost.cost_ns(size_hint))
            if (
                img.well_formed
                and img.key == key
                and img.vlen == len(img.value)
                and crc32_fast(img.value) == img.crc
            ):
                return img.value
        raise CorruptObjectError(
            f"key {key!r}: both addressable versions failed verification"
        )
