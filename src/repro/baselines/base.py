"""Shared server/client machinery for every store in the comparison.

The paper implements SAW, IMM, Erda, Forca, and eFactory "on the same
code base" (§5.3) for an apples-to-apples comparison; this module is
that code base. It provides:

* :class:`StoreConfig` — capacity, geometry, and the per-scheme cost
  knobs (what work happens on which CPU, and whether metadata is
  persisted synchronously);
* :class:`BaseServer` — node + NVM carve-up (hash table region, one or
  two log pools), the SEND-based-RPC dispatch loop, the shared
  *allocation* path of the client-active PUT (§4.3.1 steps 1–4), and
  session management;
* :class:`BaseClient` — connection setup (obtaining rkeys and geometry,
  §4.3), the client half of the client-active PUT, pure-RDMA GET
  helpers, and the notification mailbox used by log cleaning.

Concrete stores subclass these and register/override handlers.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.crc.cost import CrcCostModel
from repro.crc.crc32 import crc32_fast
from repro.errors import ConfigError, KeyNotFoundError, StoreError
from repro.kv.hashtable import (
    HashTableGeometry,
    NvmHashTable,
    Slot,
    client_lookup_bucket,
    key_fingerprint,
)
from repro.kv.logpool import LogPool
from repro.kv.objects import (
    FLAG_DURABLE,
    FLAG_VALID,
    HEADER_SIZE,
    NULL_PTR,
    OBJECT_HEADER,
    ObjectImage,
    build_header,
    object_size,
    pack_ptr,
    parse_object,
)
from repro.nvm.device import NVMDevice, NVMTiming
from repro.rdma.fabric import Fabric, Node
from repro.rdma.mr import MemoryRegion
from repro.rdma.qp import Endpoint
from repro.rdma.rpc import RpcClient, RpcServer, rpc_error
from repro.rdma.verbs import Message
from repro.sim.kernel import Environment, Event

__all__ = [
    "StoreConfig",
    "ObjectLocation",
    "ClientSession",
    "BaseServer",
    "BaseClient",
    "PUT_REQUEST_OVERHEAD",
    "GET_REQUEST_OVERHEAD",
    "RESPONSE_BYTES",
]

#: Wire bytes of a PUT allocation request beyond the key itself
#: (op code, vlen, crc, ids).
PUT_REQUEST_OVERHEAD = 40
#: Wire bytes of a GET-by-RPC request beyond the key.
GET_REQUEST_OVERHEAD = 24
#: Wire bytes of a small control response (offset + status).
RESPONSE_BYTES = 32


@dataclass(frozen=True)
class StoreConfig:
    """Capacity and cost model of a store deployment.

    CPU-cost knobs (ns) name where each scheme spends server cycles;
    they are shared so that differences between stores come from *which*
    costs sit on which path, not from tuning each store separately.
    """

    # capacity / geometry
    pool_size: int = 32 << 20
    dual_pools: bool = False
    table_buckets: int = 8192
    slots_per_bucket: int = 4
    probe_limit: int = 4
    hopscotch_neighborhood: int = 8  # Erda only

    # server resources
    server_cores: int = 4
    dispatch_ns: float = 400.0
    #: Intel DDIO on the server NIC (True = inbound DMA is volatile).
    ddio: bool = True

    # handler work items
    alloc_ns: float = 80.0
    index_ns: float = 60.0
    header_write_ns: float = 60.0
    entry_update_ns: float = 20.0
    meta_indirection_ns: float = 0.0  # Forca's extra metadata layer

    # scheme switches
    persist_meta: bool = False  # flush header+entry inside the alloc handler
    crc_on_put: bool = False  # client computes a CRC and ships it

    # eFactory background verification
    verify_timeout_ns: float = 50_000.0
    bg_idle_poll_ns: float = 2_000.0
    bg_retry_delay_ns: float = 3_000.0

    # log cleaning
    reserve_fraction: float = 0.1

    # cost models
    crc_cost: CrcCostModel = field(default_factory=CrcCostModel)
    nvm_timing: NVMTiming = field(default_factory=NVMTiming)

    def __post_init__(self) -> None:
        if self.pool_size <= 0:
            raise ConfigError("pool_size must be positive")
        if self.server_cores < 1:
            raise ConfigError("server_cores must be >= 1")
        if not 0.0 <= self.reserve_fraction < 1.0:
            raise ConfigError("reserve_fraction must be in [0, 1)")

    def with_(self, **kw: Any) -> "StoreConfig":
        """A copy with fields replaced (convenience for experiments)."""
        return replace(self, **kw)

    @property
    def geometry(self) -> HashTableGeometry:
        return HashTableGeometry(
            n_buckets=self.table_buckets,
            slots_per_bucket=self.slots_per_bucket,
            probe_limit=self.probe_limit,
        )


@dataclass(frozen=True)
class ObjectLocation:
    """Where an object lives: pool id, pool-relative offset, total size."""

    pool: int
    offset: int
    size: int

    @property
    def slot(self) -> Slot:
        return Slot(pool=self.pool, size=self.size, offset=self.offset)


@dataclass
class ClientSession:
    """What a client learns at connection setup (§4.3): region rkeys,
    table geometry, and a reply path for server-initiated notifications."""

    session_id: int
    table_rkey: int
    pool_rkeys: tuple[int, ...]
    geometry: HashTableGeometry
    server_ep: Endpoint  # server-side endpoint toward the client


class BaseServer:
    """Common server core: memory carve-up, RPC loop, allocation path."""

    store_name = "base"
    #: Whether the alloc handler publishes the hash entry immediately
    #: (client-active schemes) or defers to durability (IMM/SAW).
    publish_on_alloc = True

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        config: StoreConfig | None = None,
        name: str = "server",
    ) -> None:
        self.env = env
        self.fabric = fabric
        self.config = config or StoreConfig()
        cfg = self.config

        table_bytes = self._table_bytes()
        n_pools = 2 if cfg.dual_pools else 1
        device_size = _align(table_bytes, 4096) + n_pools * _align(cfg.pool_size, 4096)
        self.device = NVMDevice(env, device_size, timing=cfg.nvm_timing, name=f"{name}.nvm")
        self.node: Node = fabric.create_node(
            name, device=self.device, cores=cfg.server_cores, ddio=cfg.ddio
        )

        # -- memory carve-up ------------------------------------------------
        self.table = self._make_table()
        self.table_mr: MemoryRegion = self.node.register_memory(
            0, table_bytes, writable=False, name=f"{name}.table"
        )
        self.pools: list[LogPool] = []
        self.pool_mrs: list[MemoryRegion] = []
        base = _align(table_bytes, 4096)
        for pid in range(n_pools):
            pool = LogPool(
                self.device,
                base,
                cfg.pool_size,
                pool_id=pid,
                reserve_fraction=cfg.reserve_fraction,
            )
            self.pools.append(pool)
            self.pool_mrs.append(
                self.node.register_memory(
                    base, cfg.pool_size, writable=True, name=f"{name}.pool{pid}"
                )
            )
            base += _align(cfg.pool_size, 4096)

        #: Pool receiving new writes (log cleaning redirects this).
        self.write_pool_id = 0

        self.rpc = RpcServer(
            env,
            self.node,
            dispatch_ns=cfg.dispatch_ns,
            concurrent_handlers=cfg.server_cores,
        )
        self.sessions: list[ClientSession] = []
        self._session_ids = iter(range(1, 1 << 30))
        self._alloc_ids = iter(range(1, 1 << 62))
        #: Outstanding allocations (IMM/SAW persist-on-completion need them).
        self.pending_allocs: dict[int, ObjectLocation] = {}
        self._register_handlers()

    # -- index construction (Erda overrides with hopscotch) ---------------------
    def _table_bytes(self) -> int:
        return self.config.geometry.table_bytes

    def _make_table(self) -> Any:
        return NvmHashTable(self.device, 0, self.config.geometry)

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        self.rpc.start()

    def stop(self) -> None:
        self.rpc.stop()

    def connect_client(self, client_node: Node) -> tuple[Endpoint, ClientSession]:
        """Connection setup: returns the client-side endpoint and the
        session metadata (rkeys, geometry) the server hands over."""
        ep = self.fabric.connect(client_node, self.node)
        assert ep.peer is not None
        session = ClientSession(
            session_id=next(self._session_ids),
            table_rkey=self.table_mr.rkey,
            pool_rkeys=tuple(mr.rkey for mr in self.pool_mrs),
            geometry=self.config.geometry,
            server_ep=ep.peer,
        )
        self.sessions.append(session)
        return ep, session

    # -- handler registry --------------------------------------------------------
    def _register_handlers(self) -> None:
        """Subclasses register their RPC handlers here."""
        self.rpc.register("alloc", self._handle_alloc)

    # -- the shared allocation path (client-active PUT, steps 2-4) ---------------
    def _handle_alloc(self, msg: Message) -> Generator[Event, Any, tuple[Any, int]]:
        p = msg.payload
        try:
            loc, entry_off = yield from self.alloc_object(
                p["key"], p["vlen"], p.get("crc", 0), publish=self.publish_on_alloc
            )
        except StoreError as exc:
            return rpc_error(str(exc)), RESPONSE_BYTES
        self.pending_allocs[p["alloc_id"]] = (loc, entry_off, len(p["key"]))
        return (
            {
                "pool": loc.pool,
                "value_off": loc.offset + HEADER_SIZE + len(p["key"]),
                "obj_off": loc.offset,
                "size": loc.size,
            },
            RESPONSE_BYTES,
        )

    def alloc_object(
        self,
        key: bytes,
        vlen: int,
        crc: int,
        *,
        publish: bool = True,
        flags: int = FLAG_VALID,
    ) -> Generator[Event, Any, tuple[ObjectLocation, int]]:
        """Allocate + write header/key (+ index update when ``publish``).

        Runs inside a request handler (CPU already held). Returns the
        location and the hash-entry offset. ``publish=False`` defers the
        index update (IMM/SAW publish only after the data is durable).
        """
        cfg = self.config
        env = self.env
        pool = self.pools[self.write_pool_id]
        size = object_size(len(key), vlen)
        yield env.timeout(cfg.alloc_ns)
        offset = pool.allocate(size)
        loc = ObjectLocation(pool=pool.pool_id, offset=offset, size=size)

        # previous-version link (the version list, §4.2.2)
        fp = key_fingerprint(key)
        yield env.timeout(cfg.index_ns)
        entry_off = self.table.find_or_create(fp)
        prev = self.table.read_cur(entry_off)
        pre_ptr = pack_ptr(prev.pool, prev.offset) if prev is not None else NULL_PTR

        header = build_header(
            flags=flags,
            klen=len(key),
            vlen=vlen,
            crc=crc,
            pre_ptr=pre_ptr,
            ts=int(env.now),
        )
        yield env.timeout(cfg.header_write_ns + cfg.meta_indirection_ns)
        pool.write(offset, header + key)

        # Forward link (§4.2.2 NextPTR): lets the log cleaner find "the
        # next version of the migrated current version". One atomic
        # 8-byte store into the previous version's header.
        if prev is not None:
            nxt_field = OBJECT_HEADER.offset_of("nxt_ptr")
            self.device.write_atomic64(
                self.pools[prev.pool].abs_addr(prev.offset) + nxt_field,
                OBJECT_HEADER.pack_field(
                    "nxt_ptr", pack_ptr(pool.pool_id, offset)
                ),
            )

        # Ordering matters for recoverability (§4.3.1: "after all the
        # metadata has been updated and persisted"): the header must be
        # durable *before* the hash entry can point at it — otherwise a
        # crash could naturally evict the entry update while losing the
        # header, severing the version list below an intact version.
        if cfg.persist_meta:
            yield from self.persist_header(loc, len(key))
        if publish:
            yield from self.publish_object(entry_off, loc)
        if cfg.persist_meta:
            yield from self.persist_entry_timed(entry_off)
        self.on_allocated(loc, entry_off)
        return loc, entry_off

    def publish_object(
        self, entry_off: int, loc: ObjectLocation
    ) -> Generator[Event, Any, None]:
        """Make the hash entry point at the object (one atomic store)."""
        yield self.env.timeout(self.config.entry_update_ns)
        self.table.set_cur(entry_off, loc.slot)

    def persist_header(
        self, loc: ObjectLocation, klen: int
    ) -> Generator[Event, Any, None]:
        """Flush the object header + key (before any entry exposes it)."""
        t = self.config.nvm_timing
        meta_len = HEADER_SIZE + klen
        yield self.env.timeout(t.flush_cost(meta_len))
        self.device.buffer.flush(self.pools[loc.pool].abs_addr(loc.offset), meta_len)

    def persist_entry_timed(self, entry_off: int) -> Generator[Event, Any, None]:
        """Flush the hash entry's line (one CLWB + fence)."""
        t = self.config.nvm_timing
        yield self.env.timeout(t.flush_line_ns + t.fence_ns)
        self.table.persist_entry(entry_off)

    def on_allocated(self, loc: ObjectLocation, entry_off: int) -> None:
        """Subclass hook (eFactory feeds its background verifier)."""

    # -- shared object helpers -----------------------------------------------------
    def read_object(self, loc: ObjectLocation) -> ObjectImage:
        """Instant state read of an object (timing charged by caller)."""
        return parse_object(self.pools[loc.pool].read(loc.offset, loc.size))

    def object_value_ok(self, img: ObjectImage) -> bool:
        """Functional CRC verification (the *time* is charged by caller
        via ``config.crc_cost``)."""
        return (
            img.well_formed
            and img.vlen == len(img.value)
            and crc32_fast(img.value) == img.crc
        )

    def persist_object(self, loc: ObjectLocation) -> Generator[Event, Any, None]:
        """Timed flush of a whole object."""
        pool = self.pools[loc.pool]
        yield from self.device.persist(pool.abs_addr(loc.offset), loc.size)

    def set_object_flags(self, loc: ObjectLocation, flags: int) -> None:
        """Instant single-byte flag store (offset 2 in the header)."""
        pool = self.pools[loc.pool]
        pool.write(loc.offset + 2, bytes([flags]))

    def mark_durable(self, loc: ObjectLocation, img: ObjectImage) -> None:
        self.set_object_flags(loc, img.flags | FLAG_DURABLE)
        # the flag itself must be durable before pure-RDMA readers trust it
        self.device.buffer.flush(self.pools[loc.pool].abs_addr(loc.offset), 8)

    def lookup_slot(self, key: bytes) -> Optional[tuple[int, Optional[Slot], Optional[Slot]]]:
        """(entry_off, cur, alt) for ``key`` or None (state only)."""
        fp = key_fingerprint(key)
        entry_off = self.table.find(fp)
        if entry_off is None:
            return None
        return entry_off, self.table.read_cur(entry_off), self.table.read_alt(entry_off)


class BaseClient:
    """Common client core: session setup, client-active PUT, GET helpers."""

    def __init__(self, env: Environment, server: BaseServer, name: str) -> None:
        self.env = env
        self.server = server
        self.name = name
        self.node: Node = server.fabric.create_node(name)
        self.ep, self.session = server.connect_client(self.node)
        self.rpc = RpcClient(self.ep)
        self.config = server.config
        self._alloc_counter = 0
        #: Set while the server performs log cleaning (notifications).
        self.cleaning_mode = False
        #: Dedicated notification listener — the client library "thread"
        #: that reacts to log-cleaning notices even while the app is
        #: idle, and acks promptly so the cleaner is never stalled.
        self._listener = self.env.process(
            self._notification_loop(), name=f"{name}-notify"
        )

    def _next_alloc_id(self) -> int:
        """Globally unique allocation id that still fits IMM's 32-bit
        immediate field: session id (8 bits) + per-client counter."""
        self._alloc_counter += 1
        return ((self.session.session_id & 0xFF) << 24) | (
            self._alloc_counter & 0xFFFFFF
        )

    # -- notifications (log cleaning, §4.4) -------------------------------------
    @staticmethod
    def _is_cleaning_notice(msg: Message) -> bool:
        return (
            isinstance(msg.payload, dict)
            and msg.payload.get("op") == "cleaning"
        )

    def _notification_loop(self) -> Generator[Event, Any, None]:
        while True:
            msg = yield self.node.srq.get(self._is_cleaning_notice)
            yield from self._handle_cleaning_notice(msg)

    def poll_notifications(self) -> Generator[Event, Any, None]:
        """Drain pending server notifications.

        Kept for call-site symmetry (the listener process normally
        handles notices the moment they arrive); a direct call still
        works when the listener is somehow behind.
        """
        while True:
            ok, msg = self.node.srq.try_get(self._is_cleaning_notice)
            if not ok:
                return
            yield from self._handle_cleaning_notice(msg)

    def _handle_cleaning_notice(self, msg: Message) -> Generator[Event, Any, None]:
        state = msg.payload["state"]
        if state == "start":
            self.cleaning_mode = True
            yield from self.ep.send({"op": "cleaning_ack"}, 24, in_reply_to=msg.req_id)
        elif state == "finish":
            self.cleaning_mode = False

    # -- client-active PUT (§4.3.1) ----------------------------------------------
    def put_client_active(
        self, key: bytes, value: bytes, *, with_crc: bool
    ) -> Generator[Event, Any, None]:
        """Steps 1–5 of Figure 5: alloc RPC, then one-sided WRITE of the
        value. Returns when the WRITE acks (durability NOT implied).

        The client overlaps its CRC computation with the allocation
        round trip (the CPU is otherwise idle waiting for the response),
        so only the CRC time exceeding the RTT lands on the critical
        path — without this, large-value PUTs would pay the full CRC
        serially, which no competent implementation does.
        """
        crc = crc32_fast(value) if with_crc else 0
        t0 = self.env.now
        resp = yield from self.alloc_rpc(key, len(value), crc)
        if with_crc:
            crc_ns = self.config.crc_cost.cost_ns(len(value))
            overlap = self.env.now - t0
            if crc_ns > overlap:
                yield self.env.timeout(crc_ns - overlap)
        yield from self.write_value(resp, value)

    def alloc_rpc(
        self, key: bytes, vlen: int, crc: int
    ) -> Generator[Event, Any, dict]:
        alloc_id = self._next_alloc_id()
        resp = yield from self.rpc.call(
            {"op": "alloc", "key": key, "vlen": vlen, "crc": crc, "alloc_id": alloc_id},
            PUT_REQUEST_OVERHEAD + len(key),
        )
        resp["alloc_id"] = alloc_id
        return resp

    def write_value(self, alloc_resp: dict, value: bytes) -> Generator[Event, Any, None]:
        rkey = self.session.pool_rkeys[alloc_resp["pool"]]
        yield from self.ep.write(rkey, alloc_resp["value_off"], value)

    # -- pure-RDMA GET helpers (steps 1-4 of Figure 6) ---------------------------
    def read_bucket(self, key: bytes) -> Generator[Event, Any, tuple[int, Optional[tuple]]]:
        """READ the home bucket; returns (fp, (cur, alt) or None)."""
        fp = key_fingerprint(key)
        geom = self.session.geometry
        raw = yield from self.ep.read(
            self.session.table_rkey,
            geom.bucket_offset(geom.bucket_of(fp)),
            geom.bucket_bytes,
        )
        return fp, client_lookup_bucket(raw, fp, geom)

    def read_object_at(self, slot: Slot) -> Generator[Event, Any, ObjectImage]:
        raw = yield from self.ep.read(
            self.session.pool_rkeys[slot.pool], slot.offset, slot.size
        )
        return parse_object(raw)

    def read_object_loc(
        self, pool: int, offset: int, size: int
    ) -> Generator[Event, Any, ObjectImage]:
        raw = yield from self.ep.read(self.session.pool_rkeys[pool], offset, size)
        return parse_object(raw)

    # -- interface -------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> Generator[Event, Any, None]:
        raise NotImplementedError

    def get(
        self, key: bytes, size_hint: Optional[int] = None
    ) -> Generator[Event, Any, bytes]:
        raise NotImplementedError

    @staticmethod
    def _check_found(img: ObjectImage, key: bytes) -> None:
        if not img.well_formed or img.key != key:
            raise KeyNotFoundError(f"key {key!r} not found at indexed location")


def _align(n: int, a: int) -> int:
    return (n + a - 1) & ~(a - 1)
