"""Shared server/client machinery for every store in the comparison.

The paper implements SAW, IMM, Erda, Forca, and eFactory "on the same
code base" (§5.3) for an apples-to-apples comparison; this module is
that code base. It provides:

* :class:`StoreConfig` — capacity, geometry, and the per-scheme cost
  knobs (what work happens on which CPU, and whether metadata is
  persisted synchronously);
* :class:`BaseServer` — node + NVM carve-up (hash table region, one or
  two log pools per partition), the SEND-based-RPC dispatch loop, and
  session management.  The server is a composition of
  :class:`~repro.baselines.partition.Partition` objects behind a
  deterministic key→partition router; the default ``num_partitions=1``
  reproduces the paper's single-threaded server exactly;
* :class:`BaseClient` — connection setup (obtaining rkeys and geometry,
  §4.3), the client half of the client-active PUT, pure-RDMA GET
  helpers (partition-aware: the route is computed locally from the key
  fingerprint, so sharding costs no extra round trip), and the
  notification mailbox used by log cleaning.

Concrete stores subclass these and register/override handlers.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.baselines.partition import ObjectLocation, Partition
from repro.crc.cost import CrcCostModel
from repro.crc.crc32 import crc32_fast
from repro.integrity import PartitionIntegrity, integrity_region_bytes
from repro.mem.buffer import CACHELINE
from repro.errors import (
    ConfigError,
    KeyNotFoundError,
    OperationTimeout,
    QPError,
    StoreError,
)
from repro.kv.hashtable import (
    HashTableGeometry,
    NvmHashTable,
    Slot,
    client_lookup_bucket,
    key_fingerprint,
    partition_of_fp,
)
from repro.kv.logpool import LogPool
from repro.kv.objects import (
    FLAG_VALID,
    HEADER_SIZE,
    ObjectImage,
    parse_object,
)
from repro.nvm.device import NVMDevice, NVMTiming
from repro.rdma.fabric import Fabric, Node
from repro.rdma.mr import MemoryRegion
from repro.rdma.qp import Endpoint
from repro.rdma.rpc import (
    ERR_BUSY,
    ERR_FENCED,
    RpcClient,
    RpcFault,
    RpcServer,
    rpc_error,
    rpc_error_for,
)
from repro.rdma.verbs import Message
from repro.sim.kernel import Environment, Event

__all__ = [
    "StoreConfig",
    "ObjectLocation",
    "Partition",
    "ClientSession",
    "BaseServer",
    "BaseClient",
    "busy_error",
    "PUT_REQUEST_OVERHEAD",
    "GET_REQUEST_OVERHEAD",
    "RESPONSE_BYTES",
    "PUT_BATCH_ITEM_OVERHEAD",
    "BATCH_RESPONSE_ITEM_BYTES",
]

#: Wire bytes of a PUT allocation request beyond the key itself
#: (op code, vlen, crc, ids).
PUT_REQUEST_OVERHEAD = 40
#: Wire bytes of a GET-by-RPC request beyond the key.
GET_REQUEST_OVERHEAD = 24
#: Wire bytes of a small control response (offset + status).
RESPONSE_BYTES = 32
#: Extra wire bytes per additional item in a coalesced ``alloc_batch``
#: request (vlen, crc, alloc_id — the op code and framing are shared).
PUT_BATCH_ITEM_OVERHEAD = 16
#: Extra wire bytes per additional item in an ``alloc_batch`` response.
BATCH_RESPONSE_ITEM_BYTES = 24


@dataclass(frozen=True)
class StoreConfig:
    """Capacity and cost model of a store deployment.

    CPU-cost knobs (ns) name where each scheme spends server cycles;
    they are shared so that differences between stores come from *which*
    costs sit on which path, not from tuning each store separately.
    """

    # capacity / geometry
    pool_size: int = 32 << 20
    dual_pools: bool = False
    table_buckets: int = 8192
    slots_per_bucket: int = 4
    probe_limit: int = 4
    hopscotch_neighborhood: int = 8  # Erda only

    # partitioning (1 = the paper's single-threaded server, bit-for-bit)
    num_partitions: int = 1

    # server resources
    server_cores: int = 4
    dispatch_ns: float = 400.0
    #: Intel DDIO on the server NIC (True = inbound DMA is volatile).
    ddio: bool = True

    # handler work items
    alloc_ns: float = 80.0
    index_ns: float = 60.0
    header_write_ns: float = 60.0
    entry_update_ns: float = 20.0
    meta_indirection_ns: float = 0.0  # Forca's extra metadata layer
    #: CPU cost of peeking an object's header/flags before deciding
    #: (shared by the GET handler's version walk and the background
    #: verifier).
    peek_ns: float = 80.0

    # scheme switches
    persist_meta: bool = False  # flush header+entry inside the alloc handler
    crc_on_put: bool = False  # client computes a CRC and ships it

    # eFactory background verification
    verify_timeout_ns: float = 50_000.0
    bg_idle_poll_ns: float = 2_000.0
    bg_retry_delay_ns: float = 3_000.0
    #: Objects the background verifier drains per wakeup. 1 keeps the
    #: seed's one-object-per-wakeup poll loop bit-for-bit; > 1 switches
    #: the verifier to event-driven wakeups with coalesced flushes.
    bg_batch: int = 1

    # batched PUT pipeline (put_many)
    #: Alloc requests coalesced into one ``alloc_batch`` SEND and value
    #: WRITEs chained per doorbell batch.
    put_batch: int = 16
    #: Doorbell batches allowed in flight concurrently: while batch i's
    #: WRITEs are on the wire the client already issues batch i+1's
    #: alloc RPC, so independent PUTs overlap instead of serializing.
    put_window: int = 2

    # online media scrubbing (0 = disabled; see repro.core.scrub)
    scrub_interval_ns: float = 0.0

    # admission control (0 = disabled; see DESIGN.md §15)
    #: Per-partition concurrent-request watermark: a control RPC
    #: arriving while this many admitted requests are already in flight
    #: on its partition is shed at handler entry with retryable
    #: ``ERR_BUSY`` instead of queueing behind the dispatch budget. The
    #: client's retry backoff (PR 2 machinery) is the congestion-control
    #: loop. 0 keeps every request path bit-identical to the seed.
    admission_watermark: int = 0

    # self-healing integrity tier (see repro.integrity)
    #: XOR-parity stripe size in KiB over each log pool; 0 disables the
    #: parity/ledger tier entirely (bit-identical legacy layout).
    parity_stripe_kb: int = 0
    #: Maintain a Merkle-over-ledger root with each verifier batch and
    #: verify cache-warm one-READ GETs against the checksum ledger.
    integrity_tree: bool = False

    # log cleaning
    reserve_fraction: float = 0.1

    # cost models
    crc_cost: CrcCostModel = field(default_factory=CrcCostModel)
    nvm_timing: NVMTiming = field(default_factory=NVMTiming)

    def __post_init__(self) -> None:
        if self.pool_size <= 0:
            raise ConfigError("pool_size must be positive")
        if self.server_cores < 1:
            raise ConfigError("server_cores must be >= 1")
        if not 0.0 <= self.reserve_fraction < 1.0:
            raise ConfigError("reserve_fraction must be in [0, 1)")
        if self.num_partitions < 1:
            raise ConfigError("num_partitions must be >= 1")
        if self.scrub_interval_ns < 0:
            raise ConfigError("scrub_interval_ns must be >= 0")
        if self.admission_watermark < 0:
            raise ConfigError("admission_watermark must be >= 0")
        if self.bg_batch < 1:
            raise ConfigError("bg_batch must be >= 1")
        if self.parity_stripe_kb < 0:
            raise ConfigError("parity_stripe_kb must be >= 0")
        if self.integrity_tree and self.parity_stripe_kb == 0:
            raise ConfigError("integrity_tree requires parity_stripe_kb > 0")
        if self.put_batch < 1:
            raise ConfigError("put_batch must be >= 1")
        if self.put_window < 1:
            raise ConfigError("put_window must be >= 1")
        if self.table_buckets % self.num_partitions != 0:
            raise ConfigError(
                "table_buckets must be divisible by num_partitions "
                f"({self.table_buckets} % {self.num_partitions} != 0)"
            )

    def with_(self, **kw: Any) -> "StoreConfig":
        """A copy with fields replaced (convenience for experiments)."""
        return replace(self, **kw)

    @property
    def geometry(self) -> HashTableGeometry:
        return HashTableGeometry(
            n_buckets=self.table_buckets,
            slots_per_bucket=self.slots_per_bucket,
            probe_limit=self.probe_limit,
        )

    @property
    def partition_geometry(self) -> HashTableGeometry:
        """The geometry of one partition's table segment (== ``geometry``
        when unpartitioned)."""
        return HashTableGeometry(
            n_buckets=self.table_buckets // self.num_partitions,
            slots_per_bucket=self.slots_per_bucket,
            probe_limit=self.probe_limit,
        )


@dataclass
class ClientSession:
    """What a client learns at connection setup (§4.3): region rkeys,
    table geometry, the partition map, and a reply path for
    server-initiated notifications."""

    session_id: int
    table_rkey: int
    pool_rkeys: tuple[int, ...]  # partition 0 (compat shortcut)
    geometry: HashTableGeometry  # one partition's table segment
    server_ep: Endpoint  # server-side endpoint toward the client
    num_partitions: int = 1
    #: Table-MR-relative base offset of each partition's segment.
    partition_table_offsets: tuple[int, ...] = (0,)
    #: Per-partition pool rkeys: ``[part][pool]``.
    partition_pool_rkeys: tuple[tuple[int, ...], ...] = ()


class BaseServer:
    """Common server core: memory carve-up, RPC loop, partition router."""

    store_name = "base"
    #: Whether the alloc handler publishes the hash entry immediately
    #: (client-active schemes) or defers to durability (IMM/SAW).
    publish_on_alloc = True
    #: Whether this scheme's index can be sharded (Erda's hopscotch
    #: table displaces entries across the whole array and cannot).
    supports_partitions = True

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        config: StoreConfig | None = None,
        name: str = "server",
    ) -> None:
        self.env = env
        self.fabric = fabric
        self.config = config or StoreConfig()
        cfg = self.config
        n_parts = cfg.num_partitions
        if n_parts > 1 and not self.supports_partitions:
            raise ConfigError(
                f"store {self.store_name!r} does not support num_partitions > 1"
            )

        table_bytes = self._table_bytes()
        n_pools = 2 if cfg.dual_pools else 1
        device_size = _align(table_bytes, 4096) + n_parts * n_pools * _align(
            cfg.pool_size, 4096
        )
        if cfg.parity_stripe_kb > 0:
            # Parity/ledger/root regions live after every pool, so pool
            # and table addresses are unchanged when the tier is off.
            device_size += n_parts * _align(
                n_pools
                * integrity_region_bytes(
                    cfg.pool_size, cfg.parity_stripe_kb * 1024, CACHELINE
                ),
                4096,
            )
        self.device = NVMDevice(env, device_size, timing=cfg.nvm_timing, name=f"{name}.nvm")
        self.node: Node = fabric.create_node(
            name, device=self.device, cores=cfg.server_cores * n_parts, ddio=cfg.ddio
        )

        # -- memory carve-up ------------------------------------------------
        # One table MR covering every partition's segment (clients READ
        # any bucket through it); per-partition pools laid out after it.
        self.table_mr: MemoryRegion = self.node.register_memory(
            0, table_bytes, writable=False, name=f"{name}.table"
        )
        self.partitions: list[Partition] = []
        base = _align(table_bytes, 4096)
        budget = cfg.server_cores if n_parts > 1 else None
        for part_id in range(n_parts):
            pools: list[LogPool] = []
            pool_mrs: list[MemoryRegion] = []
            for pid in range(n_pools):
                pool = LogPool(
                    self.device,
                    base,
                    cfg.pool_size,
                    pool_id=pid,
                    reserve_fraction=cfg.reserve_fraction,
                )
                pools.append(pool)
                mr_name = (
                    f"{name}.pool{pid}"
                    if n_parts == 1
                    else f"{name}.p{part_id}.pool{pid}"
                )
                pool_mrs.append(
                    self.node.register_memory(
                        base, cfg.pool_size, writable=True, name=mr_name
                    )
                )
                base += _align(cfg.pool_size, 4096)
            self.partitions.append(
                Partition(
                    self,
                    part_id,
                    self._make_table(part_id),
                    pools,
                    pool_mrs,
                    cpu_budget=budget,
                )
            )
        if cfg.parity_stripe_kb > 0:
            for part in self.partitions:
                part.integrity = PartitionIntegrity(
                    self.device,
                    env,
                    cfg,
                    part.pools,
                    base,
                    tree=cfg.integrity_tree,
                )
                base = _align(part.integrity.region_end, 4096)

        self.rpc = RpcServer(
            env,
            self.node,
            dispatch_ns=cfg.dispatch_ns,
            concurrent_handlers=cfg.server_cores * n_parts,
        )
        self.sessions: list[ClientSession] = []
        self._session_ids = iter(range(1, 1 << 30))
        self._alloc_ids = iter(range(1, 1 << 62))
        #: Outstanding allocations (IMM/SAW persist-on-completion need
        #: them): alloc_id -> (loc, entry_off, klen, partition).
        self.pending_allocs: dict[int, tuple] = {}
        self._register_handlers()

    # -- index construction (Erda overrides with hopscotch) -----------------
    def _table_bytes(self) -> int:
        return self.config.geometry.table_bytes

    def _make_table(self, part: int = 0) -> Any:
        geom = self.config.partition_geometry
        return NvmHashTable(self.device, part * geom.table_bytes, geom)

    # -- the partition router -----------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def partition_for_fp(self, fp: int) -> Partition:
        return self.partitions[partition_of_fp(fp, len(self.partitions))]

    def partition_for_key(self, key: bytes) -> Partition:
        return self.partition_for_fp(key_fingerprint(key))

    # -- partition-0 compatibility views -------------------------------------
    # The monolith's attributes remain valid names for the first (and,
    # by default, only) partition, so single-partition code and tests
    # read exactly the state they always did.
    @property
    def table(self) -> Any:
        return self.partitions[0].table

    @property
    def pools(self) -> list[LogPool]:
        return self.partitions[0].pools

    @property
    def pool_mrs(self) -> list[MemoryRegion]:
        return self.partitions[0].pool_mrs

    @property
    def write_pool_id(self) -> int:
        return self.partitions[0].write_pool_id

    @write_pool_id.setter
    def write_pool_id(self, pool_id: int) -> None:
        self.partitions[0].write_pool_id = pool_id

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        self.rpc.start()

    def stop(self) -> None:
        self.rpc.stop()

    def connect_client(self, client_node: Node) -> tuple[Endpoint, ClientSession]:
        """Connection setup: returns the client-side endpoint and the
        session metadata (rkeys, geometry, partition map) the server
        hands over."""
        ep = self.fabric.connect(client_node, self.node)
        assert ep.peer is not None
        session = ClientSession(
            session_id=next(self._session_ids),
            table_rkey=self.table_mr.rkey,
            pool_rkeys=tuple(mr.rkey for mr in self.partitions[0].pool_mrs),
            geometry=self.config.partition_geometry,
            server_ep=ep.peer,
            num_partitions=len(self.partitions),
            partition_table_offsets=tuple(
                getattr(p.table, "base", 0) for p in self.partitions
            ),
            partition_pool_rkeys=tuple(
                tuple(mr.rkey for mr in p.pool_mrs) for p in self.partitions
            ),
        )
        self.sessions.append(session)
        return ep, session

    # -- handler registry ------------------------------------------------------
    def _register_handlers(self) -> None:
        """Subclasses register their RPC handlers here."""
        self.rpc.register("alloc", self._handle_alloc)
        self.rpc.register("alloc_batch", self._handle_alloc_batch)

    # -- the shared allocation path (client-active PUT, steps 2-4) -------------
    def _handle_alloc(self, msg: Message) -> Generator[Event, Any, tuple[Any, int]]:
        p = msg.payload
        part = self.partition_for_key(p["key"])
        if part.fenced:
            return (
                rpc_error(
                    f"partition {part.part_id} is write-fenced (migrating)",
                    code=ERR_FENCED,
                ),
                RESPONSE_BYTES,
            )
        if not part.try_admit():
            return busy_error(part), RESPONSE_BYTES
        budget = yield from part.acquire_budget()
        try:
            try:
                loc, entry_off = yield from part.alloc_object(
                    p["key"], p["vlen"], p.get("crc", 0), publish=self.publish_on_alloc
                )
            except StoreError as exc:
                return rpc_error_for(exc), RESPONSE_BYTES
            self.pending_allocs[p["alloc_id"]] = (loc, entry_off, len(p["key"]), part)
            return (
                {
                    "pool": loc.pool,
                    "value_off": loc.offset + HEADER_SIZE + len(p["key"]),
                    "obj_off": loc.offset,
                    "size": loc.size,
                    "part": part.part_id,
                },
                RESPONSE_BYTES,
            )
        finally:
            part.release_budget(budget)
            part.depart()

    # -- the coalesced allocation path (put_many, one SEND for N allocs) -------
    def _handle_alloc_batch(
        self, msg: Message
    ) -> Generator[Event, Any, tuple[Any, int]]:
        """Serve N allocation requests from one ``alloc_batch`` SEND.

        Requests are grouped by partition and each group is served under
        one budget acquisition as a slab: the first allocation in a
        group pays the allocator's CPU cost, the rest ride the same
        log-head bump (``charge_alloc=False``). Per-item failures come
        back as per-item error payloads so one exhausted partition does
        not fail the whole batch.
        """
        reqs = msg.payload["reqs"]
        results: list[Any] = [None] * len(reqs)
        groups: dict[int, list[int]] = {}
        for idx, r in enumerate(reqs):
            part = self.partition_for_key(r["key"])
            groups.setdefault(part.part_id, []).append(idx)
        for part_id, indexes in groups.items():
            part = self.partitions[part_id]
            if part.fenced:
                err = rpc_error(
                    f"partition {part.part_id} is write-fenced (migrating)",
                    code=ERR_FENCED,
                )
                for idx in indexes:
                    results[idx] = err
                continue
            if not part.try_admit():
                # The whole partition group is shed as one unit — it
                # would have ridden one budget acquisition anyway.
                err = busy_error(part)
                for idx in indexes:
                    results[idx] = err
                continue
            budget = yield from part.acquire_budget()
            try:
                first = True
                for idx in indexes:
                    r = reqs[idx]
                    try:
                        loc, entry_off = yield from part.alloc_object(
                            r["key"],
                            r["vlen"],
                            r.get("crc", 0),
                            publish=self.publish_on_alloc,
                            charge_alloc=first,
                        )
                    except StoreError as exc:
                        results[idx] = rpc_error_for(exc)
                        continue
                    first = False
                    self.pending_allocs[r["alloc_id"]] = (
                        loc, entry_off, len(r["key"]), part,
                    )
                    results[idx] = {
                        "pool": loc.pool,
                        "value_off": loc.offset + HEADER_SIZE + len(r["key"]),
                        "obj_off": loc.offset,
                        "size": loc.size,
                        "part": part.part_id,
                    }
            finally:
                part.release_budget(budget)
                part.depart()
        nbytes = RESPONSE_BYTES + BATCH_RESPONSE_ITEM_BYTES * max(0, len(reqs) - 1)
        return {"results": results}, nbytes

    def alloc_object(
        self,
        key: bytes,
        vlen: int,
        crc: int,
        *,
        publish: bool = True,
        flags: int = FLAG_VALID,
    ) -> Generator[Event, Any, tuple[ObjectLocation, int]]:
        """Allocate on the key's partition (see
        :meth:`repro.baselines.partition.Partition.alloc_object`)."""
        part = self.partition_for_key(key)
        return (
            yield from part.alloc_object(key, vlen, crc, publish=publish, flags=flags)
        )

    def on_allocated(self, part: Partition, loc: ObjectLocation, entry_off: int) -> None:
        """Subclass hook (eFactory feeds its background verifier)."""

    # -- partition-0 object helpers (compat; core code uses Partition) ---------
    def publish_object(
        self, entry_off: int, loc: ObjectLocation
    ) -> Generator[Event, Any, None]:
        yield from self.partitions[0].publish_object(entry_off, loc)

    def persist_header(
        self, loc: ObjectLocation, klen: int
    ) -> Generator[Event, Any, None]:
        yield from self.partitions[0].persist_header(loc, klen)

    def persist_entry_timed(self, entry_off: int) -> Generator[Event, Any, None]:
        yield from self.partitions[0].persist_entry_timed(entry_off)

    def read_object(self, loc: ObjectLocation) -> ObjectImage:
        """Instant state read of an object (timing charged by caller)."""
        return self.partitions[0].read_object(loc)

    def object_value_ok(self, img: ObjectImage) -> bool:
        """Functional CRC verification (the *time* is charged by caller
        via ``config.crc_cost``)."""
        return (
            img.well_formed
            and img.vlen == len(img.value)
            and crc32_fast(img.value) == img.crc
        )

    def persist_object(self, loc: ObjectLocation) -> Generator[Event, Any, None]:
        yield from self.partitions[0].persist_object(loc)

    def set_object_flags(self, loc: ObjectLocation, flags: int) -> None:
        self.partitions[0].set_object_flags(loc, flags)

    def mark_durable(self, loc: ObjectLocation, img: ObjectImage) -> None:
        self.partitions[0].mark_durable(loc, img)

    def lookup_slot(self, key: bytes) -> Optional[tuple[int, Optional[Slot], Optional[Slot]]]:
        """(entry_off, cur, alt) for ``key`` on its partition (state only)."""
        return self.partition_for_key(key).lookup_slot(key)

    def _previous_location(self, loc: ObjectLocation) -> Optional[ObjectLocation]:
        return self.partitions[0].previous_location(loc)


class BaseClient:
    """Common client core: session setup, client-active PUT, GET helpers."""

    def __init__(self, env: Environment, server: BaseServer, name: str) -> None:
        self.env = env
        self.server = server
        self.name = name
        self.node: Node = server.fabric.create_node(name)
        self.ep, self.session = server.connect_client(self.node)
        self.rpc = RpcClient(self.ep)
        self.config = server.config
        self._alloc_counter = 0
        #: Optional :class:`~repro.faults.policy.ClientResilience`
        #: attached via :meth:`enable_resilience`; None keeps every
        #: operation single-attempt, bit-for-bit as before.
        self.resilience = None
        #: Partitions currently running log cleaning (notifications).
        self._cleaning_parts: set[int] = set()
        #: Dedicated notification listener — the client library "thread"
        #: that reacts to log-cleaning notices even while the app is
        #: idle, and acks promptly so the cleaner is never stalled.
        self._listener = self.env.process(
            self._notification_loop(), name=f"{name}-notify"
        )

    def _next_alloc_id(self) -> int:
        """Globally unique allocation id that still fits IMM's 32-bit
        immediate field: session id (8 bits) + per-client counter."""
        self._alloc_counter += 1
        return ((self.session.session_id & 0xFF) << 24) | (
            self._alloc_counter & 0xFFFFFF
        )

    # -- the client half of the partition router --------------------------------
    def partition_of(self, fp: int) -> int:
        """Route a fingerprint locally — no server round trip."""
        return partition_of_fp(fp, self.session.num_partitions)

    def _pool_rkey(self, part: int, pool: int) -> int:
        if self.session.partition_pool_rkeys:
            return self.session.partition_pool_rkeys[part][pool]
        return self.session.pool_rkeys[pool]

    def _note_part(self, part: int) -> None:
        """Tag the next verb with its partition for fault injection
        (one-shot; consumed at the verb's injection point in the same
        kernel step)."""
        inj = self.server.fabric.injector
        if inj is not None:
            inj.set_context_partition(part)

    # -- resilience (opt-in; see repro.faults.policy) ------------------------
    def enable_resilience(self, policy, rng, tracer=None):
        """Attach a :class:`~repro.faults.policy.RetryPolicy`: operations
        issued through :meth:`call_resilient` gain per-attempt timeouts,
        bounded retries with seeded backoff jitter, and QP re-connect."""
        from repro.faults.policy import ClientResilience

        self.resilience = ClientResilience(policy, rng, tracer=tracer, name=self.name)
        return self.resilience

    def call_resilient(
        self, make_op, *, label: str = "op"
    ) -> Generator[Event, Any, Any]:
        """Run ``make_op()`` (a fresh operation generator per attempt)
        under the attached resilience policy.

        Each attempt races the policy timeout; a transport fault
        (:class:`QPError`), a retryable :class:`RpcFault`, or a timeout
        triggers backoff and a retry — re-establishing the QP first when
        it sits in the error state. Non-retryable faults and exhausted
        budgets propagate to the caller. With no policy attached this
        delegates directly, adding no events.
        """
        res = self.resilience
        if res is None:
            return (yield from make_op())
        p = res.policy
        attempt = 0
        while True:
            try:
                if p.timeout_ns > 0:
                    proc = self.env.process(make_op(), name=f"{self.name}:{label}")
                    timer = self.env.timeout(p.timeout_ns)
                    outcome = yield (proc | timer)
                    if proc in outcome:
                        return proc.value
                    # Deadline expired first (e.g. the server's reply was
                    # dropped and nothing will ever wake us): abandon the
                    # attempt and treat it as a transport fault.
                    if proc.is_alive:
                        proc.interrupt("timeout")
                    res.note_timeout()
                    fault = OperationTimeout(
                        f"{self.name} {label} missed its "
                        f"{p.timeout_ns:.0f}ns deadline"
                    )
                else:
                    return (yield from make_op())
            except (QPError, RpcFault) as exc:
                fault = exc
            if isinstance(fault, RpcFault) and not fault.retryable:
                res.note_gave_up(label)
                raise fault
            if attempt >= p.max_retries:
                res.note_gave_up(label)
                raise fault
            attempt += 1
            if self.ep.in_error or isinstance(fault, OperationTimeout):
                yield self.env.timeout(p.reconnect_ns)
                self.ep.reset()
                res.note_reconnect()
                self._reconnected()
            res.note_retry(label, attempt, type(fault).__name__)
            yield self.env.timeout(res.backoff_ns(attempt))

    def _reconnected(self) -> None:
        """Hook: the QP was just re-established after a fault. Subclasses
        drop connection-scoped state here (e.g. the location cache —
        after a failover the cached slots may describe a dead node)."""

    # -- notifications (log cleaning, §4.4) --------------------------------------
    @property
    def cleaning_mode(self) -> bool:
        """True while *any* partition is cleaning (partition-aware code
        should test membership in ``_cleaning_parts`` instead)."""
        return bool(self._cleaning_parts)

    def partition_cleaning(self, part: int) -> bool:
        return part in self._cleaning_parts

    @staticmethod
    def _is_cleaning_notice(msg: Message) -> bool:
        return (
            isinstance(msg.payload, dict)
            and msg.payload.get("op") == "cleaning"
        )

    def _notification_loop(self) -> Generator[Event, Any, None]:
        while True:
            msg = yield self.node.srq.get(self._is_cleaning_notice)
            yield from self._handle_cleaning_notice(msg)

    def poll_notifications(self) -> Generator[Event, Any, None]:
        """Drain pending server notifications.

        Kept for call-site symmetry (the listener process normally
        handles notices the moment they arrive); a direct call still
        works when the listener is somehow behind.
        """
        while True:
            ok, msg = self.node.srq.try_get(self._is_cleaning_notice)
            if not ok:
                return
            yield from self._handle_cleaning_notice(msg)

    def _handle_cleaning_notice(self, msg: Message) -> Generator[Event, Any, None]:
        state = msg.payload["state"]
        part = msg.payload.get("part", 0)
        if state == "start":
            self._cleaning_parts.add(part)
            self._cleaning_started(part)
            yield from self.ep.send(
                {"op": "cleaning_ack", "part": part}, 24, in_reply_to=msg.req_id
            )
        elif state == "finish":
            self._cleaning_parts.discard(part)
            self._cleaning_finished(part)

    def _cleaning_started(self, part: int) -> None:
        """Subclass hook: a partition entered log cleaning (eFactory
        flushes its location cache for that partition here)."""

    def _cleaning_finished(self, part: int) -> None:
        """Subclass hook: a partition finished log cleaning."""

    # -- client-active PUT (§4.3.1) ----------------------------------------------
    def put_client_active(
        self, key: bytes, value: bytes, *, with_crc: bool
    ) -> Generator[Event, Any, None]:
        """Steps 1–5 of Figure 5: alloc RPC, then one-sided WRITE of the
        value. Returns when the WRITE acks (durability NOT implied).

        The client overlaps its CRC computation with the allocation
        round trip (the CPU is otherwise idle waiting for the response),
        so only the CRC time exceeding the RTT lands on the critical
        path — without this, large-value PUTs would pay the full CRC
        serially, which no competent implementation does.
        """
        crc = crc32_fast(value) if with_crc else 0
        if self.resilience is not None:
            # Retry at whole-PUT granularity: after a transport fault the
            # first allocation's slot may already have been invalidated by
            # the server's verify timeout (§4.3.2 treats a write that
            # missed its window as never-completed), so re-WRITing it
            # would ack into a dead slot. A fresh alloc gets a fresh slot
            # and a fresh verification window.
            yield from self.call_resilient(
                lambda: self._put_attempt(key, value, crc, with_crc), label="put"
            )
        else:
            yield from self._put_attempt(key, value, crc, with_crc)

    def _put_attempt(
        self, key: bytes, value: bytes, crc: int, with_crc: bool
    ) -> Generator[Event, Any, None]:
        t0 = self.env.now
        resp = yield from self.alloc_rpc(key, len(value), crc)
        if with_crc:
            crc_ns = self.config.crc_cost.cost_ns(len(value))
            overlap = self.env.now - t0
            if crc_ns > overlap:
                yield self.env.timeout(crc_ns - overlap)
        self._note_alloc(key, resp)
        yield from self.write_value(resp, value)

    def _note_alloc(self, key: bytes, resp: dict) -> None:
        """Subclass hook: the server granted ``key`` a fresh location
        (eFactory refreshes its client-side location cache here)."""

    # -- batched client-active PUT (the doorbell pipeline) -----------------------
    def put_many_client_active(
        self, items: "list[tuple[bytes, bytes]]", *, with_crc: bool
    ) -> Generator[Event, Any, None]:
        """PUT many key/value pairs through the amortized pipeline.

        Per chunk of ``config.put_batch`` items: one ``alloc_batch``
        SEND replaces N alloc round trips, then the value WRITEs are
        posted as one doorbell batch with selective signaling
        (:meth:`Endpoint.write_many`). Up to ``config.put_window``
        doorbell batches stay in flight while the client issues the next
        chunk's alloc RPC, so independent PUTs overlap instead of
        serializing. Durability semantics per item are identical to
        :meth:`put_client_active` (ack ≠ durable; the server's
        background verifier persists each object).

        With resilience attached, each chunk runs serially under the
        whole-chunk retry policy (fresh allocations per attempt, same
        rationale as the whole-PUT retry).
        """
        if not items:
            return
        batch = self.config.put_batch
        chunks = [items[i : i + batch] for i in range(0, len(items), batch)]
        if self.resilience is not None:
            for chunk in chunks:
                yield from self.call_resilient(
                    lambda c=chunk: self._put_chunk(c, with_crc),
                    label="put_many",
                )
            return
        outstanding: list = []
        failures: list[BaseException] = []
        for chunk in chunks:
            crcs = [crc32_fast(v) if with_crc else 0 for _, v in chunk]
            t0 = self.env.now
            resps = yield from self.alloc_batch_rpc(chunk, crcs)
            if with_crc:
                crc_ns = sum(
                    self.config.crc_cost.cost_ns(len(v)) for _, v in chunk
                )
                overlap = self.env.now - t0
                if crc_ns > overlap:
                    yield self.env.timeout(crc_ns - overlap)
            proc = self.env.process(
                self._write_batch_guarded(resps, [v for _, v in chunk], failures),
                name=f"{self.name}-doorbell",
            )
            outstanding.append(proc)
            # Completion window: block only when put_window batches are
            # already on the wire.
            live = [p for p in outstanding if p.is_alive]
            while len(live) >= self.config.put_window:
                yield self.env.any_of(live)
                live = [p for p in outstanding if p.is_alive]
            outstanding = live
        for proc in outstanding:
            if proc.is_alive:
                yield proc
        if failures:
            raise failures[0]

    def _put_chunk(
        self, chunk: "list[tuple[bytes, bytes]]", with_crc: bool
    ) -> Generator[Event, Any, None]:
        """One chunk, serially: alloc_batch then the doorbell WRITEs
        (the resilient path retries this whole generator)."""
        crcs = [crc32_fast(v) if with_crc else 0 for _, v in chunk]
        t0 = self.env.now
        resps = yield from self.alloc_batch_rpc(chunk, crcs)
        if with_crc:
            crc_ns = sum(self.config.crc_cost.cost_ns(len(v)) for _, v in chunk)
            overlap = self.env.now - t0
            if crc_ns > overlap:
                yield self.env.timeout(crc_ns - overlap)
        yield from self._write_batch(resps, [v for _, v in chunk])

    def alloc_batch_rpc(
        self, chunk: "list[tuple[bytes, bytes]]", crcs: "list[int]"
    ) -> Generator[Event, Any, list]:
        """One SEND carrying N allocation requests; returns N grants.

        Raises :class:`RpcFault` on the first per-item error (same
        surface as N individual :meth:`alloc_rpc` calls).
        """
        reqs = []
        for (key, value), crc in zip(chunk, crcs):
            reqs.append(
                {
                    "key": key,
                    "vlen": len(value),
                    "crc": crc,
                    "alloc_id": self._next_alloc_id(),
                }
            )
        nbytes = (
            PUT_REQUEST_OVERHEAD
            + sum(len(k) for k, _ in chunk)
            + PUT_BATCH_ITEM_OVERHEAD * max(0, len(chunk) - 1)
        )
        resp = yield from self.rpc.call(
            {"op": "alloc_batch", "reqs": reqs}, nbytes
        )
        results = resp["results"]
        for r, req, (key, _v) in zip(results, reqs, chunk):
            if isinstance(r, dict) and "error" in r:
                raise RpcFault(
                    r["error"], code=r.get("code", "unknown"), op="alloc_batch"
                )
            r["alloc_id"] = req["alloc_id"]
            self._note_alloc(key, r)
        return results

    def _write_batch(
        self, resps: list, values: "list[bytes]"
    ) -> Generator[Event, Any, None]:
        """Post one chunk's value WRITEs as a doorbell batch."""
        writes = []
        for resp, value in zip(resps, values):
            part = resp.get("part", 0)
            writes.append(
                (self._pool_rkey(part, resp["pool"]), resp["value_off"], value)
            )
        if writes:
            self._note_part(resps[0].get("part", 0))
            yield from self.ep.write_many(writes)

    def _write_batch_guarded(
        self, resps: list, values: "list[bytes]", failures: "list[BaseException]"
    ) -> Generator[Event, Any, None]:
        """Window wrapper: capture faults instead of letting an
        unwaited process escalate them through the kernel."""
        try:
            yield from self._write_batch(resps, values)
        except (QPError, RpcFault, StoreError) as exc:
            failures.append(exc)

    def alloc_rpc(
        self, key: bytes, vlen: int, crc: int
    ) -> Generator[Event, Any, dict]:
        alloc_id = self._next_alloc_id()
        resp = yield from self.rpc.call(
            {"op": "alloc", "key": key, "vlen": vlen, "crc": crc, "alloc_id": alloc_id},
            PUT_REQUEST_OVERHEAD + len(key),
        )
        resp["alloc_id"] = alloc_id
        return resp

    def write_value(self, alloc_resp: dict, value: bytes) -> Generator[Event, Any, None]:
        part = alloc_resp.get("part", 0)
        rkey = self._pool_rkey(part, alloc_resp["pool"])
        self._note_part(part)
        yield from self.ep.write(rkey, alloc_resp["value_off"], value)

    # -- pure-RDMA GET helpers (steps 1-4 of Figure 6) ---------------------------
    def read_bucket(self, key: bytes) -> Generator[Event, Any, tuple[int, Optional[tuple]]]:
        """READ the home bucket (on the key's partition segment);
        returns (fp, (cur, alt) or None)."""
        fp = key_fingerprint(key)
        part = self.partition_of(fp)
        geom = self.session.geometry
        self._note_part(part)
        raw = yield from self.ep.read(
            self.session.table_rkey,
            self.session.partition_table_offsets[part]
            + geom.bucket_offset(geom.bucket_of(fp)),
            geom.bucket_bytes,
        )
        return fp, client_lookup_bucket(raw, fp, geom)

    def read_object_at(
        self, slot: Slot, part: int = 0
    ) -> Generator[Event, Any, ObjectImage]:
        self._note_part(part)
        raw = yield from self.ep.read(
            self._pool_rkey(part, slot.pool), slot.offset, slot.size
        )
        return parse_object(raw)

    def read_object_with_raw(
        self, slot: Slot, part: int = 0
    ) -> Generator[Event, Any, "tuple[ObjectImage, bytes]"]:
        """Like :meth:`read_object_at` but also returns the wire bytes,
        for callers that verify the image end-to-end (integrity tree)."""
        self._note_part(part)
        raw = yield from self.ep.read(
            self._pool_rkey(part, slot.pool), slot.offset, slot.size
        )
        return parse_object(raw), bytes(raw)

    def read_object_loc(
        self, pool: int, offset: int, size: int, part: int = 0
    ) -> Generator[Event, Any, ObjectImage]:
        self._note_part(part)
        raw = yield from self.ep.read(self._pool_rkey(part, pool), offset, size)
        return parse_object(raw)

    # -- interface -------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> Generator[Event, Any, None]:
        raise NotImplementedError

    def put_many(
        self, items: "list[tuple[bytes, bytes]]"
    ) -> Generator[Event, Any, None]:
        """PUT many pairs.  Default: sequential :meth:`put` calls — the
        client-active stores override this with the doorbell-batched
        pipeline (:meth:`put_many_client_active`)."""
        for key, value in items:
            yield from self.put(key, value)

    def get(
        self, key: bytes, size_hint: Optional[int] = None
    ) -> Generator[Event, Any, bytes]:
        raise NotImplementedError

    @staticmethod
    def _check_found(img: ObjectImage, key: bytes) -> None:
        if not img.well_formed or img.key != key:
            raise KeyNotFoundError(f"key {key!r} not found at indexed location")


def _align(n: int, a: int) -> int:
    return (n + a - 1) & ~(a - 1)


def busy_error(part: Partition) -> dict:
    """The retryable shed response (admission control, DESIGN.md §15)."""
    return rpc_error(
        f"partition {part.part_id} over admission watermark "
        f"({part.inflight} in flight)",
        code=ERR_BUSY,
    )
