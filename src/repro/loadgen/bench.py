"""`bench --suite load`: thousand-client open-loop cells (BENCH_pr10.json).

Cells:

* one 1k-client single-tenant cell per mix (default YCSB-A/B/C) on a
  constant arrival curve, completion batching and admission armed;
* one multi-tenant burst cell — a latency-sensitive ``gold`` tenant on
  a constant curve sharing the store with a ``bulk`` tenant driving
  periodic 4× bursts — reporting per-tenant goodput under distinct SLOs;
* a batching off/on comparison on the largest cell, reporting the
  events-per-op ratio (the PR 6 headroom this engine banks) and the
  wall-clock ops/s ratio.

Simulated percentiles/goodput are deterministic; wall-clock fields
(``wall_s``, ``wall_ops_per_s``) vary run to run and are informational.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Optional

from repro.loadgen.arrivals import ArrivalCurve
from repro.loadgen.engine import LoadReport, LoadSpec, run_load
from repro.loadgen.tenants import TenantSpec
from repro.workloads.ycsb import WORKLOADS

__all__ = ["run_load_bench_suite", "load_cell_spec"]

#: Mean rate per client (ops/s) — at 1k clients this offers 2M ops/s,
#: comfortably inside the store's capacity (queueing stays bounded, the
#: SLO is meetable) while keeping arrivals dense enough that completion
#: grid ticks are shared across clients.
_RATE_PER_CLIENT_OPS_S = 2_000.0
#: Completion-grid bucket for the load cells. Wider than the kernel's
#: 128 ns wheel bucket: the sweep showed 256 ns maximizes cross-client
#: sharing before latency quantization starts costing more events than
#: batching saves.
_BUCKET_NS = 256.0
_SLO_NS = 25_000.0


def load_cell_spec(
    mix: str,
    clients: int,
    ops_per_client: int,
    seed: int,
    *,
    value_len: int = 128,
    key_count: int = 1024,
    curve: Optional[ArrivalCurve] = None,
    admission_watermark: int = 64,
    completion_batching: bool = True,
) -> LoadSpec:
    """The canonical single-tenant cell used by the load suite."""
    w = WORKLOADS[mix](key_count=key_count, value_len=value_len)
    tenant = TenantSpec(
        name=mix,
        workload=w,
        clients=clients,
        ops_per_client=ops_per_client,
        rate_ops_s=_RATE_PER_CLIENT_OPS_S * clients,
        slo_ns=_SLO_NS,
        curve=curve or ArrivalCurve(),
    )
    return LoadSpec(
        tenants=(tenant,),
        seed=seed,
        completion_batching=completion_batching,
        batch_bucket_ns=_BUCKET_NS,
        admission_watermark=admission_watermark,
    )


def _timed(spec: LoadSpec) -> dict:
    t0 = time.perf_counter()
    report = run_load(spec)
    wall = time.perf_counter() - t0
    d = report.as_dict()
    d["wall_s"] = wall
    d["wall_ops_per_s"] = (report.total_ops / wall) if wall > 0 else 0.0
    return d


def run_load_bench_suite(
    clients: int = 1000,
    ops_per_client: int = 40,
    seed: int = 42,
    mixes: tuple[str, ...] = ("YCSB-A", "YCSB-B", "YCSB-C"),
) -> dict:
    """Run every load cell; returns the BENCH_pr10.json payload."""
    cells: dict[str, dict] = {}
    for mix in mixes:
        cells[mix] = _timed(
            load_cell_spec(mix, clients, ops_per_client, seed)
        )

    # -- multi-tenant burst cell ---------------------------------------------
    gold_clients = max(1, clients // 4)
    bulk_clients = max(1, clients - gold_clients)
    gold = TenantSpec(
        name="gold",
        workload=WORKLOADS["YCSB-B"](key_count=1024, value_len=128),
        clients=gold_clients,
        ops_per_client=ops_per_client,
        rate_ops_s=_RATE_PER_CLIENT_OPS_S * gold_clients,
        slo_ns=15_000.0,
    )
    bulk = TenantSpec(
        name="bulk",
        workload=WORKLOADS["YCSB-A"](key_count=1024, value_len=128),
        clients=bulk_clients,
        ops_per_client=ops_per_client,
        rate_ops_s=_RATE_PER_CLIENT_OPS_S * bulk_clients,
        slo_ns=100_000.0,
        curve=ArrivalCurve(kind="burst", burst_factor=4.0),
    )
    cells["burst-multitenant"] = _timed(
        LoadSpec(
            tenants=(gold, bulk),
            seed=seed,
            completion_batching=True,
            batch_bucket_ns=_BUCKET_NS,
            admission_watermark=64,
        )
    )

    # -- completion batching off vs on (same cell, same seed) -----------------
    base = load_cell_spec("YCSB-C", clients, ops_per_client, seed)
    off = _timed(replace(base, completion_batching=False))
    on = _timed(base)
    comparison = {
        "cell": "YCSB-C",
        "clients": clients,
        "off": {
            "events_per_op": off["events_per_op"],
            "wall_s": off["wall_s"],
            "wall_ops_per_s": off["wall_ops_per_s"],
        },
        "on": {
            "events_per_op": on["events_per_op"],
            "wall_s": on["wall_s"],
            "wall_ops_per_s": on["wall_ops_per_s"],
        },
        #: < 1.0 means batching dispatches fewer kernel events per op.
        "events_per_op_ratio": (
            on["events_per_op"] / off["events_per_op"]
            if off["events_per_op"] > 0
            else float("nan")
        ),
        "wall_speedup": (
            on["wall_ops_per_s"] / off["wall_ops_per_s"]
            if off["wall_ops_per_s"] > 0
            else float("nan")
        ),
    }

    return {
        "suite": "load",
        "clients": clients,
        "ops_per_client": ops_per_client,
        "seed": seed,
        "cells": cells,
        "batching_comparison": comparison,
    }


def summarize_report(report: LoadReport) -> dict:
    """Compact digest for CLI table rendering."""
    return report.as_dict()
