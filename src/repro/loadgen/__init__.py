"""Open-loop multi-tenant load engine (thousand-client scale-out)."""

from repro.loadgen.arrivals import ArrivalCurve
from repro.loadgen.bench import load_cell_spec, run_load_bench_suite
from repro.loadgen.engine import LoadReport, LoadSpec, TenantResult, run_load
from repro.loadgen.tenants import TenantSpec

__all__ = [
    "ArrivalCurve",
    "LoadReport",
    "LoadSpec",
    "TenantResult",
    "TenantSpec",
    "load_cell_spec",
    "run_load",
    "run_load_bench_suite",
]
