"""Open-loop arrival processes (constant, diurnal, burst).

Closed-loop clients (the harness runner) issue their next operation the
instant the previous one completes, so the offered load adapts to the
store and queueing never builds up. The load engine instead drives each
client by a pregenerated *arrival schedule*: operation ``j`` is due at
``t_j`` regardless of how long operation ``j-1`` took. Latency is then
measured from the scheduled arrival, which keeps the numbers free of
coordinated omission — a slow op delays its successors and that delay
is charged to them, exactly as an external client population would
experience it.

Schedules are Poisson at a mean rate, optionally modulated by a rate
*curve*: ``diurnal`` (sinusoidal day/night swing) or ``burst``
(periodic windows at a multiple of the base rate). Shaped curves are
sampled by Lewis–Shedler thinning against the curve's peak rate, which
is exact for any bounded rate function and stays fully deterministic
given the generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.errors import ConfigError

__all__ = ["ArrivalCurve"]

CurveKind = Literal["constant", "diurnal", "burst"]


@dataclass(frozen=True)
class ArrivalCurve:
    """Shape of the offered-load rate over time (times in ns).

    The curve multiplies a tenant's mean rate: ``rate(t) = mean_rate *
    rate_factor(t)``. ``constant`` is plain Poisson; ``diurnal`` swings
    ``1 ± amplitude`` over ``period_ns``; ``burst`` runs at
    ``burst_factor``× for the first ``burst_len_ns`` of every
    ``burst_every_ns`` window and at 1× otherwise.
    """

    kind: CurveKind = "constant"
    #: diurnal swing as a fraction of the mean rate, in [0, 1].
    amplitude: float = 0.5
    period_ns: float = 5_000_000.0
    burst_factor: float = 4.0
    burst_every_ns: float = 2_000_000.0
    burst_len_ns: float = 400_000.0

    def __post_init__(self) -> None:
        if self.kind not in ("constant", "diurnal", "burst"):
            raise ConfigError(f"unknown arrival curve kind {self.kind!r}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ConfigError("amplitude must be in [0, 1]")
        if self.period_ns <= 0:
            raise ConfigError("period_ns must be positive")
        if self.burst_factor < 1.0:
            raise ConfigError("burst_factor must be >= 1")
        if self.burst_every_ns <= 0 or self.burst_len_ns <= 0:
            raise ConfigError("burst window parameters must be positive")
        if self.burst_len_ns > self.burst_every_ns:
            raise ConfigError("burst_len_ns must fit inside burst_every_ns")

    # -- rate shape ----------------------------------------------------------
    def rate_factor(self, t_ns: float) -> float:
        """Instantaneous rate multiplier at absolute time ``t_ns``."""
        if self.kind == "constant":
            return 1.0
        if self.kind == "diurnal":
            return 1.0 + self.amplitude * math.sin(
                2.0 * math.pi * t_ns / self.period_ns
            )
        return (
            self.burst_factor
            if (t_ns % self.burst_every_ns) < self.burst_len_ns
            else 1.0
        )

    def peak_factor(self) -> float:
        """Upper bound of :meth:`rate_factor` (thinning envelope)."""
        if self.kind == "constant":
            return 1.0
        if self.kind == "diurnal":
            return 1.0 + self.amplitude
        return self.burst_factor

    # -- schedule generation -------------------------------------------------
    def arrivals(
        self,
        rng: np.random.Generator,
        mean_rate_per_ns: float,
        n: int,
        t0: float = 0.0,
    ) -> np.ndarray:
        """``n`` absolute arrival times after ``t0`` (ascending float64).

        ``mean_rate_per_ns`` is the *base* rate; shaped curves modulate
        it via :meth:`rate_factor`.
        """
        if mean_rate_per_ns <= 0:
            raise ConfigError("mean arrival rate must be positive")
        if n <= 0:
            return np.empty(0, dtype=np.float64)
        if self.kind == "constant":
            gaps = rng.exponential(1.0 / mean_rate_per_ns, size=n)
            return t0 + np.cumsum(gaps)
        # Lewis–Shedler thinning against the peak rate: draw candidate
        # arrivals at the envelope rate, keep each with probability
        # rate_factor(t)/peak. Candidates are drawn in vectorised blocks.
        peak = self.peak_factor()
        peak_rate = mean_rate_per_ns * peak
        out = np.empty(n, dtype=np.float64)
        t = t0
        i = 0
        block = max(64, n)
        while i < n:
            gaps = rng.exponential(1.0 / peak_rate, size=block)
            us = rng.random(block)
            for g, u in zip(gaps.tolist(), us.tolist()):
                t += g
                if u * peak <= self.rate_factor(t):
                    out[i] = t
                    i += 1
                    if i == n:
                        break
        return out
