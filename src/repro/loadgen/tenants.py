"""Multi-tenant stream descriptions for the open-loop load engine.

A *tenant* is one stream of offered load: a client population, a YCSB
mix, an aggregate arrival rate shaped by an :class:`ArrivalCurve`, and
a latency SLO. The engine gives every tenant a disjoint slice of the
key space (multi-tenant isolation at the keyspace level; the fabric,
server CPUs and dispatch budgets are shared — that contention is the
point) and reports per-tenant percentiles and goodput-under-SLO.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.loadgen.arrivals import ArrivalCurve
from repro.workloads.ycsb import WorkloadSpec

__all__ = ["TenantSpec"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's offered-load contract."""

    name: str
    workload: WorkloadSpec
    #: Open-loop client processes driving this tenant's schedule.
    clients: int = 1
    #: Operations per client (the run ends when every schedule drains).
    ops_per_client: int = 50
    #: Aggregate mean arrival rate across the tenant's clients.
    rate_ops_s: float = 1_000_000.0
    #: Latency target; ops at or under it count toward goodput.
    slo_ns: float = 20_000.0
    curve: ArrivalCurve = field(default_factory=ArrivalCurve)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.clients < 1:
            raise ConfigError("clients must be >= 1")
        if self.ops_per_client < 1:
            raise ConfigError("ops_per_client must be >= 1")
        if self.rate_ops_s <= 0:
            raise ConfigError("rate_ops_s must be positive")
        if self.slo_ns <= 0:
            raise ConfigError("slo_ns must be positive")

    @property
    def rate_per_client_per_ns(self) -> float:
        """Mean per-client arrival rate in ops/ns (schedule units)."""
        return self.rate_ops_s / self.clients / 1e9

    @property
    def total_ops(self) -> int:
        return self.clients * self.ops_per_client
