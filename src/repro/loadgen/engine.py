"""Thousand-client open-loop load engine (DESIGN.md §15).

One load run deploys a store, preloads every tenant's key slice, then
drives each tenant's client population along pregenerated open-loop
arrival schedules (:mod:`repro.loadgen.arrivals`). Operation latency is
measured from the *scheduled* arrival time — queueing delay caused by a
slow store is charged to the ops that experienced it (no coordinated
omission) — and each tenant reports p50/p99/p999 plus goodput under its
SLO.

Scale-out machinery (all opt-in, armed here):

* **completion batching** — the engine arms the fabric's
  :class:`~repro.rdma.batch.CompletionBatcher` so verb completions
  *and* arrival ticks across all clients coalesce onto one shared time
  grid, cutting kernel events per op as concurrency grows;
* **admission control** — a per-partition watermark
  (``StoreConfig.admission_watermark``) sheds over-limit requests with
  retryable ``ERR_BUSY``; the engine attaches the PR 2 retry/backoff
  policy to every client so shed requests back off and re-offer,
  closing the congestion-control loop;
* **hot-set churn** — ``churn_rotate_every`` remaps each client's key
  choices through a :class:`~repro.workloads.zipf.RotatingHotSet`, so
  the hot keys drift during the run.

Chaos hooks: the ``loadgen.arrival`` fault site fires before each
scheduled op; a ``client_stall`` action defers that client's arrival by
``delay_ns`` (a generator-side scheduling hiccup — the op is late, not
lost, and its latency is still measured from the *stalled* schedule).
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ConfigError, StoreError
from repro.faults.injector import arm_store
from repro.faults.plan import FaultPlan
from repro.faults.policy import RetryPolicy
from repro.harness.metrics import LatencyRecorder, summarize
from repro.loadgen.tenants import TenantSpec
from repro.rdma.rpc import RpcFault
from repro.sim.kernel import Environment, Event
from repro.sim.rng import RngRegistry
from repro.stores import build_store
from repro.workloads.keyspace import make_key, make_value
from repro.workloads.ycsb import Op
from repro.workloads.zipf import RotatingHotSet

__all__ = ["LoadSpec", "TenantResult", "LoadReport", "run_load"]

_PRELOAD_CHUNK = 64


@dataclass(frozen=True)
class LoadSpec:
    """Everything needed to reproduce one open-loop load run."""

    tenants: tuple[TenantSpec, ...]
    store: str = "efactory"
    seed: int = 42
    #: Coalesce completion waits and arrival ticks onto a shared grid.
    completion_batching: bool = True
    batch_bucket_ns: float = 128.0
    #: Per-partition admission watermark (0 = off, bit-identical paths).
    admission_watermark: int = 0
    #: Attach retry/backoff to every client. ``None`` = auto: on exactly
    #: when admission control is armed (shed requests must re-offer).
    retry: Optional[bool] = None
    #: Re-salt each client's hot set every N draws (0 = no churn).
    churn_rotate_every: int = 0
    #: Warm each client's location cache (one unmeasured GET per distinct
    #: key in its stream) before the open-loop window, so the measured
    #: phase reflects long-lived steady-state clients.
    warm_caches: bool = True
    settle_ns: float = 20_000_000.0
    config_overrides: dict = field(default_factory=dict)
    #: Chaos plan armed for the whole run (``loadgen.arrival`` /
    #: ``admission.*`` and every pre-existing site). Arming an injector
    #: disables the fabric's analytic fast path, as everywhere else.
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigError("need at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError("tenant names must be unique")
        if self.batch_bucket_ns <= 0:
            raise ConfigError("batch_bucket_ns must be positive")
        if self.admission_watermark < 0:
            raise ConfigError("admission_watermark must be >= 0")
        if self.churn_rotate_every < 0:
            raise ConfigError("churn_rotate_every must be >= 0")

    @property
    def total_clients(self) -> int:
        return sum(t.clients for t in self.tenants)

    @property
    def retry_enabled(self) -> bool:
        if self.retry is None:
            return self.admission_watermark > 0
        return self.retry


@dataclass(frozen=True)
class TenantResult:
    """One tenant's measured outcome."""

    name: str
    clients: int
    ops: int
    errors: int
    window_ns: float
    mean_ns: float
    p50_ns: float
    p99_ns: float
    p999_ns: float
    max_ns: float
    slo_ns: float
    #: Fraction of completed ops at or under the SLO.
    slo_fraction: float
    #: Ops/s that met the SLO over the tenant's measurement window.
    goodput_ops_s: float

    @property
    def throughput_kops(self) -> float:
        if self.window_ns <= 0:
            return 0.0
        return self.ops / self.window_ns * 1e6

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "clients": self.clients,
            "ops": self.ops,
            "errors": self.errors,
            "window_ns": self.window_ns,
            "throughput_kops": self.throughput_kops,
            "mean_ns": self.mean_ns,
            "p50_ns": self.p50_ns,
            "p99_ns": self.p99_ns,
            "p999_ns": self.p999_ns,
            "max_ns": self.max_ns,
            "slo_ns": self.slo_ns,
            "slo_fraction": self.slo_fraction,
            "goodput_ops_s": self.goodput_ops_s,
        }


@dataclass
class LoadReport:
    """Outcome of one :func:`run_load`."""

    store: str
    seed: int
    clients: int
    tenants: list[TenantResult]
    total_ops: int
    total_errors: int
    window_ns: float
    #: Kernel events dispatched per issued application op during the
    #: measured phase (the completion-batching headline metric).
    events_per_op: float
    sim: dict
    admission: Optional[dict]
    resilience: dict

    @property
    def throughput_kops(self) -> float:
        if self.window_ns <= 0:
            return 0.0
        return self.total_ops / self.window_ns * 1e6

    def as_dict(self) -> dict:
        return {
            "store": self.store,
            "seed": self.seed,
            "clients": self.clients,
            "total_ops": self.total_ops,
            "total_errors": self.total_errors,
            "window_ns": self.window_ns,
            "throughput_kops": self.throughput_kops,
            "events_per_op": self.events_per_op,
            "sim": self.sim,
            "admission": self.admission,
            "resilience": self.resilience,
            "tenants": [t.as_dict() for t in self.tenants],
        }


def _pool_bytes(spec: LoadSpec) -> int:
    """A pool that never exhausts (load cells compare scheduling, not
    allocators) — preload plus worst-case all-put measured phases."""
    total = 0
    for t in spec.tenants:
        w = t.workload
        obj = 64 + w.key_len + w.value_len
        total += (w.key_count + t.total_ops) * obj
    return max(32 << 20, int(total * 1.5))


def _issue(client, kind: str, key: bytes, value, size_hint: int):
    """One application op as a fresh generator (retry re-invokes it)."""
    if kind == "put":
        return client.put(key, value)
    if kind == "rmw":

        def gen() -> Generator[Event, Any, None]:
            yield from client.get(key, size_hint=size_hint)
            yield from client.put(key, value)

        return gen()
    return client.get(key, size_hint=size_hint)


def run_load(spec: LoadSpec) -> LoadReport:
    """Execute one open-loop load run in a fresh simulation."""
    env = Environment()
    rngs = RngRegistry(spec.seed)

    overrides: dict[str, Any] = {"pool_size": _pool_bytes(spec)}
    if spec.store.startswith("efactory"):
        overrides["auto_clean"] = False
    if spec.admission_watermark > 0:
        overrides["admission_watermark"] = spec.admission_watermark
    overrides.update(spec.config_overrides)

    setup = build_store(
        spec.store, env, config_overrides=overrides,
        n_clients=spec.total_clients,
    ).start()
    if spec.fault_plan is not None and not spec.fault_plan.empty:
        arm_store(setup, spec.fault_plan, rngs=rngs.fork("faults"))
    if spec.completion_batching:
        setup.fabric.enable_completion_batching(spec.batch_bucket_ns)
    if spec.retry_enabled:
        # timeout racing would add a process + timer per op at 1k-client
        # scale; faults and ERR_BUSY sheds surface as exceptions anyway.
        policy = RetryPolicy(timeout_ns=0.0)
        for i, client in enumerate(setup.clients):
            client.enable_resilience(policy, rngs.stream(f"retry{i}"))

    # Disjoint per-tenant key slices: tenant i owns global ids
    # [base_i, base_i + key_count).
    bases: list[int] = []
    acc = 0
    for t in spec.tenants:
        bases.append(acc)
        acc += t.workload.key_count
    versions = [0] * acc

    # -- preload -------------------------------------------------------------
    def preload() -> Generator[Event, Any, None]:
        client = setup.client(0)
        for t, base in zip(spec.tenants, bases):
            w = t.workload
            items = [
                (make_key(base + kid, w.key_len), make_value(base + kid, 0, w.value_len))
                for kid in range(w.key_count)
            ]
            for lo in range(0, len(items), _PRELOAD_CHUNK):
                yield from client.put_many(items[lo:lo + _PRELOAD_CHUNK])

    env.run(env.process(preload(), name="preload"))
    _settle(env, setup, spec.settle_ns)

    # Pregenerate every client's op stream (fixed rng-stream creation
    # order keeps the run deterministic).
    streams: list[list[Op]] = []
    ci = 0
    for ti, tenant in enumerate(spec.tenants):
        w = tenant.workload
        for _ in range(tenant.clients):
            ops = w.client_stream(
                rngs.stream(f"{tenant.name}.c{ci}.ops"), tenant.ops_per_client
            )
            if spec.churn_rotate_every > 0:
                hot = RotatingHotSet(
                    w.key_count, w.zipf_theta, spec.churn_rotate_every
                )
                drift = hot.sample(
                    rngs.stream(f"{tenant.name}.c{ci}.churn"), len(ops)
                )
                ops = [Op(op.kind, int(k)) for op, k in zip(ops, drift)]
            streams.append(ops)
            ci += 1

    if spec.warm_caches:

        def warm(client, w, base: int, ops: list[Op]) -> Generator[Event, Any, None]:
            seen: set[int] = set()
            for op in ops:
                if op.key_id in seen:
                    continue
                seen.add(op.key_id)
                try:
                    yield from client.get(
                        make_key(base + op.key_id, w.key_len),
                        size_hint=w.value_len,
                    )
                except (StoreError, RpcFault):
                    continue

        warm_procs = []
        ci = 0
        for ti, tenant in enumerate(spec.tenants):
            for _ in range(tenant.clients):
                warm_procs.append(
                    env.process(
                        warm(
                            setup.client(ci), tenant.workload,
                            bases[ti], streams[ci],
                        ),
                        name=f"warm{ci}",
                    )
                )
                ci += 1
        env.run(env.all_of(warm_procs))

    # -- measured phase -------------------------------------------------------
    ev0_processed = env.events_processed
    ev0_scheduled = env.events_scheduled
    start_ns = env.now
    recorders = [LatencyRecorder() for _ in spec.tenants]
    errors = [0] * len(spec.tenants)
    t_start = [float("inf")] * len(spec.tenants)
    t_end = [0.0] * len(spec.tenants)
    inj = setup.fabric.injector
    bat = setup.fabric.batcher

    def client_proc(ti: int, ci: int, client) -> Generator[Event, Any, None]:
        tenant = spec.tenants[ti]
        w = tenant.workload
        base = bases[ti]
        ops = streams[ci]
        sched = tenant.curve.arrivals(
            rngs.stream(f"{tenant.name}.c{ci}.arrivals"),
            tenant.rate_per_client_per_ns,
            len(ops),
            t0=start_ns,
        )
        t_start[ti] = min(t_start[ti], float(sched[0]))
        for op, due in zip(ops, sched.tolist()):
            if inj is not None:
                act = inj.fire("loadgen.arrival")
                if act is not None and act.kind == "client_stall":
                    due += act.delay_ns
            if env.now < due:
                # Arrival ticks ride the completion grid too: one kernel
                # event can wake every client due in the same bucket.
                if bat is None:
                    yield env.timeout_at(due)
                else:
                    yield bat.wait_until(due)
            yield from client.poll_notifications()
            gid = base + op.key_id
            key = make_key(gid, w.key_len)
            value = None
            if op.kind != "get":
                versions[gid] += 1
                value = make_value(gid, versions[gid], w.value_len)
            try:
                yield from client.call_resilient(
                    lambda k=op.kind, ky=key, v=value: _issue(
                        client, k, ky, v, w.value_len
                    ),
                    label=op.kind,
                )
            except (StoreError, RpcFault):
                errors[ti] += 1
                continue
            # Open-loop latency: from when the op was *due*, so queueing
            # behind a slow predecessor is charged to this op.
            recorders[ti].record(op.kind, env.now - due)
        t_end[ti] = max(t_end[ti], env.now)

    procs = []
    ci = 0
    for ti, tenant in enumerate(spec.tenants):
        for _ in range(tenant.clients):
            procs.append(
                env.process(
                    client_proc(ti, ci, setup.client(ci)),
                    name=f"{tenant.name}.c{ci}",
                )
            )
            ci += 1
    env.run(env.all_of(procs))
    setup.server.stop()

    # -- digest ---------------------------------------------------------------
    tenant_results: list[TenantResult] = []
    for ti, tenant in enumerate(spec.tenants):
        rec = recorders[ti]
        s = summarize(rec)
        window = max(0.0, t_end[ti] - t_start[ti])
        arr = rec.array()
        good = int((arr <= tenant.slo_ns).sum()) if arr.size else 0
        tenant_results.append(
            TenantResult(
                name=tenant.name,
                clients=tenant.clients,
                ops=s.count,
                errors=errors[ti],
                window_ns=window,
                mean_ns=s.mean_ns,
                p50_ns=s.p50_ns,
                p99_ns=s.p99_ns,
                p999_ns=s.p999_ns,
                max_ns=s.max_ns,
                slo_ns=tenant.slo_ns,
                slo_fraction=(good / s.count) if s.count else 0.0,
                goodput_ops_s=(good / window * 1e9) if window > 0 else 0.0,
            )
        )

    issued = sum(t.total_ops for t in spec.tenants)
    measured_events = env.events_processed - ev0_processed
    sim = {
        "events_scheduled": env.events_scheduled - ev0_scheduled,
        "events_processed": measured_events,
        "issued_ops": issued,
        "batching": spec.completion_batching,
    }
    if bat is not None:
        sim["batches"] = bat.batches
        sim["batched_waits"] = bat.batched_waits
    admission = setup.server.metrics().get("admission")
    res = {
        "enabled": spec.retry_enabled,
        "retries": sum(
            c.resilience.retries for c in setup.clients if c.resilience
        ),
        "gave_up": sum(
            c.resilience.gave_up for c in setup.clients if c.resilience
        ),
    }
    total_ops = sum(t.ops for t in tenant_results)
    window_all = max(0.0, max(t_end) - min(t_start))
    return LoadReport(
        store=spec.store,
        seed=spec.seed,
        clients=spec.total_clients,
        tenants=tenant_results,
        total_ops=total_ops,
        total_errors=sum(errors),
        window_ns=window_all,
        events_per_op=(measured_events / issued) if issued else 0.0,
        sim=sim,
        admission=admission,
        resilience=res,
    )


def _settle(env: Environment, setup, settle_ns: float) -> None:
    """Let asynchronous machinery (eFactory's background thread) drain."""
    if settle_ns <= 0:
        return
    deadline = env.now + settle_ns
    background = getattr(setup.server, "background", None)
    while env.now < deadline:
        env.run(until=min(deadline, env.now + 50_000.0))
        if background is None or background.backlog == 0:
            break
