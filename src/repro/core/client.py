"""The eFactory client: client-active PUT + hybrid read GET (§4.3).

GET (Figure 6): hash the key locally (step 1), READ the hash bucket
(step 2), READ the object (step 3), check the embedded durability flag
(step 4). If the object is durable, done — two one-sided READs, zero
CRC, zero server CPU. Otherwise fall back to the RPC+RDMA read: GET
request by SEND (step 5), server resolves a durable location (steps
6–8), client READs it (step 9).

During log cleaning the client obeys the server's notification and uses
only the RPC+RDMA path (§4.4) — but only for keys on the *cleaning
partition*; the other shards stay on the pure path. With
``hybrid_read=False`` every read takes the RPC+RDMA path (the
"eFactory w/o hr" ablation), counted separately from genuine fallbacks.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional

from repro.baselines.base import BaseClient, GET_REQUEST_OVERHEAD
from repro.core.config import EFactoryConfig
from repro.errors import OperationTimeout, QPError
from repro.kv.hashtable import key_fingerprint
from repro.sim.kernel import Event

__all__ = ["EFactoryClient"]


class EFactoryClient(BaseClient):
    def __init__(self, env, server, name: str) -> None:
        super().__init__(env, server, name)
        #: Counters for the factor analysis (§6.1): how often the pure
        #: RDMA path sufficed, fell back to RPC+RDMA, or never attempted
        #: the pure path at all (hybrid read disabled).
        self.pure_reads = 0
        self.fallback_reads = 0
        self.rpc_only_reads = 0
        #: Reads routed straight to RPC because resilience demoted the
        #: key's partition (graceful degradation under injected faults).
        self.degraded_reads = 0
        #: adaptive-read extension: key -> time until which the pure
        #: attempt is skipped (set after a fallback on that key).
        self._skip_until: dict[bytes, float] = {}

    # -- PUT (Figure 5) ------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> Generator[Event, Any, None]:
        yield from self.put_client_active(key, value, with_crc=True)

    # -- GET (Figure 6) ---------------------------------------------------------
    def get(
        self, key: bytes, size_hint: Optional[int] = None
    ) -> Generator[Event, Any, bytes]:
        cfg: EFactoryConfig = self.config  # type: ignore[assignment]
        if not cfg.hybrid_read:
            # The ablation never attempts the pure path: not a fallback.
            self.rpc_only_reads += 1
            return (yield from self._rpc_read(key))
        part = self.partition_of(key_fingerprint(key))
        res = self.resilience
        degraded = res is not None and res.partition_degraded(part, self.env.now)
        if degraded:
            self.degraded_reads += 1
        elif not self.partition_cleaning(part) and not self._skip(key, cfg):
            try:
                value = yield from self._try_pure_read(key, part)
            except (QPError, OperationTimeout):
                # Transport fault on the one-sided path: note it (enough
                # consecutive ones demote this partition to the RPC
                # path), heal the QP, and fall back for this read.
                if res is None:
                    raise
                res.note_pure_fault(part, self.env.now)
                if self.ep.in_error:
                    yield self.env.timeout(res.policy.reconnect_ns)
                    self.ep.reset()
                    res.note_reconnect()
                value = None
            else:
                if res is not None:
                    res.note_pure_ok(part)
            if value is not None:
                self.pure_reads += 1
                self._skip_until.pop(key, None)
                return value
            if cfg.adaptive_read:
                self._skip_until[key] = self.env.now + cfg.adaptive_ttl_ns
        self.fallback_reads += 1
        return (yield from self._rpc_read(key))

    def _skip(self, key: bytes, cfg: EFactoryConfig) -> bool:
        if not cfg.adaptive_read:
            return False
        until = self._skip_until.get(key)
        if until is None:
            return False
        if self.env.now >= until:
            del self._skip_until[key]
            return False
        return True

    def _try_pure_read(
        self, key: bytes, part: int = 0
    ) -> Generator[Event, Any, Optional[bytes]]:
        """Steps 1-4: two one-sided READs + durability-flag check."""
        _fp, slots = yield from self.read_bucket(key)
        if slots is None:
            return None  # not in home bucket: let the server probe
        cur, alt = slots
        # Prefer the working-pool slot; during a cleaning race both may
        # be valid and either copy is consistent, but `cur` is current.
        slot = cur or alt
        if slot is None:
            return None
        img = yield from self.read_object_at(slot, part)
        if img.well_formed and img.key == key and img.valid and img.durable:
            return img.value
        return None  # incomplete / not yet durable: re-read via RPC

    def _rpc_read(self, key: bytes) -> Generator[Event, Any, bytes]:
        """Steps 5-9 (retried under the resilience policy when attached)."""
        if self.resilience is not None:
            return (
                yield from self.call_resilient(
                    lambda: self._rpc_read_once(key), label="get.rpc"
                )
            )
        return (yield from self._rpc_read_once(key))

    def _rpc_read_once(self, key: bytes) -> Generator[Event, Any, bytes]:
        """Steps 5-9: RPC resolves a durable location, then one READ."""
        resp = yield from self.rpc.call(
            {"op": "get_loc", "key": key}, GET_REQUEST_OVERHEAD + len(key)
        )
        img = yield from self.read_object_loc(
            resp["pool"], resp["offset"], resp["size"], resp.get("part", 0)
        )
        self._check_found(img, key)
        return img.value

    # -- extensions -----------------------------------------------------------------
    def delete(self, key: bytes) -> Generator[Event, Any, None]:
        yield from self.rpc.call(
            {"op": "delete", "key": key}, GET_REQUEST_OVERHEAD + len(key)
        )

    def read_stats(self) -> dict[str, int]:
        return {
            "pure": self.pure_reads,
            "fallback": self.fallback_reads,
            "rpc_only": self.rpc_only_reads,
            "degraded": self.degraded_reads,
        }
