"""The eFactory client: client-active PUT + hybrid read GET (§4.3).

GET (Figure 6): hash the key locally (step 1), READ the hash bucket
(step 2), READ the object (step 3), check the embedded durability flag
(step 4). If the object is durable, done — two one-sided READs, zero
CRC, zero server CPU. Otherwise fall back to the RPC+RDMA read: GET
request by SEND (step 5), server resolves a durable location (steps
6–8), client READs it (step 9).

The *location cache* (``loc_cache_size > 0``) amortizes step 2 away: a
bounded LRU of key → (partition, slot) lets a warm GET issue one READ
straight at the object. The object image itself is the staleness
detector — an overwritten version carries a set ``nxt_ptr`` (the
allocator links it forward before the new version is even visible), a
deleted version drops FLAG_VALID, and a version migrated by log
cleaning gains FLAG_TRANS. Any of these drops the entry and retries via
the two-READ path, so a hit can never return a superseded value.

During log cleaning the client obeys the server's notification and uses
only the RPC+RDMA path (§4.4) — but only for keys on the *cleaning
partition*; the other shards stay on the pure path. The location cache
is flushed per partition on the cleaning-start notice (migration moves
objects under the cache's feet) and when resilience demotes a
partition. With ``hybrid_read=False`` every read takes the RPC+RDMA
path (the "eFactory w/o hr" ablation), counted separately from genuine
fallbacks.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional

from repro.baselines.base import BaseClient, GET_REQUEST_OVERHEAD
from repro.core.config import EFactoryConfig
from repro.errors import OperationTimeout, QPError
from repro.kv.hashtable import Slot, key_fingerprint
from repro.kv.objects import NULL_PTR, ObjectImage
from repro.sim.kernel import Event
from repro.util import LruMap

__all__ = ["EFactoryClient"]


class EFactoryClient(BaseClient):
    def __init__(self, env, server, name: str) -> None:
        super().__init__(env, server, name)
        cfg: EFactoryConfig = self.config  # type: ignore[assignment]
        #: Counters for the factor analysis (§6.1): how often the pure
        #: RDMA path sufficed, fell back to RPC+RDMA, or never attempted
        #: the pure path at all (hybrid read disabled).
        self.pure_reads = 0
        self.fallback_reads = 0
        self.rpc_only_reads = 0
        #: Reads routed straight to RPC because resilience demoted the
        #: key's partition (graceful degradation under injected faults).
        self.degraded_reads = 0
        #: Location cache: key -> (partition, Slot).  Disabled (and
        #: stateless) at the default ``loc_cache_size = 0``.
        self._loc_cache: LruMap = LruMap(cfg.loc_cache_size)
        self.cache_hits = 0
        self.cache_misses = 0
        #: Integrity-tree mode: one-READ images rejected by the checksum
        #: ledger (misdirected / replayed / rotten bytes that still
        #: parsed as current) — each falls back to the RPC path.
        self.tree_rejects = 0
        #: adaptive-read extension: key -> time until which the pure
        #: attempt is skipped (set after a fallback on that key).
        #: Bounded: LRU-evicted past ``adaptive_skip_cap`` entries, and
        #: expired entries are swept opportunistically on insert.
        self._skip_until: LruMap = LruMap(cfg.adaptive_skip_cap)

    # -- PUT (Figure 5) ------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> Generator[Event, Any, None]:
        yield from self.put_client_active(key, value, with_crc=True)

    def put_many(
        self, items: "list[tuple[bytes, bytes]]"
    ) -> Generator[Event, Any, None]:
        """Doorbell-batched PUT pipeline: one ``alloc_batch`` SEND per
        ``put_batch`` items, value WRITEs as one doorbell chain, up to
        ``put_window`` chains in flight."""
        yield from self.put_many_client_active(items, with_crc=True)

    def _note_alloc(self, key: bytes, resp: dict) -> None:
        """A fresh allocation is by construction the key's current
        location — warm the cache so the next GET goes straight there."""
        part = resp.get("part", 0)
        if not self.partition_cleaning(part):
            self._loc_cache.put(
                key,
                (part, Slot(pool=resp["pool"], size=resp["size"], offset=resp["obj_off"])),
            )

    # -- GET (Figure 6) ---------------------------------------------------------
    def get(
        self, key: bytes, size_hint: Optional[int] = None
    ) -> Generator[Event, Any, bytes]:
        cfg: EFactoryConfig = self.config  # type: ignore[assignment]
        if not cfg.hybrid_read:
            # The ablation never attempts the pure path: not a fallback.
            self.rpc_only_reads += 1
            return (yield from self._rpc_read(key))
        part = self.partition_of(key_fingerprint(key))
        res = self.resilience
        degraded = res is not None and res.partition_degraded(part, self.env.now)
        if degraded:
            self.degraded_reads += 1
            self._flush_cache_partition(part)
        elif not self.partition_cleaning(part) and not self._skip(key, cfg):
            try:
                value = yield from self._try_pure_read(key, part)
            except (QPError, OperationTimeout):
                # Transport fault on the one-sided path: note it (enough
                # consecutive ones demote this partition to the RPC
                # path), heal the QP, and fall back for this read.
                if res is None:
                    raise
                res.note_pure_fault(part, self.env.now)
                if self.ep.in_error:
                    yield self.env.timeout(res.policy.reconnect_ns)
                    self.ep.reset()
                    res.note_reconnect()
                    self._reconnected()
                value = None
            else:
                if res is not None:
                    res.note_pure_ok(part)
            if value is not None:
                self.pure_reads += 1
                self._skip_until.pop(key)
                return value
            if cfg.adaptive_read:
                self._skip_until.put(key, self.env.now + cfg.adaptive_ttl_ns)
                self._skip_until.evict_expired(
                    lambda _k, until: self.env.now >= until
                )
        self.fallback_reads += 1
        return (yield from self._rpc_read(key))

    def _skip(self, key: bytes, cfg: EFactoryConfig) -> bool:
        if not cfg.adaptive_read:
            return False
        until = self._skip_until.peek(key)
        if until is None:
            return False
        if self.env.now >= until:
            self._skip_until.pop(key)
            return False
        return True

    # -- the location cache ------------------------------------------------------
    @staticmethod
    def _img_current(img: ObjectImage, key: bytes) -> bool:
        """Is this image still the key's *current, in-place* version?
        An overwrite sets ``nxt_ptr`` on the old version, a delete
        clears FLAG_VALID, log cleaning sets FLAG_TRANS — each makes a
        cached location untrustworthy."""
        return (
            img.well_formed
            and img.key == key
            and img.valid
            and img.nxt_ptr == NULL_PTR
            and not img.transferred
        )

    def _flush_cache_partition(self, part: int) -> None:
        self._loc_cache.drop_where(lambda _k, v: v[0] == part)

    def _cleaning_started(self, part: int) -> None:
        """Migration is about to move this partition's objects: every
        cached location there is suspect."""
        self._flush_cache_partition(part)

    def _reconnected(self) -> None:
        """The QP was just re-established after a fault. If the server
        was failed over meanwhile, every cached (partition, slot) pair
        describes the *dead* node's layout — and unlike an overwrite or
        delete, the image-staleness check never runs because the READ
        itself faults. Drop everything cached."""
        cfg: EFactoryConfig = self.config  # type: ignore[assignment]
        if cfg.loc_cache_flush_on_reconnect:
            self._loc_cache.clear()

    def _try_pure_read(
        self, key: bytes, part: int = 0
    ) -> Generator[Event, Any, Optional[bytes]]:
        """Steps 1-4: two one-sided READs + durability-flag check — or a
        single READ when the location cache still has the key."""
        cached = self._loc_cache.get(key)
        if cached is not None and cached[0] == part:
            cfg: EFactoryConfig = self.config  # type: ignore[assignment]
            if cfg.integrity_tree:
                img, raw = yield from self.read_object_with_raw(cached[1], part)
            else:
                img = yield from self.read_object_at(cached[1], part)
                raw = None
            if self._img_current(img, key):
                self.cache_hits += 1
                if not img.durable:
                    # Current but not yet durable: the bucket would point
                    # at this same slot, so skip the re-probe and fall
                    # back.
                    return None
                if raw is not None and not (
                    yield from self._tree_verify(cached[1], part, raw)
                ):
                    # The image parsed as current but its bytes disagree
                    # with the checksum ledger under the pushed root —
                    # end-to-end detection on the 1-READ path. Let the
                    # server resolve (and the scrubber repair) it.
                    self.tree_rejects += 1
                    self._loc_cache.pop(key)
                    return None
                return img.value
            # Overwritten / deleted / migrated behind our back.
            self._loc_cache.pop(key)
        self.cache_misses += 1
        _fp, slots = yield from self.read_bucket(key)
        if slots is None:
            return None  # not in home bucket: let the server probe
        cur, alt = slots
        # Prefer the working-pool slot; during a cleaning race both may
        # be valid and either copy is consistent, but `cur` is current.
        slot = cur or alt
        if slot is None:
            return None
        img = yield from self.read_object_at(slot, part)
        if img.well_formed and img.key == key and img.valid and img.durable:
            if img.nxt_ptr == NULL_PTR and not img.transferred:
                self._loc_cache.put(key, (part, slot))
            return img.value
        return None  # incomplete / not yet durable: re-read via RPC

    def _tree_verify(
        self, slot: Slot, part: int, raw: bytes
    ) -> Generator[Event, Any, bool]:
        """End-to-end check of a 1-READ image against the integrity
        tree. In the real system the client holds the signed Merkle root
        (pushed with durability notifications) plus the ledger slice for
        its cached slots and verifies locally; the sim shortcut consults
        the server-side ledger directly and charges the client-side CRC
        cost, which is the same number of hashed bytes."""
        integ = self.server.partitions[part].integrity
        if integ is None:
            return True
        yield self.env.timeout(self.config.crc_cost.cost_ns(len(raw)))
        return integ.verify_image(slot.pool, slot.offset, raw)

    def _rpc_read(self, key: bytes) -> Generator[Event, Any, bytes]:
        """Steps 5-9 (retried under the resilience policy when attached)."""
        if self.resilience is not None:
            return (
                yield from self.call_resilient(
                    lambda: self._rpc_read_once(key), label="get.rpc"
                )
            )
        return (yield from self._rpc_read_once(key))

    def _rpc_read_once(self, key: bytes) -> Generator[Event, Any, bytes]:
        """Steps 5-9: RPC resolves a durable location, then one READ."""
        resp = yield from self.rpc.call(
            {"op": "get_loc", "key": key}, GET_REQUEST_OVERHEAD + len(key)
        )
        img = yield from self.read_object_loc(
            resp["pool"], resp["offset"], resp["size"], resp.get("part", 0)
        )
        self._check_found(img, key)
        return img.value

    # -- extensions -----------------------------------------------------------------
    def delete(self, key: bytes) -> Generator[Event, Any, None]:
        self._loc_cache.pop(key)
        yield from self.rpc.call(
            {"op": "delete", "key": key}, GET_REQUEST_OVERHEAD + len(key)
        )

    def read_stats(self) -> dict[str, int]:
        return {
            "pure": self.pure_reads,
            "fallback": self.fallback_reads,
            "rpc_only": self.rpc_only_reads,
            "degraded": self.degraded_reads,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "tree_rejects": self.tree_rejects,
        }
