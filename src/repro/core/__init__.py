"""eFactory: the paper's primary contribution.

Client-active PUT with asynchronous durability, background verification
and persisting, hybrid reads, two-stage log cleaning, and multi-version
recovery.
"""

from repro.core.background import BackgroundVerifier
from repro.core.client import EFactoryClient
from repro.core.config import EFactoryConfig, efactory_config
from repro.core.log_cleaning import CleaningStats, LogCleaner
from repro.core.recovery import (
    RecoveryReport,
    recover_bucketized,
    recover_erda,
    scan_pool,
)
from repro.core.server import EFactoryServer

__all__ = [
    "BackgroundVerifier",
    "CleaningStats",
    "EFactoryClient",
    "EFactoryConfig",
    "EFactoryServer",
    "LogCleaner",
    "RecoveryReport",
    "efactory_config",
    "recover_bucketized",
    "recover_erda",
    "scan_pool",
]
