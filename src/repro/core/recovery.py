"""Post-crash recovery.

After a power failure the visible image equals the durable image; the
server's DRAM state (allocator heads, background queue, pending allocs)
is gone. Recovery rebuilds a consistent store:

1. **Pool scan** — walk each log pool from the start, parsing headers at
   alignment boundaries, to re-derive the allocation journal and the log
   head (allocation is monotone, so the first torn/absent header is the
   end of the log).
2. **Index repair** — for every hash entry, walk the version list from
   the working slot and keep the first version that is *provably*
   intact: either its durability flag is set on media (the flag is only
   ever flushed after the value, so flag ⇒ value durable), or its CRC
   verifies against the on-media value. Torn heads roll back to older
   versions — the multi-version property the paper's design exists to
   provide (§4.1). Keys with no intact version are cleared (they were
   never durably acknowledged under eFactory's guarantees).

Partitions recover *independently*: each owns disjoint pools and a
disjoint table segment, so a partitioned server replays its shards as
parallel recovery processes and the wall-clock cost is the slowest
shard, not the sum — the recovery-time payoff of sharding. With one
partition the pass below is executed inline, unchanged.

Erda's recovery (:func:`recover_erda`) is the two-offset equivalent and
inherits Erda's limitations: entries were never flushed, so index
updates survive only by natural eviction, and rollback depth is two.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.baselines.base import BaseServer, ObjectLocation, Partition
from repro.crc.crc32 import crc32_fast
from repro.errors import (
    CorruptObjectError,
    MemoryAccessError,
    RecoveryError,
)
from repro.kv.hopscotch import HopscotchTable, TwoVersions
from repro.kv.logpool import Allocation, LogPool
from repro.kv.objects import (
    FLAG_DURABLE,
    FLAG_VALID,
    HEADER_SIZE,
    object_size,
    parse_header,
    parse_object,
    unpack_ptr,
)
from repro.sim.kernel import Event

__all__ = [
    "RecoveryReport",
    "recover_bucketized",
    "recover_erda",
    "recover_partition",
    "scan_pool",
    "seed_index_from_pools",
]


@dataclass
class RecoveryReport:
    """Outcome of one recovery pass."""

    keys_recovered: int = 0      # latest version was intact
    keys_rolled_back: int = 0    # an older version won
    keys_lost: int = 0           # no intact version existed
    torn_objects: int = 0        # versions rejected by CRC/parse
    objects_scanned: int = 0
    pool_heads: list[int] = field(default_factory=list)
    duration_ns: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "keys_recovered": self.keys_recovered,
            "keys_rolled_back": self.keys_rolled_back,
            "keys_lost": self.keys_lost,
            "torn_objects": self.torn_objects,
            "objects_scanned": self.objects_scanned,
            "pool_heads": list(self.pool_heads),
            "duration_ns": self.duration_ns,
        }

    def merge(self, other: "RecoveryReport") -> None:
        """Fold another shard's report into this one (duration excluded:
        parallel shards overlap, the caller takes wall-clock time)."""
        self.keys_recovered += other.keys_recovered
        self.keys_rolled_back += other.keys_rolled_back
        self.keys_lost += other.keys_lost
        self.torn_objects += other.torn_objects
        self.objects_scanned += other.objects_scanned
        self.pool_heads.extend(other.pool_heads)


def scan_pool(pool: LogPool) -> list[Allocation]:
    """Re-derive the allocation journal from on-media headers."""
    allocations: list[Allocation] = []
    offset = 0
    while offset + HEADER_SIZE <= pool.size:
        hdr = parse_header(pool.read(offset, HEADER_SIZE))
        if hdr is None:
            break  # end of log (or torn final header — same thing)
        size = object_size(hdr.klen, hdr.vlen)
        if offset + size > pool.size:
            break
        allocations.append(Allocation(offset, size))
        offset += (size + pool.align - 1) & ~(pool.align - 1)
    return allocations


def recover_bucketized(
    server: BaseServer,
) -> Generator[Event, Any, RecoveryReport]:
    """Recovery for the bucketized-index stores (eFactory, CA, SAW, IMM,
    RPC, Forca). A timed generator: run it in a simulated process.

    Single partition: the scan-and-repair pass runs inline. Multiple
    partitions: one recovery process per shard, all concurrent; the
    merged report's ``duration_ns`` is the slowest shard's wall clock.
    """
    env = server.env
    report = RecoveryReport()
    start = env.now

    if len(server.partitions) == 1:
        part_report = yield from _recover_partition(server, server.partitions[0])
        report.merge(part_report)
    else:
        procs = [
            env.process(
                _recover_partition(server, part), name=f"recover-p{part.part_id}"
            )
            for part in server.partitions
        ]
        yield env.all_of(procs)
        for proc in procs:
            report.merge(proc.value)

    report.duration_ns = env.now - start
    return report


def _recover_partition(
    server: BaseServer, part: Partition
) -> Generator[Event, Any, RecoveryReport]:
    """Scan one partition's pools and repair its table segment."""
    env = server.env
    t = server.config.nvm_timing
    report = RecoveryReport()

    # 1. pool scans
    for pool in part.pools:
        allocations = scan_pool(pool)
        yield env.timeout(
            t.read_cost(HEADER_SIZE) * max(1, len(allocations) + 1)
        )
        pool.allocations = allocations
        pool.garbage_bytes = 0  # volatile trigger state; re-accumulates
        if allocations:
            last = allocations[-1]
            pool.head = (
                (last.offset + last.size + pool.align - 1) & ~(pool.align - 1)
            )
        else:
            pool.head = 0
        report.pool_heads.append(pool.head)
        report.objects_scanned += len(allocations)

    # 2. index repair
    for entry_off, entry in part.table.iter_entries():
        yield from _recovery_step(part)
        yield env.timeout(t.read_cost(32))
        cur = part.table.read_cur(entry_off)
        alt = part.table.read_alt(entry_off)

        winner, rolled, torn = yield from _resolve_chain(part, entry.fp, cur)
        report.torn_objects += torn
        if winner is None and alt is not None:
            alt_loc = ObjectLocation(pool=alt.pool, offset=alt.offset, size=alt.size)
            ok = yield from _verify_version(part, entry.fp, alt_loc)
            if ok:
                winner, rolled = alt_loc, True

        if winner is None:
            if cur is not None or alt is not None:
                report.keys_lost += 1
            part.table.clear_cur(entry_off)
            part.table.clear_alt(entry_off)
            part.table.persist_entry(entry_off)
            continue

        img = part.read_object(winner)
        part.set_object_flags(winner, img.flags | FLAG_DURABLE)
        yield from part.persist_object(winner)
        part.table.set_cur(entry_off, winner.slot)
        part.table.clear_alt(entry_off)
        part.table.persist_entry(entry_off)
        if rolled:
            report.keys_rolled_back += 1
        else:
            report.keys_recovered += 1

    # 3. integrity rebuild: recompute parity + ledger + root from the
    # recovered pool contents and rewrite the full NVM regions. The
    # regions are never *read* during recovery (a crash may have torn
    # them), so this keeps repeated recoveries byte-identical.
    if part.integrity is not None:
        yield from part.integrity.rebuild()

    return report


def recover_partition(
    server: BaseServer, part: Partition
) -> Generator[Event, Any, RecoveryReport]:
    """Scan-and-repair a single partition (timed generator).

    The same pass :func:`recover_bucketized` runs per shard, exposed so
    cluster failover can promote one orphaned partition on an otherwise
    live node without replaying its other shards.
    """
    report = yield from _recover_partition(server, part)
    return report


def seed_index_from_pools(
    server: BaseServer, part: Partition
) -> Generator[Event, Any, int]:
    """Rebuild a partition's table segment from its pool contents alone.

    A backup replica receives shipped log records but no index updates:
    its table segment is empty, so the standard repair pass — which
    starts from whatever working slots survived — would find nothing to
    roll. This pass scans the pools (re-deriving allocation journals and
    heads, like recovery pass 1), groups records by key fingerprint, and
    seeds each entry's working slot with the newest parseable version,
    ranked by (header timestamp, scan order). :func:`recover_partition`
    afterwards applies the usual intact-version rules: durability flag
    or CRC, with pre_ptr rollback — shipped offsets are identical to the
    primary's, so the chains resolve exactly as they would have there.

    Returns the number of entries seeded.
    """
    from repro.kv.hashtable import key_fingerprint

    env = server.env
    cfg = server.config
    t = cfg.nvm_timing
    best: dict[int, tuple[tuple[int, int], ObjectLocation]] = {}
    seq = 0
    for pool_id, pool in enumerate(part.pools):
        allocations = scan_pool(pool)
        yield env.timeout(t.read_cost(HEADER_SIZE) * max(1, len(allocations) + 1))
        pool.allocations = allocations
        pool.garbage_bytes = 0
        if allocations:
            last = allocations[-1]
            pool.head = (
                (last.offset + last.size + pool.align - 1) & ~(pool.align - 1)
            )
        else:
            pool.head = 0
        for alloc in allocations:
            hdr = parse_header(pool.read(alloc.offset, HEADER_SIZE))
            if hdr is None:
                continue
            yield env.timeout(t.read_cost(HEADER_SIZE + hdr.klen))
            key = bytes(pool.read(alloc.offset + HEADER_SIZE, hdr.klen))
            fp = key_fingerprint(key)
            rank = (hdr.ts, seq)
            seq += 1
            loc = ObjectLocation(pool=pool_id, offset=alloc.offset, size=alloc.size)
            prev = best.get(fp)
            if prev is None or rank > prev[0]:
                best[fp] = (rank, loc)
    for fp, (_rank, loc) in best.items():
        yield env.timeout(cfg.index_ns)
        entry_off = part.table.find_or_create(fp)
        part.table.set_cur(entry_off, loc.slot)
    return len(best)


def _recovery_step(part: Partition) -> Generator[Event, Any, None]:
    """Injection site fired once per index-repair step (site
    ``recovery.step``): the crash matrix pulls the plug here to prove
    recovery survives a crash *during* recovery. Free when unarmed."""
    inj = part.device.injector
    if inj is not None:
        act = inj.fire("recovery.step", partition=part.part_id)
        if act is not None and act.kind == "pause":
            yield part.env.timeout(act.delay_ns)
    return
    yield  # pragma: no cover - keeps this a generator when unarmed


def _resolve_chain(
    part: Partition, fp: int, cur
) -> Generator[Event, Any, tuple[Optional[ObjectLocation], bool, int]]:
    """Walk a version chain; return (winner, rolled_back, torn_count).

    Each pre_ptr hop costs two header reads, charged like the scan loop
    (a corrupt chain is walked at media speed, not for free). Chains are
    also cycle-checked: a torn ``pre_ptr`` pointing back into the chain
    (or at itself) would otherwise loop forever — such a chain has no
    provably-intact tail and resolves to "no winner".
    """
    t = part.config.nvm_timing
    env = part.env
    torn = 0
    rolled = False
    visited: set[tuple[int, int]] = set()
    loc = (
        ObjectLocation(pool=cur.pool, offset=cur.offset, size=cur.size)
        if cur is not None
        else None
    )
    while loc is not None:
        if (loc.pool, loc.offset) in visited:
            return None, rolled, torn  # corrupt self-referencing chain
        visited.add((loc.pool, loc.offset))
        ok = yield from _verify_version(part, fp, loc)
        if ok:
            return loc, rolled, torn
        torn += 1
        rolled = True
        # follow the on-media pre_ptr (one header read per end); a
        # corrupted pointer may fall outside the pool — same as torn
        yield env.timeout(2 * t.read_cost(HEADER_SIZE))
        try:
            hdr = parse_header(part.pools[loc.pool].read(loc.offset, HEADER_SIZE))
            prev = unpack_ptr(hdr.pre_ptr) if hdr is not None else None
            if prev is None:
                return None, rolled, torn
            pool_id, offset = prev
            prev_hdr = parse_header(part.pools[pool_id].read(offset, HEADER_SIZE))
        except MemoryAccessError:
            return None, rolled, torn
        if prev_hdr is None:
            return None, rolled, torn
        loc = ObjectLocation(
            pool=pool_id,
            offset=offset,
            size=object_size(prev_hdr.klen, prev_hdr.vlen),
        )
    return None, rolled, torn


def _verify_version(
    part: Partition, fp: int, loc: ObjectLocation
) -> Generator[Event, Any, bool]:
    """Is the version at ``loc`` provably intact on media?"""
    from repro.kv.hashtable import key_fingerprint

    env = part.env
    cfg = part.config
    t = cfg.nvm_timing
    yield env.timeout(t.read_cost(loc.size))
    try:
        img = part.read_object(loc)
    except (MemoryAccessError, CorruptObjectError):
        # out-of-pool pointer or short/garbled fragment: not intact
        return False
    if not img.well_formed or not (img.flags & FLAG_VALID):
        return False
    if key_fingerprint(img.key) != fp:
        return False
    if img.durable:
        return True  # flag flushed only after the value: trustworthy
    yield env.timeout(cfg.crc_cost.cost_ns(img.vlen))
    return part.object_value_ok(img)


def recover_erda(server) -> Generator[Event, Any, RecoveryReport]:
    """Erda recovery: check off1 then off2 of whatever entry state
    survived natural eviction."""
    env = server.env
    t = server.config.nvm_timing
    table: HopscotchTable = server.table
    if not isinstance(table, HopscotchTable):
        raise RecoveryError("recover_erda needs a hopscotch-indexed server")
    report = RecoveryReport()
    start = env.now

    pool = server.pools[0]
    pool.allocations = scan_pool(pool)
    report.objects_scanned = len(pool.allocations)
    if pool.allocations:
        last = pool.allocations[-1]
        pool.head = (last.offset + last.size + pool.align - 1) & ~(pool.align - 1)
    report.pool_heads.append(pool.head)
    yield env.timeout(t.read_cost(HEADER_SIZE) * max(1, report.objects_scanned))

    inj = server.device.injector
    for idx in range(table.n_buckets):
        entry = table._read(idx)
        if entry.fp == 0:
            continue
        if inj is not None:
            act = inj.fire("recovery.step")
            if act is not None and act.kind == "pause":
                yield env.timeout(act.delay_ns)
        yield env.timeout(t.read_cost(16))
        region = TwoVersions.unpack(entry.atomic)
        winner: Optional[int] = None
        rolled = False
        for attempt, off in enumerate((region.off1, region.off2)):
            if off is None:
                continue
            hdr = parse_header(pool.read(off, HEADER_SIZE))
            if hdr is None:
                report.torn_objects += 1
                rolled = True
                continue
            size = object_size(hdr.klen, hdr.vlen)
            yield env.timeout(
                t.read_cost(size) + server.config.crc_cost.cost_ns(hdr.vlen)
            )
            img = parse_object(pool.read(off, size))
            if (
                img.well_formed
                and img.vlen == len(img.value)
                and crc32_fast(img.value) == img.crc
            ):
                winner = off
                rolled = rolled or attempt > 0
                break
            report.torn_objects += 1
            rolled = True
        if winner is None:
            table._write_atomic(idx, 0)
            report.keys_lost += 1
        else:
            table._write_atomic(
                idx, TwoVersions(off1=winner, off2=None, tag=region.tag).pack()
            )
            if rolled:
                report.keys_rolled_back += 1
            else:
                report.keys_recovered += 1

    report.duration_ns = env.now - start
    return report
