"""Background verification and durability (paper §4.3.2).

A server-side thread walks newly allocated objects in log order: for
each one it recomputes the CRC over the value, compares against the CRC
recorded at allocation, and on a match persists the object and sets the
durability flag. A mismatch means the client's one-sided WRITE has not
(fully) arrived: the object is revisited later, and once the configured
timeout elapses it is marked invalid (space reclaimed by log cleaning).

The thread runs on its *own* core — "the background thread and the
request processing thread run independently, i.e., there is no need for
inter-thread synchronization" — so none of this work contends with the
request CPU. Coordination with the GET handler is exactly the paper's:
the durability flag lets each side skip objects the other already
persisted.

With a partitioned server every partition runs its own verifier over
its own log pools (the same range-sharding Pangolin applies to its
checksum workers); :class:`VerifierGroup` aggregates them behind the
single-verifier interface.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from typing import Any, Optional, TYPE_CHECKING

from repro.baselines.base import ObjectLocation, Partition
from repro.kv.objects import FLAG_VALID
from repro.sim.kernel import Event, Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server import EFactoryServer

__all__ = ["BackgroundVerifier", "VerifierGroup"]


class BackgroundVerifier:
    """One partition's background verify-and-persist thread."""

    def __init__(
        self, server: "EFactoryServer", partition: Optional[Partition] = None
    ) -> None:
        self.server = server
        self.part = partition if partition is not None else server.partitions[0]
        self.env = server.env
        #: Freshly allocated objects in log order.
        self.queue: deque[ObjectLocation] = deque()
        #: Objects whose WRITE had not landed yet: (due_time, loc).
        self.retry: deque[tuple[float, ObjectLocation]] = deque()
        self._proc: Process | None = None
        # statistics
        self.verified = 0
        self.persisted = 0
        self.invalidated = 0
        self.skipped = 0
        self.requeued = 0

    # -- feeding ------------------------------------------------------------
    def enqueue(self, loc: ObjectLocation) -> None:
        self.queue.append(loc)

    @property
    def backlog(self) -> int:
        return len(self.queue) + len(self.retry)

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> Process:
        name = (
            "bg-verifier"
            if self.server.num_partitions == 1
            else f"bg-verifier-p{self.part.part_id}"
        )
        self._proc = self.env.process(self._loop(), name=name)
        return self._proc

    def stop(self) -> None:
        if (
            self._proc is not None
            and self._proc.is_alive
            and self._proc is not self.env.active_process
        ):
            self._proc.interrupt("stop")

    # -- the thread ------------------------------------------------------------
    def _loop(self) -> Generator[Event, Any, None]:
        cfg = self.server.config
        try:
            while True:
                inj = self.server.fabric.injector
                if inj is not None:
                    act = inj.fire("bg.verifier", partition=self.part.part_id)
                    if act is not None and act.kind == "pause":
                        yield self.env.timeout(act.delay_ns)
                loc = self._next_due()
                if loc is None:
                    yield self.env.timeout(cfg.bg_idle_poll_ns)
                    continue
                yield from self._process_one(loc)
        except Interrupt:
            return

    def _next_due(self) -> ObjectLocation | None:
        if self.queue:
            return self.queue.popleft()
        if self.retry and self.retry[0][0] <= self.env.now:
            return self.retry.popleft()[1]
        return None

    def _process_one(self, loc: ObjectLocation) -> Generator[Event, Any, None]:
        part = self.part
        cfg = self.server.config
        yield self.env.timeout(cfg.peek_ns)
        img = part.read_object(loc)

        if not img.well_formed:
            # Header unreadable (should not happen: metadata was persisted
            # at allocation) — treat as pending until timeout.
            yield from self._retry_or_invalidate(loc, None)
            return
        if img.durable or not img.valid:
            # The GET handler beat us to it, or a timeout invalidated it.
            self.skipped += 1
            return

        # Integrity verification: CRC over the value.
        yield self.env.timeout(cfg.crc_cost.cost_ns(img.vlen))
        self.verified += 1
        if part.object_value_ok(img):
            yield from part.persist_object(loc)
            part.mark_durable(loc, img)
            self.persisted += 1
            return
        yield from self._retry_or_invalidate(loc, img)

    def _retry_or_invalidate(
        self, loc: ObjectLocation, img
    ) -> Generator[Event, Any, None]:
        cfg = self.server.config
        ts = img.ts if img is not None and img.well_formed else 0
        if self.env.now - ts > cfg.verify_timeout_ns:
            # The write never completed: mark invalid (§4.3.2); log
            # cleaning reclaims the space.
            if img is not None:
                self.part.set_object_flags(loc, img.flags & ~FLAG_VALID)
                self.server.device.flush(
                    self.part.pools[loc.pool].abs_addr(loc.offset), 8
                )
            self.invalidated += 1
            yield self.env.timeout(cfg.nvm_timing.store_ns)
            return
        self.requeued += 1
        self.retry.append((self.env.now + cfg.bg_retry_delay_ns, loc))
        yield self.env.timeout(0)

    def stats(self) -> dict[str, int]:
        return {
            "verified": self.verified,
            "persisted": self.persisted,
            "invalidated": self.invalidated,
            "skipped": self.skipped,
            "requeued": self.requeued,
            "backlog": self.backlog,
        }


class VerifierGroup:
    """The partitioned server's verifiers behind the monolith interface."""

    def __init__(self, verifiers: list[BackgroundVerifier]) -> None:
        self.verifiers = list(verifiers)

    @property
    def backlog(self) -> int:
        return sum(v.backlog for v in self.verifiers)

    def start(self) -> None:
        for v in self.verifiers:
            v.start()

    def stop(self) -> None:
        for v in self.verifiers:
            v.stop()

    def stats(self) -> dict[str, int]:
        out = {
            "verified": 0,
            "persisted": 0,
            "invalidated": 0,
            "skipped": 0,
            "requeued": 0,
            "backlog": 0,
        }
        for v in self.verifiers:
            for key, value in v.stats().items():
                out[key] += value
        return out
