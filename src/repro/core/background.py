"""Background verification and durability (paper §4.3.2).

A server-side thread walks newly allocated objects in log order: for
each one it recomputes the CRC over the value, compares against the CRC
recorded at allocation, and on a match persists the object and sets the
durability flag. A mismatch means the client's one-sided WRITE has not
(fully) arrived: the object is revisited later, and once the configured
timeout elapses it is marked invalid (space reclaimed by log cleaning).

The thread runs on its *own* core — "the background thread and the
request processing thread run independently, i.e., there is no need for
inter-thread synchronization" — so none of this work contends with the
request CPU. Coordination with the GET handler is exactly the paper's:
the durability flag lets each side skip objects the other already
persisted.

With a partitioned server every partition runs its own verifier over
its own log pools (the same range-sharding Pangolin applies to its
checksum workers); :class:`VerifierGroup` aggregates them behind the
single-verifier interface.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from typing import Any, Optional, TYPE_CHECKING

from repro.baselines.base import ObjectLocation, Partition
from repro.kv.objects import FLAG_VALID
from repro.sim.kernel import Event, Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server import EFactoryServer

__all__ = ["BackgroundVerifier", "VerifierGroup"]


class BackgroundVerifier:
    """One partition's background verify-and-persist thread."""

    def __init__(
        self, server: "EFactoryServer", partition: Optional[Partition] = None
    ) -> None:
        self.server = server
        self.part = partition if partition is not None else server.partitions[0]
        self.env = server.env
        #: Freshly allocated objects in log order.
        self.queue: deque[ObjectLocation] = deque()
        #: Objects whose WRITE had not landed yet: (due_time, loc).
        self.retry: deque[tuple[float, ObjectLocation]] = deque()
        self._proc: Process | None = None
        #: Armed while the batched loop sleeps; ``enqueue`` fires it so
        #: the thread wakes on arrival instead of on the next poll tick.
        self._wakeup: Event | None = None
        # statistics
        self.verified = 0
        self.persisted = 0
        self.invalidated = 0
        self.skipped = 0
        self.requeued = 0
        self.batches = 0
        self.coalesced_flushes = 0
        self.wakeups = 0

    # -- feeding ------------------------------------------------------------
    def enqueue(self, loc: ObjectLocation) -> None:
        self.queue.append(loc)
        ev = self._wakeup
        if ev is not None and not ev.triggered:
            ev.succeed()

    @property
    def backlog(self) -> int:
        return len(self.queue) + len(self.retry)

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> Process:
        name = (
            "bg-verifier"
            if self.server.num_partitions == 1
            else f"bg-verifier-p{self.part.part_id}"
        )
        self._proc = self.env.process(self._loop(), name=name)
        return self._proc

    def stop(self) -> None:
        if (
            self._proc is not None
            and self._proc.is_alive
            and self._proc is not self.env.active_process
        ):
            self._proc.interrupt("stop")

    # -- the thread ------------------------------------------------------------
    def _loop(self) -> Generator[Event, Any, None]:
        cfg = self.server.config
        if cfg.bg_batch > 1:
            yield from self._loop_batched(cfg)
            return
        # Legacy single-object poll loop (bg_batch == 1): kept verbatim
        # so the default configuration's event sequence is bit-for-bit
        # the seed's.
        try:
            while True:
                inj = self.server.fabric.injector
                if inj is not None:
                    act = inj.fire("bg.verifier", partition=self.part.part_id)
                    if act is not None and act.kind == "pause":
                        yield self.env.timeout(act.delay_ns)
                loc = self._next_due()
                if loc is None:
                    yield self.env.timeout(cfg.bg_idle_poll_ns)
                    continue
                yield from self._process_one(loc)
        except Interrupt:
            return

    def _loop_batched(self, cfg) -> Generator[Event, Any, None]:
        """Amortized thread (``bg_batch > 1``): event-driven wakeup,
        then drain up to ``bg_batch`` due objects per pass — back-to-back
        CRCs and one coalesced flush per run of adjacent objects."""
        try:
            while True:
                inj = self.server.fabric.injector
                if inj is not None:
                    act = inj.fire("bg.verifier", partition=self.part.part_id)
                    if act is not None and act.kind == "pause":
                        yield self.env.timeout(act.delay_ns)
                batch: list[ObjectLocation] = []
                while len(batch) < cfg.bg_batch:
                    loc = self._next_due()
                    if loc is None:
                        break
                    batch.append(loc)
                if not batch:
                    yield from self._idle_wait(cfg)
                    # Linger one poll period before draining: lets the
                    # in-flight doorbell WRITEs land (the alloc is
                    # enqueued before the value arrives), lets a
                    # pipelined burst accumulate into one batch, and
                    # gathers near-simultaneous retries into one pass
                    # with adjacent flush runs.
                    yield self.env.timeout(cfg.bg_idle_poll_ns)
                    continue
                self.batches += 1
                yield from self._process_batch(batch)
        except Interrupt:
            return

    def _idle_wait(self, cfg) -> Generator[Event, Any, None]:
        """Sleep until new work arrives (``enqueue`` fires the armed
        event) or the earliest retry comes due — no fixed-period poll."""
        ev = self.env.event()
        self._wakeup = ev
        try:
            if self.retry:
                delay = max(0.0, self.retry[0][0] - self.env.now)
                yield self.env.any_of([ev, self.env.timeout(delay)])
            else:
                yield ev
            if ev.triggered:
                self.wakeups += 1
        finally:
            self._wakeup = None

    def _process_batch(
        self, batch: "list[ObjectLocation]"
    ) -> Generator[Event, Any, None]:
        """Verify a drained batch, then persist with coalesced flushes.

        CRC passes run back-to-back (the peek and checksum costs are
        still charged per object — batching removes the *poll* gaps and
        the per-object flush fences, not the work). All objects that
        verified are then flushed in runs: adjacent log allocations are
        contiguous, so one fence covers the whole run."""
        part = self.part
        cfg = self.server.config
        ok: list[tuple[ObjectLocation, Any]] = []
        raws: dict[ObjectLocation, bytes] = {}
        for loc in batch:
            yield self.env.timeout(cfg.peek_ns)
            img = part.read_object(loc)
            if not img.well_formed:
                yield from self._retry_or_invalidate(loc, None)
                continue
            if img.durable or not img.valid:
                self.skipped += 1
                continue
            yield self.env.timeout(cfg.crc_cost.cost_ns(img.vlen))
            self.verified += 1
            if part.object_value_ok(img):
                if part.integrity is not None:
                    # Snapshot the verified pre-persist bytes: if the
                    # settling persist itself corrupts the media, these
                    # are what parity must cover so the scrubber can
                    # reconstruct the good image.
                    raws[loc] = bytes(
                        part.pools[loc.pool].read(loc.offset, loc.size)
                    )
                ok.append((loc, img))
            else:
                yield from self._retry_or_invalidate(loc, img)
        if not ok:
            return
        # Coalesced flush: merge adjacent (pool, offset..offset+size)
        # ranges into single persist calls.
        by_pool: dict[int, list[tuple[ObjectLocation, Any]]] = {}
        for loc, img in ok:
            by_pool.setdefault(loc.pool, []).append((loc, img))
        for pool_id, members in by_pool.items():
            pool = part.pools[pool_id]
            mask = pool.align - 1

            def alloc_end(loc: ObjectLocation) -> int:
                # The bump allocator rounds every object to the pool's
                # alignment; the next adjacent object starts there.
                return loc.offset + ((loc.size + mask) & ~mask)

            members.sort(key=lambda m: m[0].offset)
            runs: list[list[tuple[ObjectLocation, Any]]] = [[members[0]]]
            for m in members[1:]:
                if m[0].offset == alloc_end(runs[-1][-1][0]):
                    runs[-1].append(m)
                else:
                    runs.append([m])
            for run in runs:
                start = run[0][0].offset
                length = run[-1][0].offset + run[-1][0].size - start
                yield from self.server.device.persist(
                    pool.abs_addr(start), length
                )
                if len(run) > 1:
                    self.coalesced_flushes += 1
                for loc, img in run:
                    part.mark_durable(loc, img)
                    self.persisted += 1
        if part.integrity is not None:
            # Fold the freshly settled objects into parity + ledger and
            # flush the integrity metadata with this same batch.
            yield from part.integrity.settle_batch(
                [(loc, raws.get(loc)) for loc, _img in ok]
            )

    def _next_due(self) -> ObjectLocation | None:
        if self.queue:
            return self.queue.popleft()
        if self.retry and self.retry[0][0] <= self.env.now:
            return self.retry.popleft()[1]
        return None

    def _process_one(self, loc: ObjectLocation) -> Generator[Event, Any, None]:
        part = self.part
        cfg = self.server.config
        yield self.env.timeout(cfg.peek_ns)
        img = part.read_object(loc)

        if not img.well_formed:
            # Header unreadable (should not happen: metadata was persisted
            # at allocation) — treat as pending until timeout.
            yield from self._retry_or_invalidate(loc, None)
            return
        if img.durable or not img.valid:
            # The GET handler beat us to it, or a timeout invalidated it.
            self.skipped += 1
            return

        # Integrity verification: CRC over the value.
        yield self.env.timeout(cfg.crc_cost.cost_ns(img.vlen))
        self.verified += 1
        if part.object_value_ok(img):
            raw = (
                bytes(part.pools[loc.pool].read(loc.offset, loc.size))
                if part.integrity is not None
                else None
            )
            yield from part.persist_object(loc)
            part.mark_durable(loc, img)
            self.persisted += 1
            if part.integrity is not None:
                yield from part.integrity.settle_batch([(loc, raw)])
            return
        yield from self._retry_or_invalidate(loc, img)

    def _retry_or_invalidate(
        self, loc: ObjectLocation, img
    ) -> Generator[Event, Any, None]:
        cfg = self.server.config
        ts = img.ts if img is not None and img.well_formed else 0
        if self.env.now - ts > cfg.verify_timeout_ns:
            # The write never completed: mark invalid (§4.3.2); log
            # cleaning reclaims the space.
            if img is not None:
                self.part.set_object_flags(loc, img.flags & ~FLAG_VALID)
                self.server.device.flush(
                    self.part.pools[loc.pool].abs_addr(loc.offset), 8
                )
            self.invalidated += 1
            yield self.env.timeout(cfg.nvm_timing.store_ns)
            return
        self.requeued += 1
        self.retry.append((self.env.now + cfg.bg_retry_delay_ns, loc))
        yield self.env.timeout(0)

    def stats(self) -> dict[str, int]:
        return {
            "verified": self.verified,
            "persisted": self.persisted,
            "invalidated": self.invalidated,
            "skipped": self.skipped,
            "requeued": self.requeued,
            "backlog": self.backlog,
            "batches": self.batches,
            "coalesced_flushes": self.coalesced_flushes,
            "wakeups": self.wakeups,
        }


class VerifierGroup:
    """The partitioned server's verifiers behind the monolith interface."""

    def __init__(self, verifiers: list[BackgroundVerifier]) -> None:
        self.verifiers = list(verifiers)

    @property
    def backlog(self) -> int:
        return sum(v.backlog for v in self.verifiers)

    def start(self) -> None:
        for v in self.verifiers:
            v.start()

    def stop(self) -> None:
        for v in self.verifiers:
            v.stop()

    def stats(self) -> dict[str, int]:
        out = {
            "verified": 0,
            "persisted": 0,
            "invalidated": 0,
            "skipped": 0,
            "requeued": 0,
            "backlog": 0,
            "batches": 0,
            "coalesced_flushes": 0,
            "wakeups": 0,
        }
        for v in self.verifiers:
            for key, value in v.stats().items():
                out[key] += value
        return out
