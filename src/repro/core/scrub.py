"""Online media scrubbing + self-healing repair (beyond the paper).

eFactory's selective durability guarantee trusts the durability flag:
once the background verifier has CRC-checked and persisted an object,
every later GET serves it *without* re-verifying (§4.3.3 — that skip is
the point of the scheme). The flag is sound against crashes — it is
only flushed after the value — but says nothing about *latent media
errors*: a bit that rots on the DIMM weeks after a successful write
(Pangolin's threat model, ATC '19) would be served to clients forever,
silently.

The :class:`Scrubber` closes that hole: a background process walks the
hash-table segment round-robin, CRC-verifies each durable head object
against the media, and on a mismatch repairs with an escalating policy:

1. **Parity reconstruction** (when ``parity_stripe_kb > 0``): rebuild
   the rotten head *in place* from stripe ⊕ parity — the newest acked
   value survives. Pangolin's repair, adapted to the multi-version log
   via the :mod:`repro.integrity` coverage ledger.
2. **Replica-assisted repair** (cluster mode): when local parity can't
   reconstruct (multi-fault stripe, stale parity), fetch the intact
   bytes from a backup at the *identical shipped offset* via the
   ``repair_fetch`` RPC and reinstall them — again keeping the newest
   version.
3. **Version-list rollback** (the original policy, mirroring
   :mod:`repro.core.recovery`): re-point the hash entry at the newest
   older version that provably verifies, retire the rotten head, fall
   back to the log-cleaning copy (``alt``) before declaring the key
   unrepairable and clearing it (a cleared key is a loud miss, never a
   silently-served torn value).

On cluster **backup** nodes the partition's table segment is empty (it
is only seeded at promotion), so the table walk would scrub nothing and
shipped replicas would rot silently. There the scrubber instead walks
the shipped pool extents record-by-record, CRC-verifying every settled
record and repairing rot from local parity or by re-fetching the bytes
from the partition's primary — symmetric replica-assisted repair.

One scrubber per partition (the same sharding as the verifier);
:class:`ScrubberGroup` aggregates them behind the single-scrubber
interface. Paced by ``StoreConfig.scrub_interval_ns`` (0 = disabled,
the default — the paper's system has no scrubber).
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional, TYPE_CHECKING

from repro.baselines.base import ObjectLocation, Partition
from repro.crc.crc32 import crc32_fast
from repro.errors import MemoryAccessError, RDMAError, StoreError
from repro.kv.hashtable import ENTRY_SIZE, key_fingerprint
from repro.kv.objects import (
    FLAG_DURABLE,
    FLAG_VALID,
    HEADER_SIZE,
    object_size,
    parse_header,
    parse_object,
)
from repro.rdma.rpc import RpcFault
from repro.sim.kernel import Event, Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import ClusterNode
    from repro.core.server import EFactoryServer

__all__ = ["Scrubber", "ScrubberGroup"]

#: Cycle/depth guard for rollback-chain walks over possibly-rotten
#: pre_ptr links (mirrors recovery's cycle check).
_MAX_CHAIN_HOPS = 64

_STAT_KEYS = (
    "scrubbed",
    "corrupt_found",
    "repaired",
    "unrepairable",
    "reconstructed",
    "parity_stale",
    "replica_fetched",
)


class Scrubber:
    """One partition's background CRC-scrub-and-repair thread."""

    def __init__(
        self, server: "EFactoryServer", partition: Optional[Partition] = None
    ) -> None:
        self.server = server
        self.part = partition if partition is not None else server.partitions[0]
        self.env = server.env
        self._proc: Process | None = None
        self._cursor = 0  # entry index into this partition's segment
        # backup-mode walk state: pool id -> next record offset
        self._replica_cursors: dict[int, int] = {}
        self._replica_laps = 0
        # statistics (exposed via server.metrics())
        self.scrubbed = 0
        self.corrupt_found = 0
        self.repaired = 0
        self.unrepairable = 0
        #: heads rebuilt in place from stripe ⊕ parity
        self.reconstructed = 0
        #: parity reconstructions attempted but not accepted
        self.parity_stale = 0
        #: heads/records reinstalled from a replica via repair_fetch
        self.replica_fetched = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> Process:
        name = (
            "scrubber"
            if self.server.num_partitions == 1
            else f"scrubber-p{self.part.part_id}"
        )
        self._proc = self.env.process(self._loop(), name=name)
        return self._proc

    def stop(self) -> None:
        if (
            self._proc is not None
            and self._proc.is_alive
            and self._proc is not self.env.active_process
        ):
            self._proc.interrupt("stop")

    @property
    def active(self) -> bool:
        return self._proc is not None and self._proc.is_alive

    @property
    def laps(self) -> int:
        """Completed passes over this partition's data (the chaos
        harness settles until every scrubber finishes a lap). On a
        primary that is the table segment; on a cluster backup, the
        shipped pool extents."""
        g = self.part.table.geom
        table_laps = self._cursor // (g.n_buckets * g.slots_per_bucket)
        return max(table_laps, self._replica_laps)

    # -- the thread ------------------------------------------------------------
    def _loop(self) -> Generator[Event, Any, None]:
        cfg = self.server.config
        try:
            while True:
                inj = self.server.fabric.injector
                if inj is not None:
                    act = inj.fire("bg.scrubber", partition=self.part.part_id)
                    if act is not None and act.kind == "pause":
                        yield self.env.timeout(act.delay_ns)
                if not self.part.cleaning_active:
                    # (Entries mid-migration belong to the cleaner; the
                    # next lap picks them up at their new home.)
                    node = self.server.cluster_node
                    if node is not None and self._is_backup(node):
                        yield from self._scrub_next_replica(node)
                    else:
                        yield from self._scrub_next()
                yield self.env.timeout(
                    max(cfg.scrub_interval_ns, cfg.bg_idle_poll_ns)
                )
        except Interrupt:
            return

    def _scrub_next(self) -> Generator[Event, Any, None]:
        """Advance the cursor to the next live entry and scrub it."""
        table = self.part.table
        geom = table.geom
        total = geom.n_buckets * geom.slots_per_bucket
        cfg = self.server.config
        yield self.env.timeout(cfg.nvm_timing.read_cost(ENTRY_SIZE))
        for _ in range(total):
            entry_off = (self._cursor % total) * ENTRY_SIZE
            self._cursor += 1
            entry = table.read_entry(entry_off)
            if entry.fp == 0:
                continue
            cur = table.read_cur(entry_off)
            if cur is None:
                continue
            yield from self._scrub_entry(entry_off, entry.fp, cur)
            return
        # table empty: idle tick

    # -- one entry --------------------------------------------------------------
    def _scrub_entry(
        self, entry_off: int, fp: int, cur
    ) -> Generator[Event, Any, None]:
        part = self.part
        cfg = self.server.config
        loc = ObjectLocation(pool=cur.pool, offset=cur.offset, size=cur.size)
        yield self.env.timeout(cfg.nvm_timing.read_cost(loc.size))
        try:
            img = part.read_object(loc)
        except MemoryAccessError:
            img = None  # rotten slot bits point outside the pool
        if img is not None and img.well_formed:
            if not img.valid:
                return  # invalidated head; GETs already roll past it
            if not img.durable:
                return  # in-flight write: the verifier's job, not rot
            self.scrubbed += 1
            yield self.env.timeout(cfg.crc_cost.cost_ns(img.vlen))
            if key_fingerprint(img.key) == fp and part.object_value_ok(img):
                return  # intact
        else:
            # A *published, durable-marked* head whose header no longer
            # parses: metadata was persisted before publication, so this
            # is media rot, not an in-flight write.
            self.scrubbed += 1
        yield from self._repair(entry_off, fp, loc, img)

    # -- repair (escalating: reconstruct → replica → rollback) -------------------
    def _repair(
        self, entry_off: int, fp: int, bad_loc: ObjectLocation, bad_img
    ) -> Generator[Event, Any, None]:
        part = self.part
        cfg = self.server.config
        self.corrupt_found += 1

        # 0. in-place parity reconstruction: the newest acked value wins
        if part.integrity is not None and part.integrity.covered(bad_loc):
            repaired = yield from self._reconstruct(fp, bad_loc)
            if repaired:
                return

        # 0b. replica-assisted: identical shipped offsets make a backup's
        # bytes byte-for-byte this record; reinstall them in place.
        node = self.server.cluster_node
        if node is not None:
            restored = yield from self._replica_restore(node, fp, bad_loc)
            if restored:
                return

        # 1. newest intact older version along the pre_ptr chain
        visited = {(bad_loc.pool, bad_loc.offset)}
        loc = self._previous(bad_loc)
        hops = 0
        while loc is not None and hops < _MAX_CHAIN_HOPS:
            if (loc.pool, loc.offset) in visited:
                break  # rotten self-referencing chain
            visited.add((loc.pool, loc.offset))
            hops += 1
            yield self.env.timeout(cfg.nvm_timing.read_cost(loc.size))
            try:
                img = part.read_object(loc)
            except MemoryAccessError:
                break
            if img.well_formed and img.valid and key_fingerprint(img.key) == fp:
                yield self.env.timeout(cfg.crc_cost.cost_ns(img.vlen))
                if part.object_value_ok(img):
                    yield from self._promote(entry_off, loc, img, bad_loc, bad_img)
                    return
            loc = self._previous(loc)

        # 2. the log-cleaning copy (durable by construction when present)
        alt = part.table.read_alt(entry_off)
        if alt is not None and (alt.pool, alt.offset) not in visited:
            loc = ObjectLocation(pool=alt.pool, offset=alt.offset, size=alt.size)
            yield self.env.timeout(cfg.nvm_timing.read_cost(loc.size))
            try:
                img = part.read_object(loc)
            except MemoryAccessError:
                img = None
            if (
                img is not None
                and img.well_formed
                and img.valid
                and key_fingerprint(img.key) == fp
            ):
                yield self.env.timeout(cfg.crc_cost.cost_ns(img.vlen))
                if part.object_value_ok(img):
                    yield from self._promote(entry_off, loc, img, bad_loc, bad_img)
                    return

        # 3. unrepairable: clear the key (loud miss, never torn bytes)
        part.table.clear_cur(entry_off)
        part.table.clear_alt(entry_off)
        part.table.persist_entry(entry_off)
        self._retire(bad_loc, bad_img)
        self.unrepairable += 1

    def _reconstruct(
        self, fp: Optional[int], loc: ObjectLocation
    ) -> Generator[Event, Any, bool]:
        """Stage-0 repair: rebuild the covered object from stripe ⊕
        parity, validate the candidate end-to-end, reinstall in place."""
        part = self.part
        cfg = self.server.config
        integ = part.integrity
        # One pass over the object's stripes plus the candidate CRC.
        yield self.env.timeout(
            cfg.nvm_timing.read_cost(integ.reconstruct_cost_bytes(loc))
            + cfg.crc_cost.cost_ns(loc.size)
        )
        cand = integ.reconstruct(loc, lambda raw: self._image_ok(raw, fp))
        if cand is None:
            self.parity_stale += 1
            return False
        part.pools[loc.pool].write(loc.offset, cand)
        yield from part.persist_object(loc)
        # Media now equals the covered bytes again; re-covering is a
        # no-op unless the candidate drifted, in which case the ledger
        # flags the stripes stale rather than trusting skewed parity.
        integ.note_settled(loc, cand)
        self.reconstructed += 1
        return True

    def _replica_restore(
        self, node: "ClusterNode", fp: Optional[int], loc: ObjectLocation
    ) -> Generator[Event, Any, bool]:
        """Stage-0b repair on a primary: reinstall the record from any
        live backup holding it at the identical shipped offset."""
        part = self.part
        shipper = node.shippers.get(part.part_id)
        if shipper is None or not shipper.is_shipped(loc.pool, loc.offset + loc.size):
            return False
        for nid in node.cluster.router.backups(part.part_id):
            if not node.cluster.alive(nid):
                continue
            installed = yield from self._fetch_and_install(node, nid, fp, loc)
            if installed:
                return True
        return False

    def _fetch_and_install(
        self,
        node: "ClusterNode",
        source: int,
        fp: Optional[int],
        loc: ObjectLocation,
    ) -> Generator[Event, Any, bool]:
        """``repair_fetch`` the record's bytes from ``source``, validate
        them end-to-end, and persist them over the rot."""
        from repro.cluster.replicator import REPAIR_FETCH_BYTES

        part = self.part
        cfg = self.server.config
        try:
            resp = yield from node.call(
                source,
                {
                    "op": "repair_fetch",
                    "part": part.part_id,
                    "pool": loc.pool,
                    "off": loc.offset,
                    "size": loc.size,
                },
                REPAIR_FETCH_BYTES,
            )
        except (RDMAError, StoreError, RpcFault):
            return False
        data = resp.get("data") if isinstance(resp, dict) else None
        if not isinstance(data, (bytes, bytearray)) or len(data) != loc.size:
            return False
        yield self.env.timeout(cfg.crc_cost.cost_ns(loc.size))
        if not self._image_ok(bytes(data), fp):
            return False
        part.pools[loc.pool].write(loc.offset, bytes(data))
        yield from part.persist_object(loc)
        if part.integrity is not None:
            part.integrity.note_settled(loc, bytes(data))
        self.replica_fetched += 1
        return True

    def _image_ok(self, raw: bytes, fp: Optional[int]) -> bool:
        """End-to-end candidate validation: parses, settled flags, the
        entry's fingerprint (when known), and the value CRC."""
        if len(raw) < HEADER_SIZE:
            return False
        img = parse_object(raw)
        return (
            img.well_formed
            and img.valid
            and img.durable
            and (fp is None or key_fingerprint(img.key) == fp)
            and img.vlen == len(img.value)
            and crc32_fast(img.value) == img.crc
        )

    def _promote(
        self,
        entry_off: int,
        loc: ObjectLocation,
        img,
        bad_loc: ObjectLocation,
        bad_img,
    ) -> Generator[Event, Any, None]:
        """Re-point the entry at the intact version; retire the rot."""
        part = self.part
        part.set_object_flags(loc, img.flags | FLAG_DURABLE)
        yield from part.persist_object(loc)
        part.table.set_cur(entry_off, loc.slot)
        part.table.persist_entry(entry_off)
        self._retire(bad_loc, bad_img)
        self.repaired += 1

    def _retire(self, bad_loc: ObjectLocation, bad_img) -> None:
        """Invalidate the corrupt head so no version walk revisits it,
        and charge its footprint as garbage — retired rot used to be
        invisible to the cleaning trigger, so those bytes were never
        reclaimed."""
        part = self.part
        part.pools[bad_loc.pool].add_garbage(bad_loc.size)
        if bad_img is None or not bad_img.well_formed:
            return  # header itself is rot; the dangling bytes are inert
        part.set_object_flags(
            bad_loc, bad_img.flags & ~(FLAG_VALID | FLAG_DURABLE)
        )
        part.device.flush(part.pools[bad_loc.pool].abs_addr(bad_loc.offset), 8)

    def _previous(self, loc: ObjectLocation) -> Optional[ObjectLocation]:
        try:
            return self.part.previous_location(loc)
        except MemoryAccessError:
            return None

    # -- backup-node mode: walk the shipped extents ------------------------------
    def _is_backup(self, node: "ClusterNode") -> bool:
        """True when this node holds the partition as a backup replica
        (no index to walk; promotion flips this to the table mode)."""
        router = node.cluster.router
        part_id = self.part.part_id
        primary = router.primary(part_id)
        if primary is None or primary == node.node_id:
            return False
        return node.node_id in router.routes[part_id].replicas

    def _scrub_next_replica(
        self, node: "ClusterNode"
    ) -> Generator[Event, Any, None]:
        """Advance the replica cursor to the next settled shipped record
        and scrub it; a full pass over every shipped extent is one lap."""
        part = self.part
        cfg = self.server.config
        yield self.env.timeout(cfg.nvm_timing.read_cost(HEADER_SIZE))
        for pool in part.pools:
            pid = pool.pool_id
            extent = min(
                node.replica_extent.get((part.part_id, pid), 0), pool.size
            )
            cur = self._replica_cursors.get(pid, 0)
            while cur + HEADER_SIZE <= extent:
                hdr = parse_header(pool.read(cur, HEADER_SIZE))
                if hdr is None:
                    # Shipped records are contiguous from 0; an
                    # unparseable header is either the end of the
                    # prefix or header rot — scan cacheline-by-
                    # cacheline so one rotten header cannot hide the
                    # records behind it.
                    cur += pool.align
                    continue
                size = object_size(hdr.klen, hdr.vlen)
                if size <= 0 or cur + size > pool.size:
                    cur += pool.align
                    continue
                loc = ObjectLocation(pool=pid, offset=cur, size=size)
                cur += (size + pool.align - 1) & ~(pool.align - 1)
                if (hdr.flags & FLAG_VALID) and (hdr.flags & FLAG_DURABLE):
                    self._replica_cursors[pid] = cur
                    yield from self._scrub_replica_record(node, loc)
                    return
            self._replica_cursors[pid] = cur
        # Every shipped extent fully walked: one replica lap.
        self._replica_laps += 1
        for pid in list(self._replica_cursors):
            self._replica_cursors[pid] = 0

    def _scrub_replica_record(
        self, node: "ClusterNode", loc: ObjectLocation
    ) -> Generator[Event, Any, None]:
        """CRC one shipped record; repair rot from local parity, else by
        re-fetching the bytes from the partition's primary."""
        part = self.part
        cfg = self.server.config
        yield self.env.timeout(cfg.nvm_timing.read_cost(loc.size))
        try:
            img = part.read_object(loc)
        except MemoryAccessError:
            img = None
        self.scrubbed += 1
        if img is not None and img.well_formed:
            yield self.env.timeout(cfg.crc_cost.cost_ns(img.vlen))
            if part.object_value_ok(img):
                return  # intact
        self.corrupt_found += 1
        if part.integrity is not None and part.integrity.covered(loc):
            repaired = yield from self._reconstruct(None, loc)
            if repaired:
                return
        primary = node.cluster.router.primary(part.part_id)
        if primary is not None and primary != node.node_id:
            installed = yield from self._fetch_and_install(node, primary, None, loc)
            if installed:
                return
        # No intact source: leave the bytes; promotion's recovery scan
        # will roll past them (they fail verification there too).
        self.unrepairable += 1

    def stats(self) -> dict[str, int]:
        return {key: getattr(self, key) for key in _STAT_KEYS}


class ScrubberGroup:
    """The partitioned server's scrubbers behind the monolith interface."""

    def __init__(self, scrubbers: list[Scrubber]) -> None:
        self.scrubbers = list(scrubbers)

    def start(self) -> None:
        for s in self.scrubbers:
            s.start()

    def stop(self) -> None:
        for s in self.scrubbers:
            s.stop()

    @property
    def active(self) -> bool:
        return any(s.active for s in self.scrubbers)

    @property
    def laps(self) -> int:
        return min((s.laps for s in self.scrubbers), default=0)

    def stats(self) -> dict[str, int]:
        out = {key: 0 for key in _STAT_KEYS}
        for s in self.scrubbers:
            for key, value in s.stats().items():
                out[key] += value
        return out
