"""Online media scrubbing (Pangolin-style, beyond the paper).

eFactory's selective durability guarantee trusts the durability flag:
once the background verifier has CRC-checked and persisted an object,
every later GET serves it *without* re-verifying (§4.3.3 — that skip is
the point of the scheme). The flag is sound against crashes — it is
only flushed after the value — but says nothing about *latent media
errors*: a bit that rots on the DIMM weeks after a successful write
(Pangolin's threat model, ATC '19) would be served to clients forever,
silently.

The :class:`Scrubber` closes that hole the way Pangolin does, adapted
to the multi-version log: a background process walks the hash-table
segment round-robin, CRC-verifies each durable head object against the
media, and on a mismatch repairs by *version-list rollback* — exactly
the recovery policy (:mod:`repro.core.recovery`): re-point the hash
entry at the newest older version that provably verifies, retire the
rotten head, and fall back to the log-cleaning copy (``alt``) before
declaring the key unrepairable and clearing it (a cleared key is a
loud miss, never a silently-served torn value).

One scrubber per partition (the same sharding as the verifier);
:class:`ScrubberGroup` aggregates them behind the single-scrubber
interface. Paced by ``StoreConfig.scrub_interval_ns`` (0 = disabled,
the default — the paper's system has no scrubber).
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional, TYPE_CHECKING

from repro.baselines.base import ObjectLocation, Partition
from repro.errors import MemoryAccessError
from repro.kv.hashtable import ENTRY_SIZE, key_fingerprint
from repro.kv.objects import FLAG_DURABLE, FLAG_VALID
from repro.sim.kernel import Event, Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server import EFactoryServer

__all__ = ["Scrubber", "ScrubberGroup"]

#: Cycle/depth guard for rollback-chain walks over possibly-rotten
#: pre_ptr links (mirrors recovery's cycle check).
_MAX_CHAIN_HOPS = 64


class Scrubber:
    """One partition's background CRC-scrub-and-repair thread."""

    def __init__(
        self, server: "EFactoryServer", partition: Optional[Partition] = None
    ) -> None:
        self.server = server
        self.part = partition if partition is not None else server.partitions[0]
        self.env = server.env
        self._proc: Process | None = None
        self._cursor = 0  # entry index into this partition's segment
        # statistics (exposed via server.metrics())
        self.scrubbed = 0
        self.corrupt_found = 0
        self.repaired = 0
        self.unrepairable = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> Process:
        name = (
            "scrubber"
            if self.server.num_partitions == 1
            else f"scrubber-p{self.part.part_id}"
        )
        self._proc = self.env.process(self._loop(), name=name)
        return self._proc

    def stop(self) -> None:
        if (
            self._proc is not None
            and self._proc.is_alive
            and self._proc is not self.env.active_process
        ):
            self._proc.interrupt("stop")

    @property
    def active(self) -> bool:
        return self._proc is not None and self._proc.is_alive

    @property
    def laps(self) -> int:
        """Completed passes over this partition's table segment (the
        chaos harness settles until every scrubber finishes a lap)."""
        g = self.part.table.geom
        return self._cursor // (g.n_buckets * g.slots_per_bucket)

    # -- the thread ------------------------------------------------------------
    def _loop(self) -> Generator[Event, Any, None]:
        cfg = self.server.config
        try:
            while True:
                inj = self.server.fabric.injector
                if inj is not None:
                    act = inj.fire("bg.scrubber", partition=self.part.part_id)
                    if act is not None and act.kind == "pause":
                        yield self.env.timeout(act.delay_ns)
                if not self.part.cleaning_active:
                    # (Entries mid-migration belong to the cleaner; the
                    # next lap picks them up at their new home.)
                    yield from self._scrub_next()
                yield self.env.timeout(
                    max(cfg.scrub_interval_ns, cfg.bg_idle_poll_ns)
                )
        except Interrupt:
            return

    def _scrub_next(self) -> Generator[Event, Any, None]:
        """Advance the cursor to the next live entry and scrub it."""
        table = self.part.table
        geom = table.geom
        total = geom.n_buckets * geom.slots_per_bucket
        cfg = self.server.config
        yield self.env.timeout(cfg.nvm_timing.read_cost(ENTRY_SIZE))
        for _ in range(total):
            entry_off = (self._cursor % total) * ENTRY_SIZE
            self._cursor += 1
            entry = table.read_entry(entry_off)
            if entry.fp == 0:
                continue
            cur = table.read_cur(entry_off)
            if cur is None:
                continue
            yield from self._scrub_entry(entry_off, entry.fp, cur)
            return
        # table empty: idle tick

    # -- one entry --------------------------------------------------------------
    def _scrub_entry(
        self, entry_off: int, fp: int, cur
    ) -> Generator[Event, Any, None]:
        part = self.part
        cfg = self.server.config
        loc = ObjectLocation(pool=cur.pool, offset=cur.offset, size=cur.size)
        yield self.env.timeout(cfg.nvm_timing.read_cost(loc.size))
        try:
            img = part.read_object(loc)
        except MemoryAccessError:
            img = None  # rotten slot bits point outside the pool
        if img is not None and img.well_formed:
            if not img.valid:
                return  # invalidated head; GETs already roll past it
            if not img.durable:
                return  # in-flight write: the verifier's job, not rot
            self.scrubbed += 1
            yield self.env.timeout(cfg.crc_cost.cost_ns(img.vlen))
            if key_fingerprint(img.key) == fp and part.object_value_ok(img):
                return  # intact
        else:
            # A *published, durable-marked* head whose header no longer
            # parses: metadata was persisted before publication, so this
            # is media rot, not an in-flight write.
            self.scrubbed += 1
        yield from self._repair(entry_off, fp, loc, img)

    # -- repair (recovery's rollback policy, online) ----------------------------
    def _repair(
        self, entry_off: int, fp: int, bad_loc: ObjectLocation, bad_img
    ) -> Generator[Event, Any, None]:
        part = self.part
        cfg = self.server.config
        self.corrupt_found += 1

        # 1. newest intact older version along the pre_ptr chain
        visited = {(bad_loc.pool, bad_loc.offset)}
        loc = self._previous(bad_loc)
        hops = 0
        while loc is not None and hops < _MAX_CHAIN_HOPS:
            if (loc.pool, loc.offset) in visited:
                break  # rotten self-referencing chain
            visited.add((loc.pool, loc.offset))
            hops += 1
            yield self.env.timeout(cfg.nvm_timing.read_cost(loc.size))
            try:
                img = part.read_object(loc)
            except MemoryAccessError:
                break
            if img.well_formed and img.valid and key_fingerprint(img.key) == fp:
                yield self.env.timeout(cfg.crc_cost.cost_ns(img.vlen))
                if part.object_value_ok(img):
                    yield from self._promote(entry_off, loc, img, bad_loc, bad_img)
                    return
            loc = self._previous(loc)

        # 2. the log-cleaning copy (durable by construction when present)
        alt = part.table.read_alt(entry_off)
        if alt is not None and (alt.pool, alt.offset) not in visited:
            loc = ObjectLocation(pool=alt.pool, offset=alt.offset, size=alt.size)
            yield self.env.timeout(cfg.nvm_timing.read_cost(loc.size))
            try:
                img = part.read_object(loc)
            except MemoryAccessError:
                img = None
            if (
                img is not None
                and img.well_formed
                and img.valid
                and key_fingerprint(img.key) == fp
            ):
                yield self.env.timeout(cfg.crc_cost.cost_ns(img.vlen))
                if part.object_value_ok(img):
                    yield from self._promote(entry_off, loc, img, bad_loc, bad_img)
                    return

        # 3. unrepairable: clear the key (loud miss, never torn bytes)
        part.table.clear_cur(entry_off)
        part.table.clear_alt(entry_off)
        part.table.persist_entry(entry_off)
        self._retire(bad_loc, bad_img)
        self.unrepairable += 1

    def _promote(
        self,
        entry_off: int,
        loc: ObjectLocation,
        img,
        bad_loc: ObjectLocation,
        bad_img,
    ) -> Generator[Event, Any, None]:
        """Re-point the entry at the intact version; retire the rot."""
        part = self.part
        part.set_object_flags(loc, img.flags | FLAG_DURABLE)
        yield from part.persist_object(loc)
        part.table.set_cur(entry_off, loc.slot)
        part.table.persist_entry(entry_off)
        self._retire(bad_loc, bad_img)
        self.repaired += 1

    def _retire(self, bad_loc: ObjectLocation, bad_img) -> None:
        """Invalidate the corrupt head so no version walk revisits it."""
        if bad_img is None or not bad_img.well_formed:
            return  # header itself is rot; the dangling bytes are inert
        part = self.part
        part.set_object_flags(
            bad_loc, bad_img.flags & ~(FLAG_VALID | FLAG_DURABLE)
        )
        part.device.flush(part.pools[bad_loc.pool].abs_addr(bad_loc.offset), 8)

    def _previous(self, loc: ObjectLocation) -> Optional[ObjectLocation]:
        try:
            return self.part.previous_location(loc)
        except MemoryAccessError:
            return None

    def stats(self) -> dict[str, int]:
        return {
            "scrubbed": self.scrubbed,
            "corrupt_found": self.corrupt_found,
            "repaired": self.repaired,
            "unrepairable": self.unrepairable,
        }


class ScrubberGroup:
    """The partitioned server's scrubbers behind the monolith interface."""

    def __init__(self, scrubbers: list[Scrubber]) -> None:
        self.scrubbers = list(scrubbers)

    def start(self) -> None:
        for s in self.scrubbers:
            s.start()

    def stop(self) -> None:
        for s in self.scrubbers:
            s.stop()

    @property
    def active(self) -> bool:
        return any(s.active for s in self.scrubbers)

    @property
    def laps(self) -> int:
        return min((s.laps for s in self.scrubbers), default=0)

    def stats(self) -> dict[str, int]:
        out = {"scrubbed": 0, "corrupt_found": 0, "repaired": 0, "unrepairable": 0}
        for s in self.scrubbers:
            for key, value in s.stats().items():
                out[key] += value
        return out
