"""The eFactory server (paper §4).

Composition of the shared client-active allocation path
(:meth:`repro.baselines.base.BaseServer.alloc_object` — Figure 5 steps
2–4, with metadata persisted before the ack), the background
verification thread (§4.3.2), the RPC read path with the *selective
durability guarantee* (§4.3.3 steps 6–8 / §5.3 "durability check first,
CRC only if needed"), and the two-stage log cleaner (§4.4).
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional

from repro.baselines.base import (
    BaseServer,
    ObjectLocation,
    RESPONSE_BYTES,
)
from repro.core.background import BackgroundVerifier
from repro.core.config import EFactoryConfig, efactory_config
from repro.kv.objects import FLAG_VALID, HEADER_SIZE, object_size, parse_header, unpack_ptr
from repro.rdma.fabric import Fabric
from repro.rdma.rpc import rpc_error
from repro.rdma.verbs import Message
from repro.sim.kernel import Environment, Event

__all__ = ["EFactoryServer"]


class EFactoryServer(BaseServer):
    store_name = "efactory"
    publish_on_alloc = True  # Figure 5 step 3: index updated at alloc

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        config: Optional[EFactoryConfig] = None,
        name: str = "server",
    ) -> None:
        super().__init__(env, fabric, config or efactory_config(), name=name)
        cfg: EFactoryConfig = self.config  # type: ignore[assignment]
        # Multiple receive regions -> cheaper per-message dispatch (§6.1).
        self.rpc.dispatch_ns = cfg.effective_dispatch_ns
        self.background = BackgroundVerifier(self)
        from repro.core.log_cleaning import LogCleaner  # avoid import cycle

        self.cleaner = LogCleaner(self)
        self.cleaning_active = False

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        super().start()
        self.background.start()

    def stop(self) -> None:
        super().stop()
        self.background.stop()
        self.cleaner.stop()

    # -- handlers ----------------------------------------------------------------
    def _register_handlers(self) -> None:
        super()._register_handlers()
        self.rpc.register("get_loc", self._handle_get_loc)
        self.rpc.register("delete", self._handle_delete)
        self.rpc.register("cleaning_ack", self._handle_cleaning_ack)

    def on_allocated(self, loc: ObjectLocation, entry_off: int) -> None:
        """Feed the background thread; maybe trigger log cleaning."""
        self.background.enqueue(loc)
        cfg: EFactoryConfig = self.config  # type: ignore[assignment]
        if (
            cfg.auto_clean
            and not self.cleaning_active
            and self.pools[self.write_pool_id].needs_cleaning()
        ):
            self.cleaner.trigger()

    def _handle_cleaning_ack(self, msg: Message) -> Generator[Event, Any, None]:
        self.cleaner.note_ack()
        return None
        yield  # pragma: no cover - makes this a generator

    # -- the RPC read path (§4.3.3 steps 6-8) --------------------------------------
    def _handle_get_loc(self, msg: Message) -> Generator[Event, Any, tuple[Any, int]]:
        cfg = self.config
        key: bytes = msg.payload["key"]
        yield self.env.timeout(cfg.index_ns)
        found = self.lookup_slot(key)
        if found is None:
            return rpc_error(f"key {key!r} not found"), RESPONSE_BYTES
        _entry_off, cur, alt = found

        # Walk the version list from the latest version (step 7).
        loc = _loc(cur)
        while loc is not None:
            resolved = yield from self._resolve_version(loc, key)
            if resolved is not None:
                return (
                    {"pool": resolved.pool, "offset": resolved.offset,
                     "size": resolved.size},
                    RESPONSE_BYTES,
                )
            loc = self._previous_location(loc)

        # Fall back to the log-cleaning copy (durable by construction).
        if alt is not None:
            loc = _loc(alt)
            img = self.read_object(loc)
            if img.well_formed and img.key == key and img.durable:
                return (
                    {"pool": loc.pool, "offset": loc.offset, "size": loc.size},
                    RESPONSE_BYTES,
                )
        return rpc_error(f"key {key!r}: no intact version"), RESPONSE_BYTES

    def _resolve_version(
        self, loc: ObjectLocation, key: bytes
    ) -> Generator[Event, Any, Optional[ObjectLocation]]:
        """Selective durability guarantee for one version.

        Durability check first (cheap); CRC + persist only when the
        background thread has not gotten there yet — the difference from
        Forca, which CRCs every read.
        """
        cfg = self.config
        yield self.env.timeout(80.0)  # header peek
        img = self.read_object(loc)
        if not img.well_formed or img.key != key or not img.valid:
            return None
        if img.durable:
            return loc
        # Not yet durable: verify + persist on the request path so the
        # reader is never blocked behind the background thread's cursor.
        yield self.env.timeout(cfg.crc_cost.cost_ns(img.vlen))
        if self.object_value_ok(img):
            yield from self.persist_object(loc)
            self.mark_durable(loc, img)
            return loc
        return None

    def _previous_location(self, loc: ObjectLocation) -> Optional[ObjectLocation]:
        hdr = parse_header(self.pools[loc.pool].read(loc.offset, HEADER_SIZE))
        if hdr is None:
            return None
        prev = unpack_ptr(hdr.pre_ptr)
        if prev is None:
            return None
        pool_id, offset = prev
        prev_hdr = parse_header(self.pools[pool_id].read(offset, HEADER_SIZE))
        if prev_hdr is None:
            return None
        return ObjectLocation(
            pool=pool_id,
            offset=offset,
            size=object_size(prev_hdr.klen, prev_hdr.vlen),
        )

    # -- delete (API completeness; reclaimed by log cleaning) ------------------------
    def _handle_delete(self, msg: Message) -> Generator[Event, Any, tuple[Any, int]]:
        cfg = self.config
        key: bytes = msg.payload["key"]
        yield self.env.timeout(cfg.index_ns)
        found = self.lookup_slot(key)
        if found is None or found[1] is None:
            return rpc_error(f"key {key!r} not found"), RESPONSE_BYTES
        entry_off, cur, _alt = found
        loc = _loc(cur)
        img = self.read_object(loc)
        yield self.env.timeout(cfg.entry_update_ns)
        self.table.clear_cur(entry_off)
        self.table.clear_alt(entry_off)
        self.table.persist_entry(entry_off)
        if img.well_formed:
            self.set_object_flags(loc, img.flags & ~FLAG_VALID)
        yield self.env.timeout(cfg.nvm_timing.flush_cost(32))
        return {"ok": True}, RESPONSE_BYTES

    # -- maintenance -----------------------------------------------------------------
    def trigger_cleaning(self):
        """Manually start a log-cleaning cycle (benchmarks, tests)."""
        return self.cleaner.trigger()


def _loc(slot) -> Optional[ObjectLocation]:
    if slot is None:
        return None
    return ObjectLocation(pool=slot.pool, offset=slot.offset, size=slot.size)
