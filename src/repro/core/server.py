"""The eFactory server (paper §4).

Composition of the shared client-active allocation path
(:meth:`repro.baselines.partition.Partition.alloc_object` — Figure 5
steps 2–4, with metadata persisted before the ack), the background
verification thread (§4.3.2), the RPC read path with the *selective
durability guarantee* (§4.3.3 steps 6–8 / §5.3 "durability check first,
CRC only if needed"), and the two-stage log cleaner (§4.4).

With ``num_partitions > 1`` the server is a composition of independent
partitions (own pools, table segment, verifier, cleaner — see
``repro.baselines.partition``); every RPC handler routes by the key's
fingerprint and runs under that partition's dispatch budget.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional

from repro.baselines.base import (
    BaseServer,
    ObjectLocation,
    Partition,
    RESPONSE_BYTES,
    busy_error,
)
from repro.core.background import BackgroundVerifier, VerifierGroup
from repro.core.scrub import Scrubber, ScrubberGroup
from repro.core.config import EFactoryConfig, efactory_config
from repro.kv.objects import FLAG_VALID
from repro.rdma.fabric import Fabric
from repro.rdma.rpc import ERR_NO_INTACT, ERR_NOT_FOUND, rpc_error
from repro.rdma.verbs import Message
from repro.sim.kernel import Environment, Event

__all__ = ["EFactoryServer"]


class EFactoryServer(BaseServer):
    store_name = "efactory"
    publish_on_alloc = True  # Figure 5 step 3: index updated at alloc

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        config: Optional[EFactoryConfig] = None,
        name: str = "server",
    ) -> None:
        super().__init__(env, fabric, config or efactory_config(), name=name)
        cfg: EFactoryConfig = self.config  # type: ignore[assignment]
        # Multiple receive regions -> cheaper per-message dispatch (§6.1).
        self.rpc.dispatch_ns = cfg.effective_dispatch_ns
        from repro.core.log_cleaning import CleanerGroup, LogCleaner  # import cycle

        for part in self.partitions:
            part.verifier = BackgroundVerifier(self, part)
            part.cleaner = LogCleaner(self, part)
            part.scrubber = Scrubber(self, part)
        # Monolith-compatible facades (the single-partition objects
        # themselves when N == 1, aggregates otherwise).
        if len(self.partitions) == 1:
            self.background = self.partitions[0].verifier
            self.cleaner = self.partitions[0].cleaner
            self.scrubber = self.partitions[0].scrubber
        else:
            self.background = VerifierGroup([p.verifier for p in self.partitions])
            self.cleaner = CleanerGroup([p.cleaner for p in self.partitions])
            self.scrubber = ScrubberGroup([p.scrubber for p in self.partitions])
        #: Back-reference set by :class:`repro.cluster.ClusterNode` when
        #: this server is a member of a replicated cluster; None on
        #: standalone servers.
        self.cluster_node = None

    @property
    def cleaning_active(self) -> bool:
        """True while *any* partition runs a cleaning cycle."""
        return any(p.cleaning_active for p in self.partitions)

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        super().start()
        for part in self.partitions:
            part.verifier.start()
            if self.config.scrub_interval_ns > 0:
                part.scrubber.start()

    def stop(self) -> None:
        super().stop()
        for part in self.partitions:
            part.verifier.stop()
            part.cleaner.stop()
            part.scrubber.stop()

    def metrics(self) -> dict[str, dict[str, int]]:
        """Aggregated background-machinery counters (one dict per
        subsystem, partition-summed)."""
        cs = self.cleaner.stats() if callable(self.cleaner.stats) else self.cleaner.stats
        fastpath = self.fabric.fastpath_ops
        total_ops = fastpath + self.fabric.fallback_ops
        processed = self.env.events_processed
        out = {
            "verifier": self.background.stats(),
            "cleaner": {name: getattr(cs, name) for name in type(cs).__slots__},
            "scrubber": self.scrubber.stats(),
            "sim": {
                "events_scheduled": self.env.events_scheduled,
                "events_processed": processed,
                "fastpath_ops": fastpath,
                "fallback_ops": self.fabric.fallback_ops,
                "events_per_op": processed / total_ops if total_ops else 0,
            },
        }
        if self.config.admission_watermark > 0:
            # Only present when the knob is on, so every legacy metrics
            # consumer sees an unchanged dict shape.
            out["admission"] = {
                "watermark": self.config.admission_watermark,
                "admitted": sum(p.admitted_requests for p in self.partitions),
                "shed": sum(p.shed_requests for p in self.partitions),
                "peak_inflight": max(p.peak_inflight for p in self.partitions),
                "inflight": sum(p.inflight for p in self.partitions),
            }
        if self.partitions[0].integrity is not None:
            integ: dict[str, int] = {}
            for part in self.partitions:
                for key, value in part.integrity.stats().items():
                    integ[key] = integ.get(key, 0) + value
            out["integrity"] = integ
        if self.cluster_node is not None:
            out["cluster"] = self.cluster_node.metrics()
        return out

    # -- handlers ----------------------------------------------------------------
    def _register_handlers(self) -> None:
        super()._register_handlers()
        self.rpc.register("get_loc", self._handle_get_loc)
        self.rpc.register("delete", self._handle_delete)
        self.rpc.register("cleaning_ack", self._handle_cleaning_ack)

    def on_allocated(
        self, part: Partition, loc: ObjectLocation, entry_off: int
    ) -> None:
        """Feed the partition's background thread; maybe trigger cleaning."""
        part.verifier.enqueue(loc)
        cfg: EFactoryConfig = self.config  # type: ignore[assignment]
        if (
            cfg.auto_clean
            and not part.cleaning_active
            and part.pools[part.write_pool_id].needs_cleaning()
        ):
            part.cleaner.trigger()

    def _handle_cleaning_ack(self, msg: Message) -> Generator[Event, Any, None]:
        part_id = msg.payload.get("part", 0)
        self.partitions[part_id].cleaner.note_ack()
        return None
        yield  # pragma: no cover - makes this a generator

    # -- the RPC read path (§4.3.3 steps 6-8) --------------------------------------
    def _handle_get_loc(self, msg: Message) -> Generator[Event, Any, tuple[Any, int]]:
        cfg = self.config
        key: bytes = msg.payload["key"]
        part = self.partition_for_key(key)
        if not part.try_admit():
            return busy_error(part), RESPONSE_BYTES
        budget = yield from part.acquire_budget()
        try:
            yield self.env.timeout(cfg.index_ns)
            found = part.lookup_slot(key)
            if found is None:
                return rpc_error(f"key {key!r} not found", ERR_NOT_FOUND), RESPONSE_BYTES
            _entry_off, cur, alt = found

            # Walk the version list from the latest version (step 7).
            loc = _loc(cur)
            while loc is not None:
                resolved = yield from self._resolve_version(part, loc, key)
                if resolved is not None:
                    return (
                        {"pool": resolved.pool, "offset": resolved.offset,
                         "size": resolved.size, "part": part.part_id},
                        RESPONSE_BYTES,
                    )
                loc = part.previous_location(loc)

            # Fall back to the log-cleaning copy (durable by construction).
            if alt is not None:
                loc = _loc(alt)
                img = part.read_object(loc)
                if img.well_formed and img.key == key and img.durable:
                    return (
                        {"pool": loc.pool, "offset": loc.offset,
                         "size": loc.size, "part": part.part_id},
                        RESPONSE_BYTES,
                    )
            return rpc_error(f"key {key!r}: no intact version", ERR_NO_INTACT), RESPONSE_BYTES
        finally:
            part.release_budget(budget)
            part.depart()

    def _resolve_version(
        self, part: Partition, loc: ObjectLocation, key: bytes
    ) -> Generator[Event, Any, Optional[ObjectLocation]]:
        """Selective durability guarantee for one version.

        Durability check first (cheap); CRC + persist only when the
        background thread has not gotten there yet — the difference from
        Forca, which CRCs every read.
        """
        cfg = self.config
        yield self.env.timeout(cfg.peek_ns)  # header peek
        img = part.read_object(loc)
        if not img.well_formed or img.key != key or not img.valid:
            return None
        if img.durable:
            return loc
        # Not yet durable: verify + persist on the request path so the
        # reader is never blocked behind the background thread's cursor.
        yield self.env.timeout(cfg.crc_cost.cost_ns(img.vlen))
        if part.object_value_ok(img):
            raw = (
                bytes(part.pools[loc.pool].read(loc.offset, loc.size))
                if part.integrity is not None
                else None
            )
            yield from part.persist_object(loc)
            part.mark_durable(loc, img)
            if part.integrity is not None:
                # Request-path settle: cover + flush inline, same as a
                # one-object verifier batch.
                yield from part.integrity.settle_batch([(loc, raw)])
            return loc
        return None

    # -- delete (API completeness; reclaimed by log cleaning) ------------------------
    def _handle_delete(self, msg: Message) -> Generator[Event, Any, tuple[Any, int]]:
        cfg = self.config
        key: bytes = msg.payload["key"]
        part = self.partition_for_key(key)
        if not part.try_admit():
            return busy_error(part), RESPONSE_BYTES
        budget = yield from part.acquire_budget()
        try:
            yield self.env.timeout(cfg.index_ns)
            found = part.lookup_slot(key)
            if found is None or found[1] is None:
                return rpc_error(f"key {key!r} not found", ERR_NOT_FOUND), RESPONSE_BYTES
            entry_off, cur, _alt = found
            loc = _loc(cur)
            img = part.read_object(loc)
            yield self.env.timeout(cfg.entry_update_ns)
            part.table.clear_cur(entry_off)
            part.table.clear_alt(entry_off)
            part.table.persist_entry(entry_off)
            if img.well_formed:
                part.set_object_flags(loc, img.flags & ~FLAG_VALID)
                # The VALID clear must be durable before the ack, or a
                # crash resurrects the object when the pool scan re-seeds
                # the index (same store+flush pairing as mark_durable;
                # the flush_cost timeout below already charges the time).
                part.device.flush(part.pools[loc.pool].abs_addr(loc.offset), 8)
            yield self.env.timeout(cfg.nvm_timing.flush_cost(32))
            return {"ok": True}, RESPONSE_BYTES
        finally:
            part.release_budget(budget)
            part.depart()

    # -- maintenance -----------------------------------------------------------------
    def trigger_cleaning(self, part_id: Optional[int] = None) -> Optional[Event]:
        """Manually start a log-cleaning cycle (benchmarks, tests).

        ``part_id`` selects one partition; with ``None`` the monolith
        triggers its single cleaner, a partitioned server triggers *all*
        idle cleaners and returns an event for their completion.
        """
        if part_id is not None:
            return self.partitions[part_id].cleaner.trigger()
        if len(self.partitions) == 1:
            return self.partitions[0].cleaner.trigger()
        procs = [p.cleaner.trigger() for p in self.partitions]
        procs = [proc for proc in procs if proc is not None]
        if not procs:
            return None
        return self.env.all_of(procs)


def _loc(slot) -> Optional[ObjectLocation]:
    if slot is None:
        return None
    return ObjectLocation(pool=slot.pool, offset=slot.offset, size=slot.size)
