"""eFactory configuration.

Extends the shared :class:`~repro.baselines.base.StoreConfig` with the
knobs specific to the paper's design and its ablations:

* ``hybrid_read`` — the §4.3.3 hybrid read scheme; ``False`` gives the
  "eFactory w/o hr" variant of the §6.1 factor analysis (every GET goes
  RPC+RDMA with the selective durability guarantee).
* ``recv_batching`` — §6.1 attributes eFactory's PUT edge over Erda to
  "multiple receiving regions to optimize the simultaneous processing of
  a batch of packets"; modelled as a multiplier (<1) on the per-message
  dispatch cost.
* ``persist_meta`` defaults True: §4.3.1 persists object metadata and
  the hash entry before acking the allocation.
* ``dual_pools`` defaults True: log cleaning needs the second pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.baselines.base import StoreConfig
from repro.errors import ConfigError

__all__ = ["EFactoryConfig", "efactory_config", "integrity_overrides"]

#: Default stripe size (KiB) the harnesses use when turning the parity
#: tier on (``repro chaos --parity``, the integrity bench suite).
DEFAULT_PARITY_STRIPE_KB = 4


def integrity_overrides(
    *, stripe_kb: int = DEFAULT_PARITY_STRIPE_KB, tree: bool = True
) -> dict[str, Any]:
    """Config overrides that enable the self-healing integrity tier:
    XOR parity + checksum ledger, and (by default) the Merkle-over-
    ledger tree checked on cache-warm one-READ GETs."""
    return {"parity_stripe_kb": stripe_kb, "integrity_tree": tree}


@dataclass(frozen=True)
class EFactoryConfig(StoreConfig):
    hybrid_read: bool = True
    recv_batching: float = 0.5
    #: Automatically run log cleaning when the reserve threshold trips.
    auto_clean: bool = True
    #: Extension (not in the paper): after a GET falls back, skip the
    #: optimistic pure-RDMA attempt for that key for ``adaptive_ttl_ns``.
    #: Under write-heavy zipfian load at high concurrency, hot objects
    #: outrun the single background verifier and the optimistic read is
    #: nearly always wasted; this recovers that regime (see the
    #: adaptive-read ablation bench).
    adaptive_read: bool = False
    adaptive_ttl_ns: float = 30_000.0
    #: Client-side location cache capacity (key → (partition, slot)).
    #: A hit turns the pure-RDMA GET's two READs into one; the object
    #: image itself is the staleness detector (an overwritten version
    #: carries a set ``nxt_ptr``, a deleted one drops FLAG_VALID, and a
    #: migrated one gains FLAG_TRANS — any of these falls back to the
    #: two-READ path and drops the entry).  0 (default) disables the
    #: cache, preserving the seed's event sequence bit-for-bit.
    loc_cache_size: int = 0
    #: Drop every cached location when the client re-establishes its QP
    #: after a fault.  A reconnect often means the far end changed (node
    #: failover repoints the route), so cached (partition, slot) pairs
    #: may describe a dead primary; the image-staleness check cannot
    #: catch that — the READ itself fails.  Default-equivalent: with the
    #: cache disabled (size 0) there is nothing to flush.
    loc_cache_flush_on_reconnect: bool = True
    #: Bound on the adaptive-read skip map (entries, LRU-evicted).  The
    #: map previously grew without bound under churn.
    adaptive_skip_cap: int = 4096

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.recv_batching <= 1.0:
            raise ConfigError("recv_batching must be in (0, 1]")
        if self.loc_cache_size < 0:
            raise ConfigError("loc_cache_size must be >= 0")
        if self.adaptive_skip_cap < 1:
            raise ConfigError("adaptive_skip_cap must be >= 1")

    @property
    def effective_dispatch_ns(self) -> float:
        return self.dispatch_ns * self.recv_batching


def efactory_config(**overrides: Any) -> EFactoryConfig:
    """The paper's defaults: client-active + async durability, hybrid
    reads, metadata persisted at allocation, dual pools for cleaning."""
    base = dict(
        persist_meta=True,
        crc_on_put=True,
        dual_pools=True,
    )
    base.update(overrides)
    return EFactoryConfig(**base)
