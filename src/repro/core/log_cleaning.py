"""Two-stage log cleaning (paper §4.4, Figure 7).

**Stage 1 — log compressing.** The server notifies every client (they
switch to RPC+RDMA reads and ACK), then reverse-scans the old pool: the
first version seen of each key is its latest-at-snapshot; it is
verified (made durable if needed), copied to the new pool, and the hash
entry's second slot (``alt``) records the new location. Older versions
are skipped. New writes keep landing in the *old* pool and update the
entry's working slot as usual.

**Stage 2 — log merging.** New writes are redirected to the new pool,
and the objects written to the old pool during stage 1 are merged: a
key already superseded by a durable new-pool write is skipped (the
paper's D1/D2 case); otherwise its latest intact version is copied over.

**Finish.** For every key that had state in the old pool: promote the
new-pool copy into the working slot (the paper flips the mark bit and
clears the old offset; our ``promote_alt`` is the same two ordered
atomic stores), or — if a racing write already made the working slot
point into the new pool — splice that object's version chain onto the
moved copy (the paper's PrePTR fix-up + transfer flag). Clients are
notified, the old pool is recycled.

Simplification vs the paper (documented in DESIGN.md): cleaning
truncates each key's history to its latest intact version, rather than
migrating whole version lists. Old versions only exist to recover from
torn latest versions; a version that has been verified, persisted and
promoted can never need rollback, so truncation preserves every
consistency guarantee while keeping the merge tractable.

While cleaning runs, request dispatch is charged a small interference
factor — the paper attributes its 1–5% PUT slowdown during cleaning to
the cleaner thrashing cache locality (§6.3).

Cleaning is **per-partition**: each partition has its own cleaner over
its own pool pair, clients are told *which* partition is cleaning, and
only that partition's keys fall back to the RPC+RDMA read path — the
other shards stay on the pure one-sided path throughout.  The dispatch
interference scales with the fraction of partitions cleaning (one shard
of N thrashes 1/N of the cache working set).
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional, TYPE_CHECKING

from repro.baselines.base import ObjectLocation, Partition
from repro.errors import StoreError
from repro.kv.hashtable import key_fingerprint
from repro.kv.objects import (
    FLAG_DURABLE,
    FLAG_TRANS,
    FLAG_VALID,
    HEADER_SIZE,
    NULL_PTR,
    OBJECT_HEADER,
    build_header,
    object_size,
    pack_ptr,
    parse_header,
    unpack_ptr,
)
from repro.sim.kernel import Event, Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server import EFactoryServer

__all__ = ["LogCleaner", "CleanerGroup", "CleaningStats"]

#: Cleaner-core cost of scanning one object header during the sweep.
_SCAN_NS = 120.0
#: Multiplier on request dispatch cost while cleaning runs (cache
#: locality interference, §6.3).
_INTERFERENCE = 1.12
#: Poll interval while waiting for an in-flight write to land.
_WAIT_NS = 2_000.0


class CleaningStats:
    """Counters for one or more cleaning cycles."""

    __slots__ = ("cycles", "moved", "skipped_stale", "skipped_superseded",
                 "invalidated", "bytes_copied", "entries_fixed")

    def __init__(self) -> None:
        self.cycles = 0
        self.moved = 0
        self.skipped_stale = 0
        self.skipped_superseded = 0
        self.invalidated = 0
        self.bytes_copied = 0
        self.entries_fixed = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


def _enter_interference(server: "EFactoryServer") -> None:
    """One more cleaner running: bump the dispatch cost.

    The base dispatch cost is captured when the first cleaner starts and
    restored when the last one finishes, so concurrent per-partition
    cycles compose instead of clobbering each other's save/restore.
    """
    if getattr(server, "_active_cleaners", 0) == 0:
        server._dispatch_base = server.rpc.dispatch_ns
    server._active_cleaners = getattr(server, "_active_cleaners", 0) + 1
    _apply_interference(server)


def _exit_interference(server: "EFactoryServer") -> None:
    server._active_cleaners = max(0, server._active_cleaners - 1)
    _apply_interference(server)


def _apply_interference(server: "EFactoryServer") -> None:
    active = server._active_cleaners
    n = len(server.partitions)
    if active == 0:
        server.rpc.dispatch_ns = server._dispatch_base
    elif n == 1:
        server.rpc.dispatch_ns = server._dispatch_base * _INTERFERENCE
    else:
        server.rpc.dispatch_ns = server._dispatch_base * (
            1.0 + (_INTERFERENCE - 1.0) * active / n
        )


class LogCleaner:
    """Runs cleaning cycles on one partition's dedicated core."""

    def __init__(
        self, server: "EFactoryServer", partition: Optional[Partition] = None
    ) -> None:
        self.server = server
        self.part = partition if partition is not None else server.partitions[0]
        self.env = server.env
        self.stats = CleaningStats()
        self._proc: Optional[Process] = None
        self._acks_pending = 0

    # -- control ------------------------------------------------------------
    def trigger(self) -> Optional[Process]:
        """Start one cleaning cycle; no-op if one is already running."""
        part = self.part
        if part.cleaning_active:
            return None
        if len(part.pools) < 2:
            raise StoreError("log cleaning requires dual pools")
        part.cleaning_active = True
        name = (
            "log-cleaner"
            if self.server.num_partitions == 1
            else f"log-cleaner-p{part.part_id}"
        )
        self._proc = self.env.process(self._run(), name=name)
        return self._proc

    def stop(self) -> None:
        if (
            self._proc is not None
            and self._proc.is_alive
            and self._proc is not self.env.active_process
        ):
            self._proc.interrupt("stop")
        self.part.cleaning_active = False

    def note_ack(self) -> None:
        self._acks_pending = max(0, self._acks_pending - 1)

    def _maybe_pause(self, stage: str = "compress") -> Generator[Event, Any, None]:
        """Fault-injection point ahead of each scan step (sites
        ``bg.cleaner.compress`` / ``.merge`` / ``.finish``, so plans and
        the crash matrix can target each cleaning stage separately;
        ``site="bg.cleaner.*"`` covers them all); free when no injector
        is armed."""
        inj = self.server.fabric.injector
        if inj is None:
            return
        act = inj.fire(f"bg.cleaner.{stage}", partition=self.part.part_id)
        if act is not None and act.kind == "pause":
            yield self.env.timeout(act.delay_ns)

    # -- the cycle ------------------------------------------------------------
    def _run(self) -> Generator[Event, Any, None]:
        part = self.part
        try:
            old = part.pools[part.write_pool_id]
            new = part.pools[1 - part.write_pool_id]
            new.reset()
            if part.integrity is not None:
                part.integrity.reset_pool(new.pool_id)
            _enter_interference(self.server)
            try:
                yield from self._notify("start", await_acks=True)
                stage1_mark = len(old.allocations)
                snapshot_boundary = old.head  # offsets below are snapshot
                touched = yield from self._compress(
                    old, new, stage1_mark, snapshot_boundary
                )
                part.write_pool_id = new.pool_id
                touched |= yield from self._merge(old, new, stage1_mark)
                yield from self._finish(old, new, touched)
                yield from self._notify("finish", await_acks=False)
            finally:
                _exit_interference(self.server)
            old.reset()
            if part.integrity is not None:
                part.integrity.reset_pool(old.pool_id)
            self.stats.cycles += 1
        except Interrupt:
            return
        finally:
            part.cleaning_active = False

    # -- notifications --------------------------------------------------------
    def _notify(
        self, state: str, *, await_acks: bool
    ) -> Generator[Event, Any, None]:
        server = self.server
        self._acks_pending = len(server.sessions) if await_acks else 0
        for sess in server.sessions:
            yield from sess.server_ep.send(
                {"op": "cleaning", "state": state, "part": self.part.part_id}, 32
            )
        while self._acks_pending > 0:
            yield self.env.timeout(_WAIT_NS)

    # -- stage 1: compress -------------------------------------------------------
    def _compress(
        self, old, new, stage1_mark: int, snapshot_boundary: int
    ) -> Generator[Event, Any, set[int]]:
        """Reverse-scan the snapshot; move the latest version per key."""
        part = self.part
        snapshot = old.allocations[:stage1_mark]  # allocations at stage start
        seen: set[int] = set()
        touched: set[int] = set()
        yield from self._maybe_pause("compress")  # stage entry
        for alloc in reversed(snapshot):
            yield from self._maybe_pause("compress")
            yield self.env.timeout(_SCAN_NS)
            ident = self._identify(old, alloc.offset)
            if ident is None:
                continue
            fp, key = ident
            if fp in seen:
                self.stats.skipped_stale += 1
                continue
            seen.add(fp)
            entry_off = part.table.find(fp)
            if entry_off is None:
                continue
            touched.add(entry_off)
            cur = part.table.read_cur(entry_off)
            if cur is None or cur.pool != old.pool_id:
                continue  # deleted, or already living in the new pool
            if cur.offset >= snapshot_boundary:
                # Updated during this scan; stage 2 merges the newer one.
                continue
            # cur is a snapshot-era version (possibly this one, possibly
            # a newer-but-invalidated head); move the latest intact
            # version along its chain.
            yield from self._move_latest_intact(entry_off, key, old, new)
        return touched

    # -- stage 2: merge ------------------------------------------------------------
    def _merge(
        self, old, new, stage1_mark: int
    ) -> Generator[Event, Any, set[int]]:
        """Merge writes that landed in the old pool during stage 1."""
        part = self.part
        stage1_writes = old.allocations[stage1_mark:]
        seen: set[int] = set()
        touched: set[int] = set()
        yield from self._maybe_pause("merge")  # stage entry
        for alloc in reversed(stage1_writes):
            yield from self._maybe_pause("merge")
            yield self.env.timeout(_SCAN_NS)
            ident = self._identify(old, alloc.offset)
            if ident is None:
                continue
            fp, key = ident
            if fp in seen:
                self.stats.skipped_stale += 1
                continue
            seen.add(fp)
            entry_off = part.table.find(fp)
            if entry_off is None:
                continue
            touched.add(entry_off)
            cur = part.table.read_cur(entry_off)
            if cur is None:
                continue
            if cur.pool == new.pool_id:
                # D2 case: a newer new-pool version exists; the old one
                # (D1) is skipped. Its durability is the background
                # thread's ordinary job.
                self.stats.skipped_superseded += 1
                continue
            yield from self._move_latest_intact(entry_off, key, old, new)
        return touched

    # -- moving one key's latest intact version -----------------------------------
    def _identify(self, pool, offset) -> Optional[tuple[int, bytes]]:
        hdr = parse_header(pool.read(offset, HEADER_SIZE))
        if hdr is None or not (hdr.flags & FLAG_VALID):
            return None
        key = pool.read(offset + HEADER_SIZE, hdr.klen)
        return key_fingerprint(key), key

    def _move_latest_intact(
        self, entry_off: int, key: bytes, old, new
    ) -> Generator[Event, Any, None]:
        """Find the latest verifiable version along the chain and copy it
        into the new pool with the durability flag set."""
        part = self.part
        cfg = part.config
        cur = part.table.read_cur(entry_off)
        loc = (
            ObjectLocation(pool=cur.pool, offset=cur.offset, size=cur.size)
            if cur is not None
            else None
        )
        while loc is not None:
            img = part.read_object(loc)
            if not img.well_formed or not img.valid:
                loc = part.previous_location(loc)
                continue
            if not img.durable:
                yield self.env.timeout(cfg.crc_cost.cost_ns(img.vlen))
                if not part.object_value_ok(img):
                    # In-flight write: wait for it; or time it out.
                    if self.env.now - img.ts <= cfg.verify_timeout_ns:
                        yield self.env.timeout(_WAIT_NS)
                        continue  # re-read the same location
                    part.set_object_flags(loc, img.flags & ~FLAG_VALID)
                    self.stats.invalidated += 1
                    loc = part.previous_location(loc)
                    continue
                yield from part.persist_object(loc)
                part.mark_durable(loc, img)
                img = part.read_object(loc)

            # Copy into the new pool: fresh header (history truncated),
            # durable from the first byte readers can reach it.
            new_off = new.allocate(loc.size)
            header = build_header(
                flags=FLAG_VALID | FLAG_DURABLE,
                klen=img.klen,
                vlen=img.vlen,
                crc=img.crc,
                pre_ptr=NULL_PTR,
                ts=img.ts,
            )
            yield self.env.timeout(cfg.nvm_timing.copy_cost(loc.size))
            new.write(new_off, header + img.key + img.value)
            yield from part.device.persist(new.abs_addr(new_off), loc.size)
            if part.integrity is not None:
                # The copy is settled by construction: cover the intended
                # bytes (so a corrupting persist is reconstructible) and
                # flush parity/ledger with the move.
                new_loc = ObjectLocation(
                    pool=new.pool_id, offset=new_off, size=loc.size
                )
                part.integrity.note_settled(
                    new_loc, header + img.key + img.value
                )
                yield from part.integrity.flush()

            # Publish as the cleaning copy; mark the original migrated.
            yield self.env.timeout(cfg.entry_update_ns)
            new_slot = ObjectLocation(
                pool=new.pool_id, offset=new_off, size=loc.size
            ).slot
            part.table.set_alt(entry_off, new_slot)
            part.table.persist_entry(entry_off)
            if loc.pool == old.pool_id:
                part.set_object_flags(loc, img.flags | FLAG_TRANS)
            self.stats.moved += 1
            self.stats.bytes_copied += loc.size
            return
        # No intact version: nothing to move (key was never durably
        # written, or deleted); finish() clears the dangling slot.

    # -- finish -----------------------------------------------------------------------
    def _finish(self, old, new, touched: set[int]) -> Generator[Event, Any, None]:
        """Flip every touched entry over to the new pool (Figure 7 end)."""
        part = self.part
        t = part.config.nvm_timing
        yield from self._maybe_pause("finish")  # stage entry
        for entry_off in touched:
            yield from self._maybe_pause("finish")
            yield self.env.timeout(2 * t.store_ns)
            cur = part.table.read_cur(entry_off)
            alt = part.table.read_alt(entry_off)
            if cur is not None and cur.pool == new.pool_id:
                # Raced with a new-pool write: splice its chain onto the
                # moved copy and retire the alt slot.
                self._fix_cross_pool_chain(cur, old.pool_id, alt, new.pool_id)
                part.table.clear_alt(entry_off)
            elif alt is not None:
                part.table.promote_alt(entry_off)
            elif cur is not None and cur.pool == old.pool_id:
                # Nothing intact was moved: the key has no durable data.
                part.table.clear_cur(entry_off)
            part.table.persist_entry(entry_off)
            self.stats.entries_fixed += 1

    def _fix_cross_pool_chain(
        self, cur, old_pool_id: int, alt, new_pool_id: int
    ) -> None:
        """Rewrite the first old-pool PrePTR in a new-pool chain to the
        moved copy (or null it when nothing was moved)."""
        part = self.part
        loc = ObjectLocation(pool=cur.pool, offset=cur.offset, size=cur.size)
        pre_off = OBJECT_HEADER.offset_of("pre_ptr")
        while True:
            hdr = parse_header(part.pools[loc.pool].read(loc.offset, HEADER_SIZE))
            if hdr is None:
                return
            prev = unpack_ptr(hdr.pre_ptr)
            if prev is None:
                return
            prev_pool, prev_off_val = prev
            if prev_pool == old_pool_id:
                new_ptr = (
                    pack_ptr(alt.pool, alt.offset) if alt is not None else NULL_PTR
                )
                addr = part.pools[loc.pool].abs_addr(loc.offset) + pre_off
                old_pre = (
                    bytes(part.pools[loc.pool].read(loc.offset + pre_off, 8))
                    if part.integrity is not None
                    else None
                )
                part.device.write_atomic64(
                    addr, OBJECT_HEADER.pack_field("pre_ptr", new_ptr)
                )
                part.device.flush(addr, 8)
                if old_pre is not None:
                    part.integrity.note_mutation(
                        loc.pool, loc.offset, pre_off, old_pre
                    )
                return
            # hop along the new-pool chain
            nxt = parse_header(
                part.pools[prev_pool].read(prev_off_val, HEADER_SIZE)
            )
            if nxt is None:
                return
            loc = ObjectLocation(
                pool=prev_pool,
                offset=prev_off_val,
                size=object_size(nxt.klen, nxt.vlen),
            )


class CleanerGroup:
    """The partitioned server's cleaners behind the monolith interface."""

    def __init__(self, cleaners: list[LogCleaner]) -> None:
        self.cleaners = list(cleaners)

    @property
    def stats(self) -> CleaningStats:
        merged = CleaningStats()
        for cleaner in self.cleaners:
            for name in CleaningStats.__slots__:
                setattr(
                    merged, name,
                    getattr(merged, name) + getattr(cleaner.stats, name),
                )
        return merged

    def note_ack(self) -> None:  # pragma: no cover - acks are routed per part
        for cleaner in self.cleaners:
            cleaner.note_ack()

    def stop(self) -> None:
        for cleaner in self.cleaners:
            cleaner.stop()
