"""Key-value building blocks shared by all the stores: on-NVM object
layout, log-structured pools, and the two hash index flavours."""

from repro.kv.hashtable import (
    ENTRY_SIZE,
    HashTableGeometry,
    NvmHashTable,
    Slot,
    client_lookup_bucket,
    key_fingerprint,
)
from repro.kv.hopscotch import (
    ERDA_ENTRY_SIZE,
    ERDA_GRANULE,
    HopscotchTable,
    TwoVersions,
    client_scan_neighborhood,
)
from repro.kv.logpool import Allocation, LogPool
from repro.kv.objects import (
    FLAG_DURABLE,
    FLAG_TRANS,
    FLAG_VALID,
    HEADER_SIZE,
    NULL_PTR,
    OBJ_MAGIC,
    OBJECT_HEADER,
    ObjectImage,
    build_header,
    object_size,
    pack_ptr,
    parse_object,
    unpack_ptr,
)

__all__ = [
    "Allocation",
    "ENTRY_SIZE",
    "ERDA_ENTRY_SIZE",
    "ERDA_GRANULE",
    "FLAG_DURABLE",
    "FLAG_TRANS",
    "FLAG_VALID",
    "HEADER_SIZE",
    "HashTableGeometry",
    "HopscotchTable",
    "LogPool",
    "NULL_PTR",
    "NvmHashTable",
    "OBJECT_HEADER",
    "OBJ_MAGIC",
    "ObjectImage",
    "Slot",
    "TwoVersions",
    "build_header",
    "client_lookup_bucket",
    "client_scan_neighborhood",
    "key_fingerprint",
    "object_size",
    "pack_ptr",
    "parse_object",
    "unpack_ptr",
]
