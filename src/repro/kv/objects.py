"""On-NVM object layout (paper §4.2, Figure 4).

An *object* is the basic access unit: a key-value pair plus co-located
object metadata (the authors' implementation choice) and the durability
flag that powers the hybrid read scheme. Layout::

    +--------+-------+------+------+-----+-----+--------+--------+------+
    | magic  | flags | klen | rsv  | vlen| crc | pre_ptr| nxt_ptr|  ts  |
    |  u16   |  u8   | u16  |  u8  | u32 | u32 |  u64   |  u64   | u64  |
    +--------+-------+------+------+-----+-----+--------+--------+------+
    | key bytes ... | value bytes ...                                   |
    +------------------------------------------------------------------+

* ``flags`` — VALID (allocated, not timed out), DURABLE (verified +
  persisted; *the* durability flag), TRANS (migrated by log cleaning).
* ``crc`` — CRC-32 over the value, computed by the writing client and
  recorded by the server at allocation (§4.3.1 step 2).
* ``pre_ptr`` / ``nxt_ptr`` — version list links (§4.2.2); encoded with
  :func:`pack_ptr` so a pointer also names which data pool it targets.
* ``ts`` — server receive time, for background-thread timeout
  invalidation (§4.3.2).

The header and key are written (and persisted, scheme permitting) by the
server at allocation; only the value travels by client RDMA WRITE — so
the CRC needs to cover only the value, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CorruptObjectError
from repro.mem.layout import StructLayout

__all__ = [
    "OBJ_MAGIC",
    "FLAG_VALID",
    "FLAG_DURABLE",
    "FLAG_TRANS",
    "OBJECT_HEADER",
    "HEADER_SIZE",
    "object_size",
    "pack_ptr",
    "unpack_ptr",
    "NULL_PTR",
    "ObjectImage",
    "parse_header",
    "parse_object",
    "build_header",
]

OBJ_MAGIC = 0xEF0B

FLAG_VALID = 0x01
FLAG_DURABLE = 0x02
FLAG_TRANS = 0x04

# Field order keeps every u64 8-byte aligned (objects start cacheline
# aligned), so pointer fix-ups during log cleaning are atomic stores.
OBJECT_HEADER = StructLayout(
    "object_header",
    [
        ("magic", "H"),
        ("flags", "B"),
        ("rsv", "B"),
        ("klen", "H"),
        ("rsv2", "H"),
        ("vlen", "I"),
        ("crc", "I"),
        ("pre_ptr", "Q"),
        ("nxt_ptr", "Q"),
        ("ts", "Q"),
    ],
)
HEADER_SIZE = OBJECT_HEADER.size  # 40 bytes

#: Null version pointer (no previous/next version).
NULL_PTR = 0

_PTR_POOL_SHIFT = 62
_PTR_OFF_MASK = (1 << 62) - 1


def object_size(klen: int, vlen: int) -> int:
    """Total on-pool footprint of an object (header + key + value)."""
    return HEADER_SIZE + klen + vlen


def pack_ptr(pool: int, offset: int) -> int:
    """Encode a version pointer: pool id (0/1) + pool-relative offset.

    Stored as ``offset + 1`` so that 0 remains the null pointer.
    """
    if pool not in (0, 1):
        raise ValueError(f"pool must be 0 or 1, got {pool}")
    if not 0 <= offset < _PTR_OFF_MASK:
        raise ValueError(f"offset {offset} out of pointer range")
    return (pool << _PTR_POOL_SHIFT) | (offset + 1)


def unpack_ptr(ptr: int) -> tuple[int, int] | None:
    """Decode a version pointer; ``None`` for the null pointer."""
    if ptr == NULL_PTR:
        return None
    return (ptr >> _PTR_POOL_SHIFT) & 1, (ptr & _PTR_OFF_MASK) - 1


def build_header(
    *,
    flags: int,
    klen: int,
    vlen: int,
    crc: int,
    pre_ptr: int = NULL_PTR,
    nxt_ptr: int = NULL_PTR,
    ts: int = 0,
) -> bytes:
    """Pack an object header."""
    return OBJECT_HEADER.pack(
        magic=OBJ_MAGIC,
        flags=flags,
        rsv=0,
        klen=klen,
        rsv2=0,
        vlen=vlen,
        crc=crc,
        pre_ptr=pre_ptr,
        nxt_ptr=nxt_ptr,
        ts=ts,
    )


@dataclass(slots=True)
class ObjectImage:
    """A parsed object as fetched from (simulated) memory."""

    flags: int
    klen: int
    vlen: int
    crc: int
    pre_ptr: int
    nxt_ptr: int
    ts: int
    key: bytes
    value: bytes
    #: True when the raw bytes parsed cleanly (magic/lengths sane).
    well_formed: bool = True

    @property
    def valid(self) -> bool:
        return bool(self.flags & FLAG_VALID)

    @property
    def durable(self) -> bool:
        return bool(self.flags & FLAG_DURABLE)

    @property
    def transferred(self) -> bool:
        return bool(self.flags & FLAG_TRANS)


def parse_header(raw: bytes | bytearray | memoryview):
    """Parse just a header (first :data:`HEADER_SIZE` bytes of ``raw``);
    returns the header record, or ``None`` when the magic is wrong (torn
    or unallocated space)."""
    raw = bytes(raw)
    if len(raw) < HEADER_SIZE:
        return None
    hdr = OBJECT_HEADER.unpack(raw[:HEADER_SIZE])
    return hdr if hdr.magic == OBJ_MAGIC else None


def parse_object(raw: bytes | bytearray | memoryview) -> ObjectImage:
    """Parse raw object bytes (header + key + value).

    Never raises on corrupt contents — a torn object is *data*, not an
    error; ``well_formed=False`` flags headers too mangled to interpret
    (readers then treat the object as failing verification).
    """
    raw = bytes(raw)
    if len(raw) < HEADER_SIZE:
        raise CorruptObjectError(
            f"object fragment of {len(raw)} bytes is smaller than a header"
        )
    hdr = OBJECT_HEADER.unpack(raw[:HEADER_SIZE])
    well_formed = (
        hdr.magic == OBJ_MAGIC
        and HEADER_SIZE + hdr.klen + hdr.vlen <= len(raw)
    )
    if well_formed:
        key = raw[HEADER_SIZE : HEADER_SIZE + hdr.klen]
        value = raw[HEADER_SIZE + hdr.klen : HEADER_SIZE + hdr.klen + hdr.vlen]
    else:
        key = b""
        value = b""
    return ObjectImage(
        flags=hdr.flags,
        klen=hdr.klen,
        vlen=hdr.vlen,
        crc=hdr.crc,
        pre_ptr=hdr.pre_ptr,
        nxt_ptr=hdr.nxt_ptr,
        ts=hdr.ts,
        key=key,
        value=value,
        well_formed=well_formed,
    )
