"""NVM-resident bucketized hash table (eFactory-style index, §4.2.2).

The table lives in registered NVM so that clients can fetch hash entries
with one-sided RDMA READs (GET step 1–2). Both sides therefore share a
single binary layout and the same deterministic hash (FNV-1a 64).

Entry layout (32 bytes)::

    fp   u64   key fingerprint (FNV-1a 64); 0 = empty entry
    cur  u64   packed slot: the latest version in the *working* pool
    alt  u64   packed slot: the copy in the *new* pool during log cleaning
    rsv  u64   reserved

A packed slot encodes ``valid(1) | pool(1) | size(22) | offset(40)`` so a
hash-entry update is a single 8-byte atomic NVM store — the property all
the paper's schemes rely on for metadata atomicity. ``size`` is the total
object footprint, letting a client fetch the object with exactly one
READ.

Buckets hold ``slots_per_bucket`` entries; inserts linear-probe whole
buckets up to ``probe_limit``. A client that misses in the home bucket
falls back to the RPC read path (the server probes further) — with the
load factors used in the experiments this is rare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import StoreError
from repro.mem.layout import StructLayout
from repro.nvm.device import NVMDevice
from repro.sim.rng import fnv1a_64

__all__ = [
    "ENTRY_LAYOUT",
    "ENTRY_SIZE",
    "Slot",
    "HashTableGeometry",
    "NvmHashTable",
    "key_fingerprint",
    "partition_of_fp",
    "client_lookup_bucket",
]

ENTRY_LAYOUT = StructLayout(
    "hash_entry",
    [("fp", "Q"), ("cur", "Q"), ("alt", "Q"), ("rsv", "Q")],
)
ENTRY_SIZE = ENTRY_LAYOUT.size  # 32

_OFF_BITS = 40
_SIZE_BITS = 22
_OFF_MASK = (1 << _OFF_BITS) - 1
_SIZE_MASK = (1 << _SIZE_BITS) - 1


@dataclass(frozen=True, slots=True)
class Slot:
    """Decoded form of a packed 8-byte slot."""

    pool: int
    size: int
    offset: int

    def pack(self) -> int:
        if self.pool not in (0, 1):
            raise StoreError(f"slot pool must be 0/1, got {self.pool}")
        if not 0 <= self.size <= _SIZE_MASK:
            raise StoreError(f"slot size {self.size} out of range")
        if not 0 <= self.offset <= _OFF_MASK:
            raise StoreError(f"slot offset {self.offset} out of range")
        return (
            (1 << 63)
            | (self.pool << 62)
            | (self.size << _OFF_BITS)
            | self.offset
        )

    @staticmethod
    def unpack(word: int) -> Optional["Slot"]:
        """Decode a packed slot; ``None`` when the valid bit is clear."""
        if not word >> 63:
            return None
        return Slot(
            pool=(word >> 62) & 1,
            size=(word >> _OFF_BITS) & _SIZE_MASK,
            offset=word & _OFF_MASK,
        )


@dataclass(frozen=True)
class HashTableGeometry:
    """Shape of the table — identical on server and clients."""

    n_buckets: int
    slots_per_bucket: int = 4
    probe_limit: int = 4

    def __post_init__(self) -> None:
        if self.n_buckets <= 0 or self.slots_per_bucket <= 0:
            raise StoreError("hash table geometry must be positive")
        if self.probe_limit < 1:
            raise StoreError("probe_limit must be >= 1")

    @property
    def bucket_bytes(self) -> int:
        return self.slots_per_bucket * ENTRY_SIZE

    @property
    def table_bytes(self) -> int:
        return self.n_buckets * self.bucket_bytes

    def bucket_of(self, fp: int) -> int:
        return fp % self.n_buckets

    def bucket_offset(self, bucket: int) -> int:
        """Table-relative byte offset of a bucket (what a client READs)."""
        return (bucket % self.n_buckets) * self.bucket_bytes

    def entry_offset(self, bucket: int, slot_idx: int) -> int:
        return self.bucket_offset(bucket) + slot_idx * ENTRY_SIZE


def key_fingerprint(key: bytes) -> int:
    """Fingerprint shared by server and clients; never 0 (0 = empty)."""
    fp = fnv1a_64(key)
    return fp or 1


def partition_of_fp(fp: int, n_partitions: int) -> int:
    """Deterministic key→partition route, computed identically on server
    and clients (so the pure one-sided READ path needs no extra round
    trip to locate a key's shard).

    Uses the *high* fingerprint bits: ``bucket_of`` consumes the low
    bits (``fp % n_buckets``), so high-bit routing keeps the per-
    partition bucket distribution as uniform as the unpartitioned one.
    """
    if n_partitions <= 1:
        return 0
    return (fp >> 48) % n_partitions


class NvmHashTable:
    """Server-side operations on the table bytes.

    All methods are instant state transitions; the *time* for index
    work is charged by the request handlers (store configs name the
    constants) so that different schemes can model different index
    costs.
    """

    __slots__ = ("device", "base", "geom")

    def __init__(self, device: NVMDevice, base: int, geom: HashTableGeometry) -> None:
        self.device = device
        self.base = base
        self.geom = geom

    # -- entry access -------------------------------------------------------
    def _entry_addr(self, entry_off: int) -> int:
        return self.base + entry_off

    def read_entry(self, entry_off: int):
        raw = self.device.read(self._entry_addr(entry_off), ENTRY_SIZE)
        return ENTRY_LAYOUT.unpack(raw)

    def _probe(self, fp: int) -> Iterator[int]:
        """Entry offsets to examine for ``fp``, in probe order."""
        g = self.geom
        home = g.bucket_of(fp)
        for b in range(g.probe_limit):
            for s in range(g.slots_per_bucket):
                yield g.entry_offset(home + b, s)

    def find(self, fp: int) -> Optional[int]:
        """Entry offset holding ``fp``, or None."""
        for off in self._probe(fp):
            entry = self.read_entry(off)
            if entry.fp == fp:
                return off
        return None

    def find_or_create(self, fp: int) -> int:
        """Entry offset for ``fp``, claiming an empty entry if new.

        The fingerprint is written (and ordered) before any slot becomes
        valid, so a torn insert leaves an entry with fp set and no valid
        slot — recovery treats that as absent.
        """
        free: Optional[int] = None
        for off in self._probe(fp):
            entry = self.read_entry(off)
            if entry.fp == fp:
                return off
            if entry.fp == 0 and free is None:
                free = off
        if free is None:
            raise StoreError(
                f"hash table overflow in bucket {self.geom.bucket_of(fp)} "
                f"(raise n_buckets or probe_limit)"
            )
        self.device.write_atomic64(
            self._entry_addr(free), ENTRY_LAYOUT.pack_field("fp", fp)
        )
        return free

    # -- slot words ----------------------------------------------------------
    def _write_word(self, entry_off: int, field: str, word: int) -> None:
        addr = self._entry_addr(entry_off) + ENTRY_LAYOUT.offset_of(field)
        self.device.write_atomic64(addr, ENTRY_LAYOUT.pack_field(field, word))

    def read_cur(self, entry_off: int) -> Optional[Slot]:
        return Slot.unpack(self.read_entry(entry_off).cur)

    def read_alt(self, entry_off: int) -> Optional[Slot]:
        return Slot.unpack(self.read_entry(entry_off).alt)

    def set_cur(self, entry_off: int, slot: Slot) -> None:
        self._write_word(entry_off, "cur", slot.pack())

    def set_alt(self, entry_off: int, slot: Slot) -> None:
        self._write_word(entry_off, "alt", slot.pack())

    def clear_cur(self, entry_off: int) -> None:
        self._write_word(entry_off, "cur", 0)

    def clear_alt(self, entry_off: int) -> None:
        self._write_word(entry_off, "alt", 0)

    def promote_alt(self, entry_off: int) -> None:
        """End of log cleaning: make the new-pool copy current.

        Equivalent to the paper's mark-bit flip + old-offset clear: two
        ordered 8-byte atomic stores (cur := alt, then alt := 0); a crash
        between them leaves both valid pointing at identical object
        contents, which recovery deduplicates.
        """
        entry = self.read_entry(entry_off)
        self._write_word(entry_off, "cur", entry.alt)
        self._write_word(entry_off, "alt", 0)

    def persist_entry(self, entry_off: int) -> None:
        """State-level flush of one entry (timing charged by caller)."""
        self.device.flush(self._entry_addr(entry_off), ENTRY_SIZE)

    # -- iteration (cleaning / recovery) -----------------------------------------
    def iter_entries(self) -> Iterator[tuple[int, object]]:
        """Yield ``(entry_off, entry)`` for every non-empty entry."""
        total = self.geom.n_buckets * self.geom.slots_per_bucket
        for i in range(total):
            off = i * ENTRY_SIZE
            entry = self.read_entry(off)
            if entry.fp != 0:
                yield off, entry


def client_lookup_bucket(
    bucket_raw: bytes, fp: int, geom: HashTableGeometry
) -> Optional[tuple[Optional[Slot], Optional[Slot]]]:
    """Client-side parse of a fetched home bucket.

    Returns ``(cur, alt)`` for the entry matching ``fp`` (either may be
    None if invalid), or ``None`` when the fingerprint is not in this
    bucket (the client then falls back to the RPC read path, which
    probes further).
    """
    if len(bucket_raw) != geom.bucket_bytes:
        raise StoreError(
            f"bucket read returned {len(bucket_raw)} bytes, "
            f"expected {geom.bucket_bytes}"
        )
    for s in range(geom.slots_per_bucket):
        entry = ENTRY_LAYOUT.unpack_from(bucket_raw, s * ENTRY_SIZE)
        if entry.fp == fp:
            return Slot.unpack(entry.cur), Slot.unpack(entry.alt)
    return None
