"""Hopscotch hash table with Erda's 8-byte atomic two-version region.

Erda (§5.3.3, §7) indexes objects with hopscotch hashing. Each bucket
packs "the address offset of the latest two versions in an 8-byte
region", updated with a single atomic store::

    fp      u64    key fingerprint (0 = empty)
    atomic  u64    off1(28) | off2(28) | tag(8)

Offsets are in 16-byte granules of the data pool (28 bits address 4 GiB)
and are stored +1 so 0 means "no version". ``off1`` is the latest
version, ``off2`` the previous — exactly two, which is the limitation
the eFactory paper criticises (multiple concurrent writers can need
deeper rollback than two versions; see the crash-consistency bench).

Hopscotch property: an entry lives within ``H`` slots of its home
bucket, so a client fetches ``H`` consecutive entries with one RDMA READ
and scans locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import StoreError
from repro.mem.layout import StructLayout
from repro.nvm.device import NVMDevice

__all__ = [
    "ERDA_ENTRY",
    "ERDA_ENTRY_SIZE",
    "ERDA_GRANULE",
    "TwoVersions",
    "HopscotchTable",
    "client_scan_neighborhood",
]

ERDA_ENTRY = StructLayout("erda_entry", [("fp", "Q"), ("atomic", "Q")])
ERDA_ENTRY_SIZE = ERDA_ENTRY.size  # 16

#: Pool offsets in the atomic region are in units of this many bytes.
ERDA_GRANULE = 16

_OFF_MASK = (1 << 28) - 1


@dataclass(frozen=True)
class TwoVersions:
    """Decoded 8-byte atomic region: latest two version offsets (bytes)."""

    off1: Optional[int]  # latest version, pool-relative bytes
    off2: Optional[int]  # previous version
    tag: int = 0

    def pack(self) -> int:
        def enc(off: Optional[int]) -> int:
            if off is None:
                return 0
            if off % ERDA_GRANULE:
                raise StoreError(f"offset {off} not {ERDA_GRANULE}-byte aligned")
            granule = off // ERDA_GRANULE + 1
            if granule > _OFF_MASK:
                raise StoreError(f"offset {off} exceeds 28-bit granule space")
            return granule

        return enc(self.off1) | (enc(self.off2) << 28) | ((self.tag & 0xFF) << 56)

    @staticmethod
    def unpack(word: int) -> "TwoVersions":
        def dec(granule: int) -> Optional[int]:
            return None if granule == 0 else (granule - 1) * ERDA_GRANULE

        return TwoVersions(
            off1=dec(word & _OFF_MASK),
            off2=dec((word >> 28) & _OFF_MASK),
            tag=(word >> 56) & 0xFF,
        )

    def push(self, new_off: int) -> "TwoVersions":
        """The region after a new version is published: the previous
        latest becomes off2, anything older falls off."""
        return TwoVersions(off1=new_off, off2=self.off1, tag=(self.tag + 1) & 0xFF)


class HopscotchTable:
    """Server-side hopscotch table over NVM bytes."""

    __slots__ = ("device", "base", "n_buckets", "H")

    def __init__(
        self, device: NVMDevice, base: int, n_buckets: int, H: int = 8
    ) -> None:
        if n_buckets <= 0 or H <= 0:
            raise StoreError("hopscotch geometry must be positive")
        self.device = device
        self.base = base
        self.n_buckets = n_buckets
        self.H = H

    # -- layout ---------------------------------------------------------------
    def home_of(self, fp: int) -> int:
        return fp % self.n_buckets

    def entry_offset(self, idx: int) -> int:
        """Table-relative byte offset of entry ``idx`` (mod table size)."""
        return (idx % self.n_buckets) * ERDA_ENTRY_SIZE

    @property
    def table_bytes(self) -> int:
        return self.n_buckets * ERDA_ENTRY_SIZE

    def neighborhood_offset(self, fp: int) -> tuple[int, int]:
        """(table-relative offset, length) of the home neighborhood —
        what a client fetches in one READ. Wraps are handled by reading
        to the table end then from the start; for simplicity the read
        spans ``min(H, buckets-home)`` entries and clients RPC-fallback
        past the wrap point."""
        home = self.home_of(fp)
        span = min(self.H, self.n_buckets - home)
        return home * ERDA_ENTRY_SIZE, span * ERDA_ENTRY_SIZE

    # -- entry io ----------------------------------------------------------------
    def _read(self, idx: int):
        raw = self.device.read(self.base + self.entry_offset(idx), ERDA_ENTRY_SIZE)
        return ERDA_ENTRY.unpack(raw)

    def _write_fp(self, idx: int, fp: int) -> None:
        addr = self.base + self.entry_offset(idx) + ERDA_ENTRY.offset_of("fp")
        self.device.write_atomic64(addr, ERDA_ENTRY.pack_field("fp", fp))

    def _write_atomic(self, idx: int, word: int) -> None:
        addr = self.base + self.entry_offset(idx) + ERDA_ENTRY.offset_of("atomic")
        self.device.write_atomic64(addr, ERDA_ENTRY.pack_field("atomic", word))

    # -- operations ------------------------------------------------------------------
    def lookup(self, fp: int) -> Optional[tuple[int, TwoVersions]]:
        """Find ``fp`` within its neighborhood; returns (entry idx, region)."""
        home = self.home_of(fp)
        for d in range(self.H):
            idx = home + d
            if idx >= self.n_buckets:
                break
            entry = self._read(idx)
            if entry.fp == fp:
                return idx, TwoVersions.unpack(entry.atomic)
        return None

    def insert_or_update(self, fp: int, new_off: int) -> TwoVersions:
        """Publish ``new_off`` as the latest version of ``fp``.

        Returns the new two-version region. Performs hopscotch
        displacement when the neighborhood is full.
        """
        found = self.lookup(fp)
        if found is not None:
            idx, region = found
            updated = region.push(new_off)
            self._write_atomic(idx, updated.pack())
            return updated

        idx = self._claim_slot(fp)
        region = TwoVersions(off1=new_off, off2=None, tag=1)
        self._write_fp(idx, fp)
        self._write_atomic(idx, region.pack())
        return region

    def _claim_slot(self, fp: int) -> int:
        """Find a free slot in the neighborhood, displacing if needed."""
        home = self.home_of(fp)
        # find first free slot at or after home (bounded scan)
        free = None
        for idx in range(home, min(home + 64 * self.H, self.n_buckets)):
            if self._read(idx).fp == 0:
                free = idx
                break
        if free is None:
            raise StoreError("hopscotch table full (resize not modelled)")
        # hop the free slot back into the neighborhood
        while free - home >= self.H:
            moved = False
            # try to move an entry whose home allows it to land on `free`
            for cand in range(free - self.H + 1, free):
                if cand < 0:
                    continue
                entry = self._read(cand)
                if entry.fp == 0:
                    continue
                cand_home = self.home_of(entry.fp)
                if free - cand_home < self.H:
                    # relocate cand -> free
                    self._write_fp(free, entry.fp)
                    self._write_atomic(free, entry.atomic)
                    self._write_fp(cand, 0)
                    self._write_atomic(cand, 0)
                    free = cand
                    moved = True
                    break
            if not moved:
                raise StoreError(
                    "hopscotch displacement failed (table too dense)"
                )
        return free


def client_scan_neighborhood(
    raw: bytes, fp: int
) -> Optional[TwoVersions]:
    """Client-side scan of a fetched neighborhood for ``fp``."""
    if len(raw) % ERDA_ENTRY_SIZE:
        raise StoreError("neighborhood read not a multiple of entry size")
    for i in range(len(raw) // ERDA_ENTRY_SIZE):
        entry = ERDA_ENTRY.unpack_from(raw, i * ERDA_ENTRY_SIZE)
        if entry.fp == fp:
            return TwoVersions.unpack(entry.atomic)
    return None
