"""Log-structured data pool (paper §4.2.1).

Objects are allocated strictly append-only ("data are updated
out-of-place"), which (a) makes concurrent allocation a pointer bump,
(b) guarantees a torn write can never damage an *older* version, and
(c) naturally retains multiple versions per object until log cleaning
reclaims them.

The pool is a window of an NVM device. The allocator state (head) is
server-volatile; recovery re-derives it by scanning (the scan order is
reconstructable because allocation is monotone). A DRAM-side allocation
journal (``allocations``) mirrors what a real server would keep in its
volatile index and is what the log cleaner and background verifier walk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PoolExhaustedError
from repro.mem.buffer import CACHELINE
from repro.nvm.device import NVMDevice

__all__ = ["Allocation", "LogPool"]


@dataclass
class Allocation:
    """DRAM-side record of one allocated object slot."""

    offset: int  # pool-relative
    size: int


class LogPool:
    """Append-only allocator over ``[base, base+size)`` of a device.

    Parameters
    ----------
    device, base, size:
        The NVM window backing the pool.
    pool_id:
        0 or 1 — version pointers embed this (two pools exist during log
        cleaning).
    align:
        Allocation alignment; defaults to the cacheline so objects never
        share a crash-atomicity unit.
    reserve_fraction:
        Fraction of capacity kept as the log-cleaning trigger threshold
        (§4.4: "triggered when the reserved space reaches a pre-defined
        threshold").
    """

    __slots__ = (
        "device",
        "base",
        "size",
        "pool_id",
        "align",
        "reserve_fraction",
        "head",
        "allocations",
        "garbage_bytes",
    )

    def __init__(
        self,
        device: NVMDevice,
        base: int,
        size: int,
        *,
        pool_id: int = 0,
        align: int = CACHELINE,
        reserve_fraction: float = 0.1,
    ) -> None:
        if align <= 0 or align & (align - 1):
            raise PoolExhaustedError(f"align must be a power of two, got {align}")
        if not 0.0 <= reserve_fraction < 1.0:
            raise PoolExhaustedError(
                f"reserve_fraction must be in [0,1), got {reserve_fraction}"
            )
        self.device = device
        self.base = base
        self.size = size
        self.pool_id = pool_id
        self.align = align
        self.reserve_fraction = reserve_fraction
        self.head = 0
        self.allocations: list[Allocation] = []
        #: Dead bytes known reclaimable by a cleaning pass (retired rot,
        #: invalidated writes) — a *trigger* input, not allocator state.
        self.garbage_bytes = 0

    # -- capacity ------------------------------------------------------------
    @property
    def used(self) -> int:
        return self.head

    @property
    def free(self) -> int:
        return self.size - self.head

    def needs_cleaning(self) -> bool:
        """True once free space has fallen into the reserve threshold,
        or enough known-dead bytes have piled up to fill the reserve
        (retired rot used to sit outside this trigger forever)."""
        threshold = self.size * self.reserve_fraction
        return self.free <= threshold or self.garbage_bytes >= threshold

    def add_garbage(self, nbytes: int) -> None:
        """Charge a retired/invalidated object's footprint as garbage."""
        self.garbage_bytes += (nbytes + self.align - 1) & ~(self.align - 1)

    # -- allocation -------------------------------------------------------------
    def allocate(self, nbytes: int) -> int:
        """Bump-allocate ``nbytes``; returns the pool-relative offset."""
        if nbytes <= 0:
            raise PoolExhaustedError(f"allocation size must be > 0, got {nbytes}")
        rounded = (nbytes + self.align - 1) & ~(self.align - 1)
        if self.head + rounded > self.size:
            raise PoolExhaustedError(
                f"pool {self.pool_id}: need {rounded} bytes, {self.free} free"
            )
        offset = self.head
        self.head += rounded
        self.allocations.append(Allocation(offset, nbytes))
        return offset

    def can_fit(self, nbytes: int) -> bool:
        rounded = (nbytes + self.align - 1) & ~(self.align - 1)
        return self.head + rounded <= self.size

    # -- addressing ---------------------------------------------------------------
    def abs_addr(self, offset: int) -> int:
        """Device-absolute address of a pool-relative offset."""
        if not 0 <= offset < self.size:
            raise PoolExhaustedError(
                f"pool {self.pool_id}: offset {offset} outside [0, {self.size})"
            )
        return self.base + offset

    # -- raw access (timing charged by callers) --------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        return self.device.read(self.abs_addr(offset), length)

    def write(self, offset: int, data: bytes) -> None:
        self.device.write(self.abs_addr(offset), data)

    def reset(self) -> None:
        """Recycle the pool (log cleaning retires and reuses it)."""
        self.head = 0
        self.allocations.clear()
        self.garbage_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LogPool id={self.pool_id} used={self.used}/{self.size} "
            f"objects={len(self.allocations)}>"
        )
