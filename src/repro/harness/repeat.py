"""Replicated runs: the paper's "each data value is the average of
5-run results" (§5.2), with confidence intervals.

:func:`run_replicated` executes one :class:`~repro.harness.runner.RunSpec`
under several seeds and aggregates throughput and latency percentiles
into mean ± 95% half-width. Simulation runs are deterministic per seed,
so replication measures *workload/jitter* variance, exactly like the
paper's repeated trials measure run-to-run noise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.analysis.stats import ci95
from repro.errors import ConfigError
from repro.harness.runner import RunResult, RunSpec, run_experiment

__all__ = ["Aggregate", "ReplicatedResult", "run_replicated"]


@dataclass(frozen=True)
class Aggregate:
    """Mean ± 95% half-width over replicas."""

    mean: float
    half_width: float
    samples: tuple[float, ...]

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


@dataclass
class ReplicatedResult:
    spec: RunSpec
    seeds: tuple[int, ...]
    results: list[RunResult]
    throughput_mops: Aggregate
    get_p50_ns: Aggregate
    put_p50_ns: Aggregate
    total_errors: int

    def describe(self) -> str:
        return (
            f"{self.spec.store} x{len(self.seeds)} seeds: "
            f"{self.throughput_mops} Mops/s, "
            f"get p50 {self.get_p50_ns} ns, put p50 {self.put_p50_ns} ns"
        )


def _agg(samples: Sequence[float]) -> Aggregate:
    clean = [s for s in samples if s == s]  # drop NaN (e.g. no GETs)
    if not clean:
        return Aggregate(float("nan"), float("nan"), tuple(samples))
    mean, half = ci95(clean)
    return Aggregate(mean, half, tuple(samples))


def run_replicated(
    spec: RunSpec, seeds: Sequence[int] = (42, 43, 44, 45, 46)
) -> ReplicatedResult:
    """Run ``spec`` once per seed (the paper averages 5 runs)."""
    if not seeds:
        raise ConfigError("need at least one seed")
    results = [run_experiment(replace(spec, seed=seed)) for seed in seeds]
    return ReplicatedResult(
        spec=spec,
        seeds=tuple(seeds),
        results=results,
        throughput_mops=_agg([r.throughput_mops for r in results]),
        get_p50_ns=_agg([r.latency.median("get") for r in results]),
        put_p50_ns=_agg([r.latency.median("put") for r in results]),
        total_errors=sum(r.errors for r in results),
    )
