"""Canned experiments — one function per table/figure in the paper.

Each function returns plain data (dicts keyed by system/x-value) and has
a ``render_*`` companion that prints the same rows the paper plots. The
``benchmarks/`` tree calls these; ``examples/`` demonstrates them at
smaller scale. Scale knobs (`ops`, sizes, client counts) default to
values that finish quickly; benchmarks can raise them via
``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Sequence

from repro.analysis.stats import fmt_mops, fmt_ns, improvement
from repro.analysis.tables import Table, banner
from repro.harness.crash import CrashReport, CrashSpec, run_crash_experiment
from repro.harness.runner import RunSpec, run_experiment
from repro.stores import STORES
from repro.workloads.ycsb import WORKLOADS, update_only, ycsb_c

__all__ = [
    "VALUE_SIZES",
    "FIG9_STORES",
    "fig1_write_latency",
    "render_fig1",
    "fig2_get_breakdown",
    "render_fig2",
    "fig9_throughput",
    "render_fig9",
    "fig10_scalability",
    "render_fig10",
    "fig11_log_cleaning",
    "render_fig11",
    "crash_consistency",
    "render_crash",
    "partition_scaling",
    "render_partition_scaling",
    "partition_recovery_sweep",
    "render_partition_recovery",
]

#: The paper sweeps value sizes 64 B – 4 KiB.
VALUE_SIZES = (64, 256, 1024, 2048, 4096)

#: Systems plotted in Figure 9/10.
FIG9_STORES = ("efactory", "efactory_nohr", "imm", "saw", "erda", "forca")

#: Systems in Figure 1 (durable remote write latency).
FIG1_STORES = ("ca", "saw", "imm", "rpc")


# --------------------------------------------------------------------------
# Figure 1: latency of writing to remote NVMM with different methods
# --------------------------------------------------------------------------

def fig1_write_latency(
    sizes: Sequence[int] = VALUE_SIZES,
    stores: Sequence[str] = FIG1_STORES,
    ops: int = 250,
    seed: int = 42,
) -> dict[str, dict[int, tuple[float, float]]]:
    """Median and p99 PUT latency, single client (the Fig 1 setup)."""
    out: dict[str, dict[int, tuple[float, float]]] = {}
    for store in stores:
        out[store] = {}
        for size in sizes:
            spec = RunSpec(
                store=store,
                workload=update_only(value_len=size, key_count=128),
                n_clients=1,
                ops_per_client=ops,
                warmup_ops=max(20, ops // 10),
                seed=seed,
            )
            result = run_experiment(spec)
            out[store][size] = (
                result.latency.median("put"),
                result.latency.p99("put"),
            )
    return out


def render_fig1(data: dict[str, dict[int, tuple[float, float]]]) -> str:
    lines = [banner("Figure 1: durable remote-write latency (median / p99)")]
    table = Table(["system", "size(B)", "median", "p99"])
    for store, by_size in data.items():
        for size, (p50, p99) in by_size.items():
            table.add(STORES[store].label, size, fmt_ns(p50), fmt_ns(p99))
    lines.append(table.render())
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Figure 2: GET latency breakdown (CRC share) for Erda and Forca
# --------------------------------------------------------------------------

def fig2_get_breakdown(
    sizes: Sequence[int] = VALUE_SIZES,
    stores: Sequence[str] = ("erda", "forca"),
    ops: int = 250,
    seed: int = 42,
) -> dict[str, dict[int, dict[str, float]]]:
    """Mean GET latency decomposed into CRC vs everything else.

    The CRC share uses the calibrated cost model (the same number the
    store charged during the run), mirroring the paper's phase
    instrumentation.
    """
    out: dict[str, dict[int, dict[str, float]]] = {}
    for store in stores:
        out[store] = {}
        for size in sizes:
            spec = RunSpec(
                store=store,
                workload=ycsb_c(value_len=size, key_count=256),
                n_clients=1,
                ops_per_client=ops,
                warmup_ops=max(20, ops // 10),
                seed=seed,
            )
            result = run_experiment(spec)
            total = result.latency.mean("get")
            config = STORES[store].config_factory()
            crc = config.crc_cost.cost_ns(size)
            out[store][size] = {
                "total_ns": total,
                "crc_ns": crc,
                "other_ns": total - crc,
                "crc_share": crc / total if total > 0 else float("nan"),
            }
    return out


def render_fig2(data: dict[str, dict[int, dict[str, float]]]) -> str:
    lines = [banner("Figure 2: GET latency breakdown (CRC share)")]
    table = Table(["system", "size(B)", "total", "crc", "other", "crc %"])
    for store, by_size in data.items():
        for size, row in by_size.items():
            table.add(
                STORES[store].label,
                size,
                fmt_ns(row["total_ns"]),
                fmt_ns(row["crc_ns"]),
                fmt_ns(row["other_ns"]),
                f"{row['crc_share'] * 100:.0f}%",
            )
    lines.append(table.render())
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Figure 9: end-to-end throughput with different value sizes (4 workloads)
# --------------------------------------------------------------------------

def fig9_throughput(
    workload_name: str,
    sizes: Sequence[int] = VALUE_SIZES,
    stores: Sequence[str] = FIG9_STORES,
    n_clients: int = 8,
    ops: int = 500,
    key_count: int = 1024,
    seed: int = 42,
) -> dict[str, dict[int, float]]:
    """Throughput (Mops/s) per system per value size for one workload."""
    factory = WORKLOADS[workload_name]
    out: dict[str, dict[int, float]] = {}
    for store in stores:
        out[store] = {}
        for size in sizes:
            spec = RunSpec(
                store=store,
                workload=factory(value_len=size, key_count=key_count),
                n_clients=n_clients,
                ops_per_client=ops,
                warmup_ops=max(30, ops // 10),
                seed=seed,
            )
            out[store][size] = run_experiment(spec).throughput_mops
    return out


def render_fig9(workload_name: str, data: dict[str, dict[int, float]]) -> str:
    lines = [banner(f"Figure 9 ({workload_name}): throughput vs value size")]
    sizes = sorted(next(iter(data.values())).keys())
    table = Table(["system"] + [f"{s}B" for s in sizes])
    for store, by_size in data.items():
        table.add(
            STORES[store].label, *(fmt_mops(by_size[s]) for s in sizes)
        )
    lines.append(table.render())
    # headline ratios the paper reports
    if "efactory" in data and "erda" in data and sizes:
        big = sizes[-1]
        for other in ("erda", "forca", "imm", "saw"):
            if other in data and data[other][big] > 0:
                ratio = data["efactory"][big] / data[other][big]
                lines.append(
                    f"eFactory vs {STORES[other].label} @ {big}B: {ratio:.2f}x"
                )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Figure 10: throughput with variable number of client processes
# --------------------------------------------------------------------------

def fig10_scalability(
    workload_name: str,
    client_counts: Sequence[int] = (1, 2, 4, 8, 16),
    stores: Sequence[str] = FIG9_STORES,
    value_len: int = 2048,
    key_len: int = 32,
    ops: int = 400,
    key_count: int = 1024,
    seed: int = 42,
) -> dict[str, dict[int, float]]:
    """Throughput vs client count (32 B keys / 2048 B values, §6.2)."""
    factory = WORKLOADS[workload_name]
    out: dict[str, dict[int, float]] = {}
    for store in stores:
        out[store] = {}
        for n in client_counts:
            spec = RunSpec(
                store=store,
                workload=factory(
                    value_len=value_len, key_len=key_len, key_count=key_count
                ),
                n_clients=n,
                ops_per_client=ops,
                warmup_ops=max(30, ops // 10),
                seed=seed,
            )
            out[store][n] = run_experiment(spec).throughput_mops
    return out


def render_fig10(workload_name: str, data: dict[str, dict[int, float]]) -> str:
    lines = [banner(f"Figure 10 ({workload_name}): throughput vs #clients")]
    counts = sorted(next(iter(data.values())).keys())
    table = Table(["system"] + [f"{n} cli" for n in counts])
    for store, by_n in data.items():
        table.add(STORES[store].label, *(fmt_mops(by_n[n]) for n in counts))
    lines.append(table.render())
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Figure 11: performance impact of log cleaning (eFactory)
# --------------------------------------------------------------------------

def fig11_log_cleaning(
    workload_names: Sequence[str] = ("YCSB-C", "YCSB-B", "YCSB-A", "update-only"),
    value_len: int = 2048,
    key_len: int = 32,
    n_clients: int = 4,
    ops: int = 400,
    key_count: int = 512,
    seed: int = 42,
) -> dict[str, dict[str, float]]:
    """Mean op latency with and without continuous log cleaning."""

    def keep_cleaning(env, setup) -> None:
        server = setup.server

        def loop() -> Generator[Any, Any, None]:
            while True:
                proc = server.trigger_cleaning()
                if proc is not None:
                    yield proc
                yield env.timeout(20_000.0)

        env.process(loop(), name="fig11-cleaning-loop")

    out: dict[str, dict[str, float]] = {}
    for wname in workload_names:
        factory = WORKLOADS[wname]
        spec = RunSpec(
            store="efactory",
            workload=factory(
                value_len=value_len, key_len=key_len, key_count=key_count
            ),
            n_clients=n_clients,
            ops_per_client=ops,
            warmup_ops=max(30, ops // 10),
            seed=seed,
        )
        normal = run_experiment(spec)
        cleaning = run_experiment(spec, post_setup=keep_cleaning)
        out[wname] = {
            "normal_ns": normal.latency.mean(),
            "cleaning_ns": cleaning.latency.mean(),
            "overhead": improvement(
                cleaning.latency.mean(), normal.latency.mean()
            ),
        }
    return out


def render_fig11(data: dict[str, dict[str, float]]) -> str:
    lines = [banner("Figure 11: log-cleaning latency impact (eFactory)")]
    table = Table(["workload", "normal", "during cleaning", "overhead"])
    for wname, row in data.items():
        table.add(
            wname,
            fmt_ns(row["normal_ns"]),
            fmt_ns(row["cleaning_ns"]),
            f"{row['overhead'] * 100:+.1f}%",
        )
    lines.append(table.render())
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Partition scaling (extension): aggregate throughput and recovery time
# of the sharded server core vs the paper's single-threaded design
# --------------------------------------------------------------------------

def partition_scaling(
    partition_counts: Sequence[int] = (1, 2, 4, 8),
    store: str = "efactory",
    value_len: int = 128,
    n_clients: int = 16,
    ops: int = 200,
    key_count: int = 512,
    seed: int = 42,
) -> dict[int, float]:
    """Aggregate update-only throughput (Mops/s) vs partition count.

    ``server_cores`` is pinned to 1 so every partition models exactly
    one core's worth of dispatch budget: the x-axis is cores-by-way-of-
    partitions, the paper's single-threaded server being x = 1.
    """
    out: dict[int, float] = {}
    for n in partition_counts:
        spec = RunSpec(
            store=store,
            workload=update_only(value_len=value_len, key_count=key_count),
            n_clients=n_clients,
            ops_per_client=ops,
            warmup_ops=max(20, ops // 10),
            seed=seed,
            config_overrides={"num_partitions": n, "server_cores": 1},
        )
        out[n] = run_experiment(spec).throughput_mops
    return out


def render_partition_scaling(data: dict[int, float]) -> str:
    lines = [banner("Partition scaling: update-only throughput vs #partitions")]
    table = Table(["partitions", "throughput", "speedup vs 1"])
    base = data.get(1)
    for n in sorted(data):
        speedup = f"{data[n] / base:.2f}x" if base else "-"
        table.add(n, fmt_mops(data[n]), speedup)
    lines.append(table.render())
    return "\n".join(lines)


def partition_recovery_sweep(
    partition_counts: Sequence[int] = (1, 2, 4, 8),
    n_keys: int = 256,
    value_len: int = 128,
    versions: int = 2,
) -> dict[int, float]:
    """Post-crash recovery wall-clock (ns) vs partition count.

    Shards recover concurrently (disjoint pools + table segments), so
    recovery time should approach the slowest shard's share of the data
    rather than the whole store's.
    """
    from repro.core.recovery import recover_bucketized
    from repro.sim.kernel import Environment
    from repro.stores import build_store
    from repro.workloads.keyspace import make_key, make_value

    out: dict[int, float] = {}
    for n in partition_counts:
        env = Environment()
        setup = build_store(
            "efactory",
            env,
            config_overrides={
                "pool_size": 4 << 20,
                "auto_clean": False,
                "num_partitions": n,
            },
            n_clients=1,
        ).start()
        client = setup.client()

        def load() -> Generator[Any, Any, None]:
            for v in range(versions):
                for i in range(n_keys):
                    yield from client.put(
                        make_key(i, 16), make_value(i, v, value_len)
                    )

        env.run(env.process(load(), name="preload"))
        env.run(until=env.now + 2_000_000)
        setup.server.stop()
        report = env.run(env.process(recover_bucketized(setup.server)))
        out[n] = report.duration_ns
    return out


def render_partition_recovery(data: dict[int, float]) -> str:
    lines = [banner("Partition scaling: recovery wall-clock vs #partitions")]
    table = Table(["partitions", "recovery", "vs 1 partition"])
    base = data.get(1)
    for n in sorted(data):
        rel = f"{data[n] / base:.2f}x" if base else "-"
        table.add(n, fmt_ns(data[n]), rel)
    lines.append(table.render())
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Crash consistency (the §4/§7 guarantees, made measurable)
# --------------------------------------------------------------------------

def crash_consistency(
    stores: Sequence[str] = ("efactory", "erda", "forca", "imm", "saw", "rpc", "ca"),
    seeds: Sequence[int] = (7, 11, 13),
    evict_probability: float = 0.35,
) -> dict[str, list[CrashReport]]:
    """Crash each store several times and audit its guarantees."""
    out: dict[str, list[CrashReport]] = {}
    for store in stores:
        out[store] = [
            run_crash_experiment(
                CrashSpec(
                    store=store, seed=seed, evict_probability=evict_probability
                )
            )
            for seed in seeds
        ]
    return out


def render_crash(data: dict[str, list[CrashReport]]) -> str:
    lines = [banner("Crash consistency audit (per-store, summed over seeds)")]
    table = Table(
        ["system", "torn exposed", "acked lost", "non-monotonic", "violations"]
    )
    for store, reports in data.items():
        torn = sum(r.torn_exposed for r in reports)
        lost = sum(r.durability_losses for r in reports)
        mono = sum(r.monotonicity_losses for r in reports)
        viol = sum(len(r.violations) for r in reports)
        table.add(STORES[store].label, torn, lost, mono, viol)
    lines.append(table.render())
    lines.append(
        "(CA torn exposure and Erda non-monotonicity are expected weaknesses;"
        " a non-zero 'violations' cell breaks an advertised guarantee.)"
    )
    return "\n".join(lines)
