"""Experiment harness: runner, metrics, crash/chaos oracles, canned figures."""

from repro.harness.chaos import ChaosReport, ChaosSpec, run_chaos_experiment
from repro.harness.crash import (
    CrashReport,
    CrashSpec,
    KeyAudit,
    run_crash_experiment,
)
from repro.harness.metrics import LatencyRecorder, LatencySummary, summarize
from repro.harness.repeat import Aggregate, ReplicatedResult, run_replicated
from repro.harness.runner import RunResult, RunSpec, run_experiment, size_pool_for

__all__ = [
    "Aggregate",
    "ChaosReport",
    "ChaosSpec",
    "CrashReport",
    "CrashSpec",
    "KeyAudit",
    "LatencyRecorder",
    "LatencySummary",
    "ReplicatedResult",
    "RunResult",
    "RunSpec",
    "run_chaos_experiment",
    "run_crash_experiment",
    "run_experiment",
    "run_replicated",
    "size_pool_for",
    "summarize",
]
