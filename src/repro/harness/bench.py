"""Amortization microbenchmarks (the PR-5 hot-path suite).

Four cells, each measured in *simulated* time so results are
deterministic and platform-independent:

* ``put`` — sequential client-active PUTs (one alloc RPC + one WRITE
  each): the seed's baseline PUT path.
* ``put_many`` — the doorbell-batched pipeline: one ``alloc_batch``
  SEND per ``put_batch`` items, value WRITEs as one doorbell chain,
  ``put_window`` chains in flight.
* ``get_uncached`` — the pure-RDMA hybrid read with the location cache
  disabled: two one-sided READs per hit.
* ``get_cached`` — the same reads against a warm location cache: one
  one-sided READ per hit.

Each cell runs at 1 and 4 partitions by default. The suite is consumed
by ``python -m repro bench`` (writes ``BENCH_pr5.json``) and by the
simulated-ratio assertions in ``benchmarks/test_microbench.py``.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Any

from repro.harness.metrics import LatencyRecorder
from repro.sim.kernel import Environment, Event
from repro.stores import StoreSetup, build_store
from repro.workloads.keyspace import make_key, make_value

__all__ = [
    "BenchSpec",
    "bench_cell",
    "run_bench_suite",
    "run_cluster_bench_suite",
    "run_parity_bench_suite",
]


@dataclass(frozen=True)
class BenchSpec:
    """One microbench cell."""

    bench: str  # put | put_many | get_uncached | get_cached
    partitions: int = 1
    ops: int = 256
    value_len: int = 64
    key_len: int = 16
    put_batch: int = 16
    put_window: int = 2
    bg_batch: int = 16
    config_overrides: dict = field(default_factory=dict)


def _deploy(spec: BenchSpec) -> tuple[Environment, StoreSetup]:
    env = Environment()
    obj = 64 + spec.key_len + spec.value_len
    overrides: dict[str, Any] = {
        # 2x headroom: preload + measured writes never exhaust the pool.
        "pool_size": max(32 << 20, obj * spec.ops * 4),
        "table_buckets": 2048,
        "auto_clean": False,
        "num_partitions": spec.partitions,
        "put_batch": spec.put_batch,
        "put_window": spec.put_window,
    }
    if spec.bench == "put_many":
        overrides["bg_batch"] = spec.bg_batch
    if spec.bench == "get_cached":
        overrides["loc_cache_size"] = spec.ops
    overrides.update(spec.config_overrides)
    setup = build_store(
        "efactory", env, config_overrides=overrides, n_clients=1
    ).start()
    return env, setup


def _settle(env: Environment, setup: StoreSetup, budget_ns: float = 50_000_000.0) -> None:
    """Let the background verifier drain so GETs hit durable objects."""
    deadline = env.now + budget_ns
    background = getattr(setup.server, "background", None)
    while env.now < deadline:
        env.run(until=min(deadline, env.now + 50_000.0))
        if background is None or background.backlog == 0:
            break


def bench_cell(spec: BenchSpec) -> dict[str, Any]:
    """Run one cell; returns a JSON-ready result row."""
    env, setup = _deploy(spec)
    client = setup.client(0)
    keys = [make_key(i, spec.key_len) for i in range(spec.ops)]
    values = [make_value(i, 0, spec.value_len) for i in range(spec.ops)]
    items = list(zip(keys, values))
    recorder = LatencyRecorder()

    def measure_puts() -> Generator[Event, Any, None]:
        for key, value in items:
            t0 = env.now
            yield from client.put(key, value)
            recorder.record("op", env.now - t0)

    def measure_put_many() -> Generator[Event, Any, None]:
        # One wave per put_batch chunk: the wave latency amortized over
        # its items is the per-item cost the pipeline achieves.
        step = spec.put_batch
        for i in range(0, len(items), step):
            wave = items[i : i + step]
            t0 = env.now
            yield from client.put_many(wave)
            per_item = (env.now - t0) / len(wave)
            for _ in wave:
                recorder.record("op", per_item)

    def measure_gets() -> Generator[Event, Any, None]:
        for key, value in items:
            t0 = env.now
            got = yield from client.get(key, size_hint=spec.value_len)
            recorder.record("op", env.now - t0)
            assert got == value

    if spec.bench in ("put", "put_many"):
        body = measure_puts if spec.bench == "put" else measure_put_many
        t_start = env.now
        env.run(env.process(body(), name="bench"))
        elapsed = env.now - t_start
    elif spec.bench in ("get_uncached", "get_cached"):
        def preload() -> Generator[Event, Any, None]:
            for key, value in items:
                yield from client.put(key, value)

        env.run(env.process(preload(), name="preload"))
        _settle(env, setup)
        if spec.bench == "get_cached":
            # Warm pass: populates the location cache (PUT already
            # noted the locations, but a read pass also exercises the
            # bucket-path fill and proves the hits are hits).
            env.run(env.process(measure_gets(), name="warm"))
            recorder = LatencyRecorder()
        t_start = env.now
        env.run(env.process(measure_gets(), name="bench"))
        elapsed = env.now - t_start
    else:
        raise ValueError(f"unknown bench {spec.bench!r}")

    setup.server.stop()
    fabric = setup.fabric
    verb_ops = fabric.fastpath_ops + fabric.fallback_ops
    row = {
        "bench": spec.bench,
        "partitions": spec.partitions,
        "ops": spec.ops,
        "value_len": spec.value_len,
        "elapsed_ns": elapsed,
        "ops_per_sec": spec.ops / elapsed * 1e9 if elapsed > 0 else 0.0,
        "p50_ns": recorder.percentile(50.0, "op"),
        "p99_ns": recorder.percentile(99.0, "op"),
        "events_scheduled": env.events_scheduled,
        "events_processed": env.events_processed,
        "fastpath_ops": fabric.fastpath_ops,
        "events_per_op": env.events_processed / verb_ops if verb_ops else 0.0,
    }
    if spec.bench.startswith("get"):
        stats = client.read_stats()
        row["cache_hits"] = stats.get("cache_hits", 0)
        row["cache_misses"] = stats.get("cache_misses", 0)
    if spec.bench == "put_many":
        row["put_batch"] = spec.put_batch
        row["put_window"] = spec.put_window
        row["doorbell_batches"] = client.ep.stats.get("doorbell_batches", 0)
        row["alloc_batch_rpcs"] = setup.server.rpc.served_by_op.get(
            "alloc_batch", 0
        )
    return row


def run_bench_suite(
    *,
    ops: int = 256,
    value_len: int = 64,
    partitions: tuple[int, ...] = (1, 4),
    put_batch: int = 16,
) -> dict[str, Any]:
    """The full 4-cell × partitions suite, JSON-ready."""
    rows = []
    for parts in partitions:
        for bench in ("put", "put_many", "get_uncached", "get_cached"):
            rows.append(
                bench_cell(
                    BenchSpec(
                        bench=bench,
                        partitions=parts,
                        ops=ops,
                        value_len=value_len,
                        put_batch=put_batch,
                    )
                )
            )
    return {
        "suite": "amortization",
        "ops": ops,
        "value_len": value_len,
        "put_batch": put_batch,
        "results": rows,
    }


# -- the PR-8 parity-overhead suite -------------------------------------------


def run_parity_bench_suite(
    *,
    ops: int = 256,
    value_len: int = 64,
    partitions: tuple[int, ...] = (1,),
) -> dict[str, Any]:
    """PUT throughput with the integrity tier off vs. on.

    The "on" cell pays the parity-delta XOR, ledger CRC, and coalesced
    parity/ledger/root flushes in the background verifier; the acked-PUT
    path itself is untouched, so the visible overhead is the extra NVM
    traffic contending with foreground persists. The PR-8 acceptance bar
    is <= 15% throughput loss (asserted in ``benchmarks/``).
    """
    from repro.core.config import integrity_overrides

    rows = []
    for parts in partitions:
        for label, overrides in (
            ("put_parity_off", {}),
            ("put_parity_on", integrity_overrides()),
        ):
            row = bench_cell(
                BenchSpec(
                    bench="put",
                    partitions=parts,
                    ops=ops,
                    value_len=value_len,
                    config_overrides=dict(overrides),
                )
            )
            row["bench"] = label
            rows.append(row)
        off = next(
            r for r in rows
            if r["bench"] == "put_parity_off" and r["partitions"] == parts
        )
        on = next(
            r for r in rows
            if r["bench"] == "put_parity_on" and r["partitions"] == parts
        )
        on["overhead_frac"] = (
            1.0 - on["ops_per_sec"] / off["ops_per_sec"]
            if off["ops_per_sec"] > 0
            else 0.0
        )
    return {
        "suite": "parity",
        "ops": ops,
        "value_len": value_len,
        "results": rows,
    }


# -- the PR-7 cluster suite ---------------------------------------------------


def _deploy_cluster(nodes: int, replication: int, ops: int, value_len: int):
    from repro.cluster import build_cluster

    env = Environment()
    obj = 64 + 16 + value_len
    setup = build_cluster(
        env,
        nodes=nodes,
        replication=replication,
        config_overrides={
            "pool_size": max(2 << 20, obj * ops * 4),
            "table_buckets": 2048,
            "auto_clean": False,
        },
        n_clients=1,
    ).start()
    return env, setup


def _cluster_put_cell(
    nodes: int, replication: int, ops: int, value_len: int
) -> dict[str, Any]:
    """Acked-PUT throughput at one replication factor: every put's
    latency includes the repl_wait ack gate when replication > 1."""
    env, setup = _deploy_cluster(nodes, replication, ops, value_len)
    client = setup.client(0)
    recorder = LatencyRecorder()

    def body() -> Generator[Event, Any, None]:
        for i in range(ops):
            key = make_key(i, 16)
            t0 = env.now
            yield from client.put(key, make_value(i, 0, value_len))
            recorder.record("op", env.now - t0)

    t_start = env.now
    env.run(env.process(body(), name="bench"))
    elapsed = env.now - t_start
    metrics = setup.cluster.metrics()
    setup.stop()
    return {
        "bench": "cluster_put",
        "nodes": nodes,
        "replication": replication,
        "ops": ops,
        "elapsed_ns": elapsed,
        "ops_per_sec": ops / elapsed * 1e9 if elapsed > 0 else 0.0,
        "p50_ns": recorder.percentile(50.0, "op"),
        "p99_ns": recorder.percentile(99.0, "op"),
        "shipped_records": metrics["shipped_records"],
        "repl_lag_bytes": metrics["repl_lag_bytes"],
    }


def _cluster_failover_cell(
    nodes: int, ops: int, value_len: int
) -> dict[str, Any]:
    """Failover time: preload, kill a primary, measure simulated time
    until a GET routed to that partition succeeds again."""
    env, setup = _deploy_cluster(nodes, 2, ops, value_len)
    client = setup.client(0)
    cluster = setup.cluster
    keys = [make_key(i, 16) for i in range(ops)]
    result: dict[str, Any] = {}

    def body() -> Generator[Event, Any, None]:
        for i, key in enumerate(keys):
            yield from client.put(key, make_value(i, 0, value_len))
        # A key owned by node 0 (the victim) measures the outage window.
        victim_parts = [
            r.part_id for r in cluster.router.routes if r.replicas[0] == 0
        ]
        probe = next(
            (
                (i, k)
                for i, k in enumerate(keys)
                if client._part_of(k) in victim_parts
            ),
            None,
        )
        cluster.kill_node(0)
        t_kill = env.now
        yield from cluster.await_stable(timeout_ns=50_000_000.0)
        if probe is not None:
            i, key = probe
            got = yield from client.get(key)
            assert got == make_value(i, 0, value_len)
        result["failover_ns"] = env.now - t_kill

    env.run(env.process(body(), name="bench"))
    result.update(
        {
            "bench": "cluster_failover",
            "nodes": nodes,
            "replication": 2,
            "preloaded": ops,
            "failovers": cluster.failovers,
            "promotions": cluster.promotions,
        }
    )
    setup.stop()
    return result


def _cluster_migration_cell(nodes: int, ops: int, value_len: int) -> dict[str, Any]:
    """Live-migration throughput: preload, move the fullest partition to
    another node, report keys/bytes moved per simulated second."""
    env, setup = _deploy_cluster(nodes, 2, ops, value_len)
    client = setup.client(0)
    cluster = setup.cluster
    result: dict[str, Any] = {}

    def body() -> Generator[Event, Any, None]:
        counts: dict[int, int] = {}
        for i in range(ops):
            key = make_key(i, 16)
            yield from client.put(key, make_value(i, 0, value_len))
            part = client._part_of(key)
            counts[part] = counts.get(part, 0) + 1
        part = max(counts, key=lambda p: counts[p])
        src = cluster.router.primary(part)
        dst = next(n.node_id for n in cluster.nodes if n.node_id != src)
        stats = yield from cluster.migrate(part, dst)
        result.update(stats)

    env.run(env.process(body(), name="bench"))
    dur = result.get("duration_ns", 0.0)
    result.update(
        {
            "bench": "cluster_migration",
            "nodes": nodes,
            "replication": 2,
            "keys_per_sec": result.get("moved", 0) / dur * 1e9 if dur else 0.0,
            "bytes_per_sec": result.get("bytes", 0) / dur * 1e9 if dur else 0.0,
        }
    )
    setup.stop()
    return result


def run_cluster_bench_suite(
    *,
    nodes: int = 3,
    ops: int = 128,
    value_len: int = 64,
) -> dict[str, Any]:
    """The cluster suite: replication-factor put scaling, failover time,
    and live-migration throughput (writes ``BENCH_pr7.json``)."""
    rows = []
    for rf in range(1, nodes + 1):
        rows.append(_cluster_put_cell(nodes, rf, ops, value_len))
    rows.append(_cluster_failover_cell(nodes, ops, value_len))
    rows.append(_cluster_migration_cell(nodes, ops, value_len))
    return {
        "suite": "cluster",
        "nodes": nodes,
        "ops": ops,
        "value_len": value_len,
        "results": rows,
    }
