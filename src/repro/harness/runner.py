"""Closed-loop multi-client experiment runner (the §5/§6 methodology).

One run = one fresh simulation: a server, ``n_clients`` closed-loop
client processes (each issues its next operation as soon as the previous
completes — "issuing operations as fast as possible", §6.1), a preload
phase that inserts every key once, an optional settle phase that lets
eFactory's background thread drain, then a measured phase. Latencies are
recorded per operation kind after per-client warmup; throughput is
measured ops over the measurement wall-span.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Any

from repro.errors import StoreError
from repro.harness.metrics import LatencyRecorder
from repro.rdma.rpc import RpcFault
from repro.sim.kernel import Environment, Event
from repro.sim.rng import RngRegistry
from repro.stores import StoreSetup, build_store
from repro.workloads.keyspace import make_key, make_value
from repro.workloads.ycsb import WorkloadSpec

__all__ = ["RunSpec", "RunResult", "run_experiment", "size_pool_for"]


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one experiment run."""

    store: str
    workload: WorkloadSpec
    n_clients: int = 8
    ops_per_client: int = 800
    warmup_ops: int = 100
    seed: int = 42
    settle_ns: float = 20_000_000.0  # generous: _settle exits early once the backlog drains
    config_overrides: dict = field(default_factory=dict)

    @property
    def total_measured_ops(self) -> int:
        return self.n_clients * self.ops_per_client


@dataclass
class RunResult:
    """Measured outcome of one run."""

    spec: RunSpec
    latency: LatencyRecorder
    measured_ops: int
    window_ns: float
    errors: int
    #: eFactory factor analysis: pure vs fallback reads (zeros elsewhere).
    #: ``rpc_only_reads`` counts reads that never attempted the pure
    #: path (hybrid read disabled) — not genuine fallbacks.
    pure_reads: int = 0
    fallback_reads: int = 0
    rpc_only_reads: int = 0

    @property
    def throughput_mops(self) -> float:
        """Throughput in million operations per second (simulated)."""
        if self.window_ns <= 0:
            return 0.0
        return self.measured_ops / self.window_ns * 1e3

    @property
    def kops(self) -> float:
        return self.throughput_mops * 1000.0


def size_pool_for(spec: RunSpec) -> int:
    """A pool large enough that the run never exhausts it (benchmarks
    compare schemes, not allocators; only Fig 11 exercises cleaning)."""
    w = spec.workload
    obj = 64 + w.key_len + w.value_len  # header + key + value, aligned-ish
    total_puts = (
        w.key_count  # preload
        + spec.n_clients * (spec.ops_per_client + spec.warmup_ops)  # worst case
    )
    return max(32 << 20, int(total_puts * obj * 1.5))


def run_experiment(spec: RunSpec, post_setup=None) -> RunResult:
    """Execute one run in a fresh simulation environment.

    ``post_setup(env, setup)``, if given, runs after preload/settle and
    before measurement — e.g. Fig 11 uses it to keep log cleaning
    running throughout the measured window.
    """
    env = Environment()
    rngs = RngRegistry(spec.seed)
    overrides: dict[str, Any] = {"pool_size": size_pool_for(spec)}
    if spec.store.startswith("efactory"):
        overrides["auto_clean"] = False  # Fig 11 triggers cleaning explicitly
    overrides.update(spec.config_overrides)

    setup = build_store(
        spec.store, env, config_overrides=overrides, n_clients=spec.n_clients
    ).start()

    w = spec.workload
    keys = [make_key(k, w.key_len) for k in range(w.key_count)]
    versions = [0] * w.key_count  # shared monotone version counter per key

    # -- preload ------------------------------------------------------------
    def preload() -> Generator[Event, Any, None]:
        client = setup.client(0)
        for kid in range(w.key_count):
            yield from client.put(keys[kid], make_value(kid, 0, w.value_len))

    env.run(env.process(preload(), name="preload"))
    _settle(env, setup, spec.settle_ns)
    if post_setup is not None:
        post_setup(env, setup)

    # -- measured phase ----------------------------------------------------------
    recorder = LatencyRecorder()
    state = {"errors": 0, "start": [float("inf")], "end": [0.0]}

    def client_proc(i: int) -> Generator[Event, Any, None]:
        client = setup.client(i)
        rng = rngs.stream(f"client{i}")
        ops = w.client_stream(rng, spec.warmup_ops + spec.ops_per_client)
        for j, op in enumerate(ops):
            yield from client.poll_notifications()
            measured = j >= spec.warmup_ops
            if measured:
                state["start"][0] = min(state["start"][0], env.now)
            t0 = env.now
            try:
                if op.kind == "put":
                    versions[op.key_id] += 1
                    value = make_value(op.key_id, versions[op.key_id], w.value_len)
                    yield from client.put(keys[op.key_id], value)
                elif op.kind == "rmw":
                    # YCSB-F: dependent read-then-write of the same key
                    yield from client.get(keys[op.key_id], size_hint=w.value_len)
                    versions[op.key_id] += 1
                    value = make_value(op.key_id, versions[op.key_id], w.value_len)
                    yield from client.put(keys[op.key_id], value)
                else:
                    yield from client.get(keys[op.key_id], size_hint=w.value_len)
            except (StoreError, RpcFault):
                state["errors"] += 1
                continue
            if measured:
                recorder.record(op.kind, env.now - t0)
        state["end"][0] = max(state["end"][0], env.now)

    procs = [
        env.process(client_proc(i), name=f"client{i}")
        for i in range(spec.n_clients)
    ]
    env.run(env.all_of(procs))
    setup.server.stop()

    pure = sum(getattr(c, "pure_reads", 0) for c in setup.clients)
    fallback = sum(getattr(c, "fallback_reads", 0) for c in setup.clients)
    rpc_only = sum(getattr(c, "rpc_only_reads", 0) for c in setup.clients)
    window = max(0.0, state["end"][0] - state["start"][0])
    return RunResult(
        spec=spec,
        latency=recorder,
        measured_ops=recorder.count(),
        window_ns=window,
        errors=state["errors"],
        pure_reads=pure,
        fallback_reads=fallback,
        rpc_only_reads=rpc_only,
    )


def _settle(env: Environment, setup: StoreSetup, settle_ns: float) -> None:
    """Let asynchronous machinery (eFactory's background thread) drain."""
    if settle_ns <= 0:
        return
    deadline = env.now + settle_ns
    background = getattr(setup.server, "background", None)
    while env.now < deadline:
        env.run(until=min(deadline, env.now + 50_000.0))
        if background is None or background.backlog == 0:
            break
