"""Latency and throughput accounting for experiment runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigError

__all__ = ["LatencyRecorder", "LatencySummary", "summarize"]


class LatencyRecorder:
    """Collects per-operation latencies keyed by operation kind."""

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: dict[str, list[float]] = {}

    def record(self, kind: str, latency_ns: float) -> None:
        if latency_ns < 0:
            raise ConfigError(f"negative latency {latency_ns}")
        self._samples.setdefault(kind, []).append(latency_ns)

    def merge(self, other: "LatencyRecorder") -> None:
        for kind, vals in other._samples.items():
            self._samples.setdefault(kind, []).extend(vals)

    def kinds(self) -> list[str]:
        return sorted(self._samples)

    def array(self, kind: Optional[str] = None) -> np.ndarray:
        """Samples for one kind, or all kinds pooled."""
        if kind is not None:
            return np.asarray(self._samples.get(kind, ()), dtype=np.float64)
        if not self._samples:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(
            [np.asarray(v, dtype=np.float64) for v in self._samples.values()]
        )

    def count(self, kind: Optional[str] = None) -> int:
        if kind is not None:
            return len(self._samples.get(kind, ()))
        return sum(len(v) for v in self._samples.values())

    def percentile(self, q: float, kind: Optional[str] = None) -> float:
        arr = self.array(kind)
        if arr.size == 0:
            return float("nan")
        return float(np.percentile(arr, q))

    def median(self, kind: Optional[str] = None) -> float:
        return self.percentile(50.0, kind)

    def p99(self, kind: Optional[str] = None) -> float:
        return self.percentile(99.0, kind)

    def p999(self, kind: Optional[str] = None) -> float:
        return self.percentile(99.9, kind)

    def mean(self, kind: Optional[str] = None) -> float:
        arr = self.array(kind)
        return float(arr.mean()) if arr.size else float("nan")


@dataclass(frozen=True)
class LatencySummary:
    """Percentile digest of one sample population."""

    count: int
    mean_ns: float
    p50_ns: float
    p95_ns: float
    p99_ns: float
    max_ns: float
    #: p99.9 — meaningful only for the thousand-client open-loop runs
    #: (closed-loop cells rarely collect enough samples for it).
    p999_ns: float = float("nan")

    @property
    def p50_us(self) -> float:
        return self.p50_ns / 1000.0

    @property
    def p99_us(self) -> float:
        return self.p99_ns / 1000.0


def summarize(recorder: LatencyRecorder, kind: Optional[str] = None) -> LatencySummary:
    arr = recorder.array(kind)
    if arr.size == 0:
        nan = float("nan")
        return LatencySummary(0, nan, nan, nan, nan, nan)
    return LatencySummary(
        count=int(arr.size),
        mean_ns=float(arr.mean()),
        p50_ns=float(np.percentile(arr, 50)),
        p95_ns=float(np.percentile(arr, 95)),
        p99_ns=float(np.percentile(arr, 99)),
        max_ns=float(arr.max()),
        p999_ns=float(np.percentile(arr, 99.9)),
    )
