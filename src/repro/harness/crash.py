"""Crash injection and the consistency oracle.

This harness turns the paper's consistency *claims* into checkable
facts. Values are self-describing (:mod:`repro.workloads.keyspace`), so
after a crash we can audit, per key, exactly which write survived:

* **integrity/atomicity** — a store that promises consistent reads must
  never expose a torn value after recovery (every recovered value parses
  and matches its key);
* **durability** — a store whose PUT ack means durable (RPC/SAW/IMM)
  must recover every acknowledged write (or something newer);
* **monotonic reads** — a store that guarantees reads never travel
  backwards across crashes (eFactory, §5.3: "refrains from
  non-monotonic reads") must recover, for every key, a version at least
  as new as any version a completed GET returned before the crash. Erda
  has no such guarantee — dirty data reaches NVM only by natural
  eviction — and the oracle quantifies exactly how often it loses
  already-read data (§7's criticism, reproduced).

The oracle distinguishes *violations* (a store breaking its own
advertised guarantee — always a bug) from *expected weaknesses* (CA
exposing torn data, Erda non-monotonicity), which it reports as counts.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.recovery import RecoveryReport, recover_bucketized, recover_erda
from repro.errors import MemoryAccessError, QPError, RDMAError, StoreError
from repro.kv.hopscotch import HopscotchTable
from repro.kv.objects import HEADER_SIZE, object_size, parse_header, parse_object
from repro.rdma.rpc import RpcFault
from repro.sim.kernel import Environment, Event
from repro.sim.rng import RngRegistry
from repro.stores import STORES, build_store
from repro.workloads.keyspace import make_key, make_value, parse_value

__all__ = [
    "CrashSpec",
    "KeyAudit",
    "CrashReport",
    "run_crash_experiment",
    "read_value_state",
]


@dataclass(frozen=True)
class CrashSpec:
    """One crash experiment."""

    store: str
    n_clients: int = 4
    key_count: int = 48
    key_len: int = 16
    value_len: int = 256
    #: Total completed operations across clients before the plug is pulled.
    ops_before_crash: int = 240
    read_fraction: float = 0.3
    seed: int = 7
    #: Probability each dirty cacheline survives by natural eviction.
    evict_probability: float = 0.5
    #: Tear non-atomic in-flight stores at 8-byte granularity instead of
    #: whole cachelines (the stricter, more realistic media model).
    tear_words: bool = False
    recover: bool = True


@dataclass
class KeyAudit:
    """Post-crash fate of one key."""

    key_id: int
    recovered_version: Optional[int]  # None = lost / absent
    torn: bool  # a value was present but failed the pattern check
    max_acked: int  # newest version whose PUT was acknowledged (-1: none)
    max_read: int  # newest version a completed GET returned (-1: none)


@dataclass
class CrashReport:
    spec: CrashSpec
    recovery: Optional[RecoveryReport]
    audits: list[KeyAudit]
    pre_crash_torn_reads: int
    completed_ops: int

    # guarantee checks --------------------------------------------------------
    @property
    def torn_exposed(self) -> int:
        return sum(1 for a in self.audits if a.torn)

    @property
    def durability_losses(self) -> int:
        """Keys whose newest *acknowledged* write did not survive."""
        return sum(
            1
            for a in self.audits
            if a.max_acked >= 0
            and (a.recovered_version is None or a.recovered_version < a.max_acked)
        )

    @property
    def monotonicity_losses(self) -> int:
        """Keys where recovery went behind a value a GET had returned."""
        return sum(
            1
            for a in self.audits
            if a.max_read >= 0
            and (a.recovered_version is None or a.recovered_version < a.max_read)
        )

    @property
    def violations(self) -> list[str]:
        """Breaches of the store's *advertised* guarantees."""
        spec = STORES[self.spec.store]
        out: list[str] = []
        if spec.consistent_get and self.torn_exposed:
            out.append(f"{self.torn_exposed} torn value(s) exposed after recovery")
        if spec.durable_put and self.durability_losses:
            out.append(f"{self.durability_losses} acknowledged write(s) lost")
        if self.spec.store.startswith("efactory") and self.monotonicity_losses:
            out.append(
                f"{self.monotonicity_losses} non-monotonic read(s) across the crash"
            )
        return out

    @property
    def ok(self) -> bool:
        return not self.violations


def run_crash_experiment(spec: CrashSpec) -> CrashReport:
    env = Environment()
    rngs = RngRegistry(spec.seed)
    obj = 64 + spec.key_len + spec.value_len
    overrides: dict[str, Any] = {
        "pool_size": max(
            8 << 20, (spec.key_count + spec.ops_before_crash * 2) * obj * 2
        )
    }
    if spec.store.startswith("efactory"):
        overrides["auto_clean"] = False
    setup = build_store(
        spec.store, env, config_overrides=overrides, n_clients=spec.n_clients
    ).start()
    # crash_node() consumes the crash RNG per in-flight write it finds;
    # the analytic fast path registers in-flight payloads on a slightly
    # different schedule, so keep this experiment on the full event path
    # to preserve the seed's bit-exact crash outcomes.
    setup.fabric.fastpath = False
    server = setup.server

    keys = [make_key(k, spec.key_len) for k in range(spec.key_count)]
    next_version = [0] * spec.key_count
    acked = [0] * spec.key_count  # preload counts as acked v0
    max_read = [-1] * spec.key_count
    state = {"completed": 0, "torn_reads": 0, "crashed": False}

    # -- preload + settle ------------------------------------------------------
    def preload() -> Generator[Event, Any, None]:
        c = setup.client(0)
        for kid in range(spec.key_count):
            yield from c.put(keys[kid], make_value(kid, 0, spec.value_len))

    env.run(env.process(preload(), name="preload"))
    background = getattr(server, "background", None)
    for _ in range(40):
        env.run(until=env.now + 50_000.0)
        if background is None or background.backlog == 0:
            break

    # -- concurrent clients until the crash ---------------------------------------
    def client_proc(i: int) -> Generator[Event, Any, None]:
        client = setup.client(i)
        rng = rngs.stream(f"crash-client{i}")
        while not state["crashed"]:
            kid = int(rng.integers(0, spec.key_count))
            is_read = rng.random() < spec.read_fraction
            try:
                if is_read:
                    value = yield from client.get(
                        keys[kid], size_hint=spec.value_len
                    )
                    parsed = parse_value(value)
                    if parsed is None or parsed[0] != kid:
                        state["torn_reads"] += 1
                    else:
                        max_read[kid] = max(max_read[kid], parsed[1])
                else:
                    next_version[kid] += 1
                    ver = next_version[kid]
                    yield from client.put(
                        keys[kid], make_value(kid, ver, spec.value_len)
                    )
                    acked[kid] = max(acked[kid], ver)
            except (StoreError, RpcFault, QPError, RDMAError):
                if state["crashed"]:
                    return
                continue
            state["completed"] += 1

    procs = [
        env.process(client_proc(i), name=f"crash-client{i}")
        for i in range(spec.n_clients)
    ]

    def controller() -> Generator[Event, Any, None]:
        while state["completed"] < spec.ops_before_crash:
            yield env.timeout(5_000.0)
        state["crashed"] = True
        server.stop()
        setup.fabric.crash_node(
            server.node,
            rngs.stream("crash"),
            spec.evict_probability,
            tear_words=spec.tear_words,
        )
        for p in procs:
            if p.is_alive:
                p.interrupt("crash")

    env.run(env.process(controller(), name="crash-controller"))
    env.run(until=env.now + 1.0)  # drain interrupt deliveries

    # -- recovery -------------------------------------------------------------------
    recovery: Optional[RecoveryReport] = None
    if spec.recover and spec.store != "ca":
        setup.fabric.restart_node(server.node)
        if spec.store == "erda":
            recovery = env.run(env.process(recover_erda(server)))
        else:
            recovery = env.run(env.process(recover_bucketized(server)))

    # -- audit (direct durable-state reads; no timing) ---------------------------------
    audits = []
    for kid in range(spec.key_count):
        value = read_value_state(server, keys[kid])
        torn = False
        recovered: Optional[int] = None
        if value is not None:
            parsed = parse_value(value)
            if parsed is None or parsed[0] != kid:
                torn = True
            else:
                recovered = parsed[1]
        audits.append(
            KeyAudit(
                key_id=kid,
                recovered_version=recovered,
                torn=torn,
                max_acked=acked[kid],
                max_read=max_read[kid],
            )
        )
    return CrashReport(
        spec=spec,
        recovery=recovery,
        audits=audits,
        pre_crash_torn_reads=state["torn_reads"],
        completed_ops=state["completed"],
    )


def read_value_state(server, key: bytes) -> Optional[bytes]:
    """What a fresh post-crash client would be served for ``key``.

    ``None`` means the key is absent. A malformed on-media object is
    returned as its raw bytes (not a synthetic sentinel) so the caller's
    pattern check audits it as exactly the torn value a client would
    see. Shared with the crash-point matrix
    (:mod:`repro.harness.crashmatrix`).
    """
    if isinstance(server.table, HopscotchTable):
        from repro.kv.hashtable import key_fingerprint

        found = server.table.lookup(key_fingerprint(key))
        if found is None or found[1].off1 is None:
            return None
        off = found[1].off1
        hdr = parse_header(server.pools[0].read(off, HEADER_SIZE))
        if hdr is None:
            return None
        raw = server.pools[0].read(off, object_size(hdr.klen, hdr.vlen))
        img = parse_object(raw)
        return img.value if img.well_formed else raw
    part = server.partition_for_key(key)
    found = part.lookup_slot(key)
    if found is None:
        return None
    _entry, cur, alt = found
    slot = cur or alt
    if slot is None:
        return None
    try:
        raw = part.pools[slot.pool].read(slot.offset, slot.size)
    except MemoryAccessError:
        return None  # rotten slot bits point outside the pool
    img = parse_object(raw)
    return img.value if img.well_formed else raw
