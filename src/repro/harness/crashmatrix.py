"""Deterministic crash-point matrix: crash *everywhere*, prove recovery.

The crash harness (:mod:`repro.harness.crash`) pulls the plug at one
workload-chosen instant per seed. That samples the crash space; it does
not *cover* it. This module enumerates the crash space systematically:

1. **Counting pass** — run a small, fully scripted workload (preload,
   mixed PUT/GET clients, an explicit log-cleaning cycle) with an armed
   but *empty* fault plan. The injector counts every visit to every
   injection site; those per-site operation counters are the universe of
   crash points (every persist/atomic-store boundary in the PUT
   pipeline, background verify, each log-cleaning stage, RPC dispatch).
2. **Crash pass** — for each selected ``(site, op_index)``, re-run the
   *identical* workload (same seed, same streams) with one deterministic
   rule: ``crash`` at exactly that visit. The injector's crash hook
   stops the server machinery, power-fails the node through the
   word-granular media model (in-flight stores tear at 8-byte
   granularity), and raises :class:`~repro.errors.PowerFailure`, which
   escalates out of ``env.run`` into the harness.
3. **Recover + audit** — restart the node, run the store's recovery,
   then audit every key against the advertised guarantees (torn
   exposure, durability of acked writes, monotonic reads) using the
   crash oracle's state reader.
4. **Idempotence** — run recovery a *second* time and require a
   byte-identical NVM image and a second report with zero rolled-back /
   lost keys: recovery must be safe to crash and re-run.
5. **Double crash** — a separate set of points crashes *inside
   recovery itself* (site ``recovery.step``), recovers again, and holds
   the result to the same bar.
6. **Replay** — each crash point is re-run from scratch under the same
   seed; the final NVM image must be byte-identical (the whole matrix is
   a pure function of ``(store, seed, workload shape)``).

Everything here is deterministic: crash rules carry ``probability=1``
so they draw no coins, which keeps the counting pass and every crash
pass on exactly the same event sequence up to the crash instant.
"""

from __future__ import annotations

import hashlib
from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.recovery import RecoveryReport, recover_bucketized, recover_erda
from repro.errors import (
    OperationTimeout,
    PowerFailure,
    QPError,
    RDMAError,
    StoreError,
)
from repro.faults.injector import FaultInjector, arm_store, disarm_store
from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.sites import crash_matrix_sites
from repro.harness.crash import read_value_state
from repro.rdma.rpc import RpcFault
from repro.sim.kernel import Environment, Event, Interrupt
from repro.sim.rng import RngRegistry
from repro.stores import STORES, build_store
from repro.workloads.keyspace import make_key, make_value, parse_value

__all__ = [
    "CrashMatrixSpec",
    "CrashPointResult",
    "CrashMatrixReport",
    "run_crash_matrix",
]

#: Server-side sites the matrix crashes at by default — every persist /
#: atomic-store boundary plus each background stage, derived from the
#: fault-site registry (``crash_point`` rows of
#: :data:`repro.faults.sites.SITES`, in registry order). ``recovery.step``
#: is handled separately (phase 5 above).
DEFAULT_SITES = crash_matrix_sites()


@dataclass(frozen=True)
class CrashMatrixSpec:
    """One crash-point matrix run (a pure function of these fields)."""

    store: str = "efactory"
    seed: int = 11
    n_clients: int = 2
    key_count: int = 12
    key_len: int = 16
    value_len: int = 96
    ops_per_client: int = 30
    read_fraction: float = 0.3
    #: Completed-op count at which the harness triggers a log-cleaning
    #: cycle (stores without a cleaner ignore it).
    clean_after_ops: int = 24
    evict_probability: float = 0.5
    sites: tuple[str, ...] = DEFAULT_SITES
    #: Crash points per site: the site's op counter is stride-sampled
    #: down to at most this many indexes.
    max_per_site: int = 12
    #: Double-crash points inside recovery (site ``recovery.step``).
    recovery_points: int = 6
    #: Re-run every crash point and require byte-identical state.
    replay: bool = True
    settle_ns: float = 10_000_000.0
    config_overrides: dict = field(default_factory=dict)


@dataclass
class CrashPointResult:
    """Verdict for one crash point."""

    site: str
    op_index: int
    phase: str  # "workload" | "recovery"
    crashed: bool  # the rule actually fired (False = site never reached)
    crash_summary: dict = field(default_factory=dict)
    recovery: Optional[dict] = None
    violations: list[str] = field(default_factory=list)
    weaknesses: list[str] = field(default_factory=list)
    idempotent: bool = True
    replay_identical: bool = True
    digest: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations and self.idempotent and self.replay_identical


@dataclass
class CrashMatrixReport:
    spec: CrashMatrixSpec
    site_op_counts: dict[str, int]
    results: list[CrashPointResult]

    @property
    def total_points(self) -> int:
        return sum(1 for r in self.results if r.crashed)

    @property
    def violations(self) -> list[str]:
        out = []
        for r in self.results:
            out.extend(
                f"{r.phase}:{r.site}#{r.op_index}: {v}" for v in r.violations
            )
        return out

    @property
    def non_idempotent(self) -> list[str]:
        return [
            f"{r.phase}:{r.site}#{r.op_index}"
            for r in self.results
            if r.crashed and not r.idempotent
        ]

    @property
    def replay_mismatches(self) -> list[str]:
        return [
            f"{r.phase}:{r.site}#{r.op_index}"
            for r in self.results
            if r.crashed and not r.replay_identical
        ]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def as_dict(self) -> dict[str, Any]:
        return {
            "store": self.spec.store,
            "seed": self.spec.seed,
            "site_op_counts": dict(self.site_op_counts),
            "total_points": self.total_points,
            "violations": self.violations,
            "non_idempotent": self.non_idempotent,
            "replay_mismatches": self.replay_mismatches,
            "points": [
                {
                    "site": r.site,
                    "op_index": r.op_index,
                    "phase": r.phase,
                    "crashed": r.crashed,
                    "violations": r.violations,
                    "weaknesses": r.weaknesses,
                    "idempotent": r.idempotent,
                    "replay_identical": r.replay_identical,
                    "digest": r.digest,
                }
                for r in self.results
            ],
        }


# -- one workload instance ------------------------------------------------------


class _Instance:
    """One fresh simulation of the scripted matrix workload.

    Carries everything the harness needs after the run: the (possibly
    crashed) environment, the oracle's per-key bookkeeping, and the
    armed injector.
    """

    def __init__(self, spec: CrashMatrixSpec, rules: tuple[FaultRule, ...]) -> None:
        self.spec = spec
        self.env = Environment()
        self.rngs = RngRegistry(spec.seed)
        obj = 64 + spec.key_len + spec.value_len
        overrides: dict[str, Any] = {
            "pool_size": max(
                4 << 20,
                (spec.key_count + spec.n_clients * spec.ops_per_client) * obj * 4,
            )
        }
        if spec.store.startswith("efactory"):
            overrides["auto_clean"] = False
        overrides.update(spec.config_overrides)
        self.setup = build_store(
            spec.store, self.env, config_overrides=overrides,
            n_clients=spec.n_clients,
        ).start()
        self.server = self.setup.server
        # The injector is armed only after the preload, but the matrix
        # must be bit-identical to the seed end to end — keep the whole
        # instance (preload, workload, recovery, replay) on the full
        # event path.
        self.setup.fabric.fastpath = False
        self.keys = [make_key(k, spec.key_len) for k in range(spec.key_count)]
        self.issued = [0] * spec.key_count
        self.acked = [0] * spec.key_count  # preload counts as acked v0
        self.max_read = [-1] * spec.key_count
        self.state = {"completed": 0, "crashed": False}
        self.crash_info: dict[str, Any] = {}
        self.rules = rules
        self.injector: Optional[FaultInjector] = None

    # -- the scripted workload ------------------------------------------------
    def run_workload(self) -> bool:
        """Drive the workload; returns True if a crash rule fired."""
        spec, env = self.spec, self.env

        def preload() -> Generator[Event, Any, None]:
            c = self.setup.client(0)
            for kid in range(spec.key_count):
                yield from c.put(self.keys[kid], make_value(kid, 0, spec.value_len))

        env.run(env.process(preload(), name="matrix-preload"))
        self._settle()

        # Arm only now: crash-point indexes count from the start of the
        # faulted window, not the preload.
        plan = FaultPlan("matrix", self.rules)
        self.injector = arm_store(self.setup, plan, rngs=self.rngs)
        self.injector.crash_hook = self._crash_hook

        procs = [
            env.process(self._client_proc(i), name=f"matrix-client{i}")
            for i in range(spec.n_clients)
        ]
        cleaner = env.process(self._cleaning_controller(), name="matrix-cleaner")

        # The whole armed window can crash: the clients' ops, the
        # settle (background verify/flush still runs), even stop().
        try:
            env.run(env.all_of(procs))
            if not self.state["crashed"]:
                if cleaner.is_alive:
                    cleaner.interrupt("done")
                self._settle()
                self.server.stop()
        except PowerFailure:
            pass
        for proc in procs + [cleaner]:
            if proc.is_alive:
                proc.interrupt("crash")
        self._drain(1_000.0)
        if self.state["crashed"]:
            return True
        disarm_store(self.setup)
        return False

    def _client_proc(self, i: int) -> Generator[Event, Any, None]:
        spec = self.spec
        client = self.setup.client(i)
        rng = self.rngs.stream(f"matrix.client{i}")
        mine = [k for k in range(spec.key_count) if k % spec.n_clients == i]
        for _ in range(spec.ops_per_client):
            if self.state["crashed"]:
                return
            kid = int(mine[int(rng.integers(len(mine)))]) if mine else 0
            is_read = rng.random() < spec.read_fraction
            try:
                if is_read:
                    value = yield from client.get(
                        self.keys[kid], size_hint=spec.value_len
                    )
                    parsed = parse_value(value)
                    if parsed is not None and parsed[0] == kid:
                        self.max_read[kid] = max(self.max_read[kid], parsed[1])
                else:
                    self.issued[kid] += 1
                    ver = self.issued[kid]
                    yield from client.put(
                        self.keys[kid], make_value(kid, ver, spec.value_len)
                    )
                    self.acked[kid] = max(self.acked[kid], ver)
            except Interrupt:
                # Exit cleanly so the run's all_of condition completes
                # instead of re-raising during the post-crash drain.
                return
            except (StoreError, RpcFault, QPError, RDMAError, OperationTimeout):
                if self.state["crashed"]:
                    return
                continue
            self.state["completed"] += 1

    def _cleaning_controller(self) -> Generator[Event, Any, None]:
        """Deterministically trigger one log-cleaning cycle mid-run."""
        spec, env = self.spec, self.env
        trigger = getattr(self.server, "trigger_cleaning", None)
        if trigger is None:
            return
        try:
            while (
                not self.state["crashed"]
                and self.state["completed"] < spec.clean_after_ops
            ):
                yield env.timeout(5_000.0)
        except Interrupt:
            return
        if not self.state["crashed"]:
            trigger()

    def _crash_hook(self, site: str) -> None:
        """Installed on the injector; runs inside the crashing process."""
        self.state["crashed"] = True
        self.crash_info["site"] = site
        self.crash_info["time"] = self.env.now
        # Active-process-safe: stop() skips the process we are inside of
        # (it dies by the PowerFailure below).
        self.server.stop()
        self.crash_info["summary"] = self.setup.fabric.crash_node(
            self.server.node,
            self.rngs.stream("matrix.crash"),
            self.spec.evict_probability,
            tear_words=True,
        )
        raise PowerFailure(f"crash point {site}")

    # -- recovery --------------------------------------------------------------
    def recover(self) -> Optional[RecoveryReport]:
        """One full recovery pass (restarts the node if it is down)."""
        if self.spec.store == "ca":
            return None
        if not self.server.node.alive:
            self.setup.fabric.restart_node(self.server.node)
        if self.spec.store == "erda":
            proc = self.env.process(recover_erda(self.server), name="matrix-recover")
        else:
            proc = self.env.process(
                recover_bucketized(self.server), name="matrix-recover"
            )
        return self.env.run(proc)

    def arm_recovery(self, rules: tuple[FaultRule, ...]) -> FaultInjector:
        """Arm a fresh plan for the recovery phase (double-crash)."""
        plan = FaultPlan("matrix", rules)
        inj = FaultInjector(self.env, plan, self.rngs)
        self.setup.fabric.injector = inj
        self.server.rpc.injector = inj
        if self.server.device is not None:
            self.server.device.injector = inj
        self.injector = inj
        return inj

    def recovery_crash_hook(self) -> None:
        """Install a hook that power-fails the node mid-recovery."""
        def hook(site: str) -> None:
            self.crash_info["site2"] = site
            self.crash_info["summary2"] = self.setup.fabric.crash_node(
                self.server.node,
                self.rngs.stream("matrix.crash2"),
                self.spec.evict_probability,
                tear_words=True,
            )
            raise PowerFailure(f"double crash at {site}")

        assert self.injector is not None
        self.injector.crash_hook = hook

    # -- plumbing ---------------------------------------------------------------
    def _settle(self) -> None:
        env = self.env
        deadline = env.now + self.spec.settle_ns
        background = getattr(self.server, "background", None)
        while env.now < deadline:
            env.run(until=min(deadline, env.now + 50_000.0))
            if background is None or background.backlog == 0:
                break

    def _drain(self, ns: float) -> None:
        """Advance time past interrupt deliveries, swallowing any
        residual crash escalation."""
        deadline = self.env.now + ns
        while True:
            try:
                self.env.run(until=deadline)
                return
            except PowerFailure:
                continue

    def digest(self) -> str:
        """Byte-identity fingerprint of the server's whole NVM image."""
        buf = self.server.device.buffer
        h = hashlib.sha256()
        h.update(bytes(buf.durable))
        h.update(bytes(buf.visible))
        return h.hexdigest()

    def audit(self) -> tuple[list[str], list[str]]:
        """The crash oracle, against the advertised guarantees."""
        flags = STORES[self.spec.store]
        violations: list[str] = []
        weaknesses: list[str] = []
        for kid in range(self.spec.key_count):
            value = read_value_state(self.server, self.keys[kid])
            torn, recovered = False, None
            if value is not None:
                parsed = parse_value(value)
                if parsed is None or parsed[0] != kid:
                    torn = True
                else:
                    recovered = parsed[1]
            if torn:
                msg = f"key {kid}: torn value exposed after recovery"
                (violations if flags.consistent_get else weaknesses).append(msg)
                continue
            if recovered is None or recovered < self.acked[kid]:
                msg = (
                    f"key {kid}: acked version {self.acked[kid]} lost "
                    f"(recovered {recovered})"
                )
                (violations if flags.durable_put else weaknesses).append(msg)
            if self.spec.store.startswith("efactory") and self.max_read[kid] >= 0:
                if recovered is None or recovered < self.max_read[kid]:
                    violations.append(
                        f"key {kid}: non-monotonic read across crash "
                        f"(read {self.max_read[kid]}, recovered {recovered})"
                    )
            if recovered is not None and recovered > self.issued[kid]:
                violations.append(
                    f"key {kid}: phantom version {recovered} "
                    f"(> issued {self.issued[kid]})"
                )
        return violations, weaknesses


# -- matrix orchestration ---------------------------------------------------------


def _crash_rule(site: str, op_index: int) -> tuple[FaultRule, ...]:
    # probability=1 -> no RNG stream is created for the rule, so the
    # crash run's event sequence matches the counting run exactly.
    return (
        FaultRule(
            kind="crash",
            site=site,
            after_op=op_index,
            before_op=op_index + 1,
            max_fires=1,
        ),
    )


def _sample(count: int, cap: int) -> list[int]:
    """Deterministic stride-sample of ``range(count)`` down to ``cap``."""
    if count <= 0:
        return []
    stride = max(1, -(-count // cap))  # ceil
    return list(range(0, count, stride))[:cap]


def _run_point(
    spec: CrashMatrixSpec, site: str, op_index: int
) -> CrashPointResult:
    """Crash at one workload point, recover, audit, check idempotence."""
    inst = _Instance(spec, _crash_rule(site, op_index))
    crashed = inst.run_workload()
    result = CrashPointResult(site=site, op_index=op_index, phase="workload",
                              crashed=crashed)
    if not crashed:
        return result
    result.crash_summary = dict(inst.crash_info.get("summary", {}))
    disarm_store(inst.setup)
    report = inst.recover()
    result.recovery = report.as_dict() if report is not None else None
    result.digest = inst.digest()
    if report is not None:
        second = inst.recover()
        result.idempotent = (
            inst.digest() == result.digest
            and second.keys_rolled_back == 0
            and second.keys_lost == 0
        )
    result.violations, result.weaknesses = inst.audit()
    return result


def _run_recovery_point(
    spec: CrashMatrixSpec,
    primary: tuple[str, int],
    op_index: int,
) -> CrashPointResult:
    """Crash at ``primary`` during the workload, then crash *again* at
    the ``op_index``-th recovery step; the third recovery must land the
    same place a clean one would."""
    inst = _Instance(spec, _crash_rule(*primary))
    if not inst.run_workload():
        return CrashPointResult(
            site="recovery.step", op_index=op_index, phase="recovery",
            crashed=False,
        )
    inst.arm_recovery(_crash_rule("recovery.step", op_index))
    inst.recovery_crash_hook()
    result = CrashPointResult(site="recovery.step", op_index=op_index,
                              phase="recovery", crashed=False)
    try:
        inst.recover()
    except PowerFailure:
        result.crashed = True
        inst._drain(1_000.0)
    disarm_store(inst.setup)
    if not result.crashed:
        # Recovery finished before reaching this step index: the site's
        # universe is smaller than requested. Not an error.
        return result
    result.crash_summary = dict(inst.crash_info.get("summary2", {}))
    report = inst.recover()
    result.recovery = report.as_dict() if report is not None else None
    result.digest = inst.digest()
    if report is not None:
        second = inst.recover()
        result.idempotent = (
            inst.digest() == result.digest
            and second.keys_rolled_back == 0
            and second.keys_lost == 0
        )
    result.violations, result.weaknesses = inst.audit()
    return result


def run_crash_matrix(spec: CrashMatrixSpec) -> CrashMatrixReport:
    """Enumerate and execute the full crash-point matrix for ``spec``."""
    # 1. counting pass: the universe of crash points
    counting = _Instance(spec, ())
    counting.run_workload()
    assert counting.injector is not None
    counts = counting.injector.site_op_counts()

    results: list[CrashPointResult] = []

    # 2-4. workload-phase crash points
    for site in spec.sites:
        for k in _sample(counts.get(site, 0), spec.max_per_site):
            point = _run_point(spec, site, k)
            if point.crashed and spec.replay:
                replay = _run_point(spec, site, k)
                point.replay_identical = replay.digest == point.digest
            results.append(point)

    # 5. double-crash points (crash during recovery of a mid-run crash)
    if spec.recovery_points > 0 and spec.store != "ca":
        primary = _pick_primary(spec, counts)
        if primary is not None:
            # count recovery steps for that primary crash
            probe = _Instance(spec, _crash_rule(*primary))
            if probe.run_workload():
                probe.arm_recovery(())
                probe.recover()
                rec_ops = probe.injector.site_op_counts().get("recovery.step", 0)
                for k in _sample(rec_ops, spec.recovery_points):
                    point = _run_recovery_point(spec, primary, k)
                    if point.crashed and spec.replay:
                        replay = _run_recovery_point(spec, primary, k)
                        point.replay_identical = replay.digest == point.digest
                    results.append(point)

    return CrashMatrixReport(spec=spec, site_op_counts=counts, results=results)


def _pick_primary(
    spec: CrashMatrixSpec, counts: dict[str, int]
) -> Optional[tuple[str, int]]:
    """The fixed mid-workload crash the double-crash points recover from:
    the middle visit of the busiest persist-path site."""
    best = None
    for site in ("nvm.persist", "nvm.flush", "nvm.store64"):
        n = counts.get(site, 0)
        if n and (best is None or n > counts.get(best, 0)):
            best = site
    if best is None:
        return None
    return best, counts[best] // 2
