"""Chaos harness: run a store under an armed fault plan and audit it.

One chaos run = one fresh simulation: deploy a store, preload its keys,
arm a :class:`~repro.faults.plan.FaultPlan`, drive a mixed closed-loop
workload through clients carrying a
:class:`~repro.faults.policy.RetryPolicy`, then disarm, let the
background machinery settle, and audit the surviving state through real
client GETs — the consistency oracle for the no-crash fault regime.

The oracle's invariants (per key, single writer per key):

* **intact** — the returned value parses as one of ours (stores that
  advertise consistent GETs must never serve torn bytes);
* **no lost acks** — the version read is at least the last *acknowledged*
  write (no crash happened, so every acked write must survive);
* **no phantoms** — the version read is at most the last *issued* write
  (an unacked attempt may land — at-least-once — but nothing the
  workload never wrote may appear).

Determinism: the whole run — fault schedule, retry counts, oracle
verdict — is a pure function of ``(store, plan, seed, workload shape)``;
:func:`run_chaos_experiment` is bit-reproducible.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import OperationTimeout, RDMAError, StoreError
from repro.faults.injector import arm_store, disarm_store
from repro.faults.plan import FaultPlan
from repro.faults.plans import shipped_plan
from repro.faults.policy import RetryPolicy
from repro.rdma.rpc import ERR_NOT_FOUND, RpcFault
from repro.sim.kernel import Environment, Event
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.stores import STORES, build_store
from repro.workloads.keyspace import make_key, make_value, parse_value

__all__ = ["ChaosSpec", "ChaosReport", "run_chaos_experiment"]

#: Fault kinds that corrupt the media itself (latent errors), as
#: opposed to transient transport/CPU faults. They change the audit
#: contract: acked data may be destroyed outright, so the advertised
#: behavior is a loud miss or an intact older version — never
#: silently-served rot.
MEDIA_FAULT_KINDS = frozenset({"nvm_bitrot", "nvm_torn_store"})


@dataclass(frozen=True)
class ChaosSpec:
    """Everything needed to reproduce one chaos run."""

    store: str = "efactory"
    plan: str = "qp-flap"  # shipped plan name (ignored when a plan object is passed)
    seed: int = 42
    n_clients: int = 2
    ops_per_client: int = 80
    key_count: int = 24
    key_len: int = 16
    value_len: int = 128
    put_fraction: float = 0.5
    settle_ns: float = 30_000_000.0
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    config_overrides: dict = field(default_factory=dict)
    plan_overrides: dict = field(default_factory=dict)
    trace: bool = False
    #: Arm the self-healing integrity tier (per-stripe parity + checksum
    #: ledger + integrity tree) with the shipped defaults. Explicit
    #: ``config_overrides`` keys still win.
    parity: bool = False
    #: Cluster shape. ``nodes=1, replication=1`` (the default) runs the
    #: classic single-server harness with bit-identical event order.
    nodes: int = 1
    replication: int = 1
    cluster_overrides: dict = field(default_factory=dict)
    #: Optional live migration racing the faulted window:
    #: ``(part_id, dst_node, at_ns)`` with ``at_ns`` relative to arming.
    migration: Optional[tuple] = None


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    spec: ChaosSpec
    plan_name: str
    attempted_ops: int
    completed_ops: int
    failed_ops: int
    #: The injected fault schedule, in firing order (comparable tuples:
    #: time, site, kind, rule, op-index, partition).
    fault_schedule: list[tuple]
    fault_counts: dict[str, int]
    #: Aggregated client resilience counters (retries, timeouts, ...).
    resilience: dict[str, int]
    #: Advertised-guarantee violations found by the post-run audit.
    violations: list[str]
    #: Observed weaknesses that the store never promised to avoid.
    weaknesses: list[str]
    audited_keys: int
    degraded_reads: int
    wall_ns: float
    trace_counts: dict[str, int] = field(default_factory=dict)
    #: Online-scrubber counters (empty when the store has no scrubber).
    scrub: dict[str, int] = field(default_factory=dict)
    #: Repair-outcome accounting under media faults: how each detected
    #: corruption was resolved (reconstructed from parity, fetched from
    #: a replica, rolled back to an older version, or cleared), plus the
    #: number of media faults actually injected.
    repair: dict[str, int] = field(default_factory=dict)
    #: Integrity-tier counters (parity/ledger maintenance; empty when
    #: the tier is off).
    integrity: dict[str, int] = field(default_factory=dict)
    #: Cluster metrics (failovers, promotions, shipping; empty when the
    #: run was single-node).
    cluster: dict[str, Any] = field(default_factory=dict)
    #: Stats of the migration raced against the faults, if any.
    migration: dict[str, Any] = field(default_factory=dict)

    @property
    def availability(self) -> float:
        if self.attempted_ops == 0:
            return 1.0
        return self.completed_ops / self.attempted_ops

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, Any]:
        return {
            "store": self.spec.store,
            "plan": self.plan_name,
            "seed": self.spec.seed,
            "attempted_ops": self.attempted_ops,
            "completed_ops": self.completed_ops,
            "failed_ops": self.failed_ops,
            "availability": self.availability,
            "faults_injected": len(self.fault_schedule),
            "fault_counts": dict(self.fault_counts),
            "resilience": dict(self.resilience),
            "violations": list(self.violations),
            "weaknesses": list(self.weaknesses),
            "audited_keys": self.audited_keys,
            "degraded_reads": self.degraded_reads,
            "wall_ns": self.wall_ns,
            "scrub": dict(self.scrub),
            "repair": dict(self.repair),
            "integrity": dict(self.integrity),
            "cluster": dict(self.cluster),
            "migration": dict(self.migration),
        }


def _pool_size_for(spec: ChaosSpec) -> int:
    obj = 64 + spec.key_len + spec.value_len
    total_puts = spec.key_count + spec.n_clients * spec.ops_per_client
    if spec.nodes > 1:
        # A cluster allocates nodes x partitions x 2 pools; keep each
        # small (every key fits many times over — the floor below is
        # already 4x the worst-case append volume).
        return max(2 << 20, int(total_puts * obj * 4))
    # retries can allocate more than once per PUT; leave ample headroom
    return max(32 << 20, int(total_puts * obj * 4))


def run_chaos_experiment(
    spec: ChaosSpec, plan: Optional[FaultPlan] = None
) -> ChaosReport:
    """Execute one chaos run in a fresh simulation environment."""
    env = Environment()
    rngs = RngRegistry(spec.seed)
    tracer = Tracer(env) if spec.trace else None
    plan = plan if plan is not None else shipped_plan(spec.plan, **spec.plan_overrides)
    media_plan = any(rule.kind in MEDIA_FAULT_KINDS for rule in plan.rules)

    cluster_mode = spec.nodes > 1 or spec.replication > 1
    if cluster_mode and spec.store != "efactory":
        raise StoreError("cluster chaos runs require the efactory store")

    overrides: dict[str, Any] = {"pool_size": _pool_size_for(spec)}
    if spec.store.startswith("efactory"):
        overrides["auto_clean"] = False
        if media_plan:
            # Media faults need the online scrubber: without it the
            # durability-flag shortcut would serve rot forever.
            overrides["scrub_interval_ns"] = 2_000.0
    if spec.parity:
        from repro.core.config import integrity_overrides

        overrides.update(integrity_overrides())
    overrides.update(spec.config_overrides)
    if cluster_mode:
        from repro.cluster import build_cluster

        setup = build_cluster(
            env,
            nodes=spec.nodes,
            replication=spec.replication,
            config_overrides=overrides,
            cluster_overrides=dict(spec.cluster_overrides),
            n_clients=spec.n_clients,
        ).start()
    else:
        setup = build_store(
            spec.store, env, config_overrides=overrides, n_clients=spec.n_clients
        ).start()
    for client in setup.clients:
        client.enable_resilience(
            spec.policy, rngs.stream(f"resilience.{client.name}"), tracer=tracer
        )

    keys = [make_key(k, spec.key_len) for k in range(spec.key_count)]
    # Single writer per key: key k belongs to client k % n_clients, so
    # "last acked version" is well-defined without cross-client ordering.
    issued = [0] * spec.key_count
    acked = [0] * spec.key_count

    # -- preload (faults not armed yet: the baseline state is healthy) ------
    def preload() -> Generator[Event, Any, None]:
        client = setup.client(0)
        for kid in range(spec.key_count):
            yield from client.put(keys[kid], make_value(kid, 0, spec.value_len))

    env.run(env.process(preload(), name="chaos-preload"))
    _settle(env, setup, spec.settle_ns)

    # -- the faulted window --------------------------------------------------
    injector = arm_store(setup, plan, rngs=rngs, tracer=tracer)
    stats = {"attempted": 0, "completed": 0, "failed": 0}
    t_armed = env.now

    def client_proc(i: int) -> Generator[Event, Any, None]:
        client = setup.client(i)
        rng = rngs.stream(f"chaos.client{i}")
        my_keys = [k for k in range(spec.key_count) if k % spec.n_clients == i]
        for _ in range(spec.ops_per_client):
            yield from client.poll_notifications()
            do_put = bool(my_keys) and rng.random() < spec.put_fraction
            stats["attempted"] += 1
            try:
                if do_put:
                    kid = int(my_keys[int(rng.integers(len(my_keys)))])
                    issued[kid] += 1
                    ver = issued[kid]
                    yield from client.put(
                        keys[kid], make_value(kid, ver, spec.value_len)
                    )
                    acked[kid] = max(acked[kid], ver)
                else:
                    kid = int(rng.integers(spec.key_count))
                    yield from client.get(keys[kid], size_hint=spec.value_len)
            except (StoreError, RDMAError, OperationTimeout):
                stats["failed"] += 1
                continue
            stats["completed"] += 1

    procs = [
        env.process(client_proc(i), name=f"chaos-client{i}")
        for i in range(spec.n_clients)
    ]
    migration_stats: dict[str, Any] = {}
    if spec.migration is not None and cluster_mode:
        mig_part, mig_dst, mig_at = spec.migration

        def migration_proc() -> Generator[Event, Any, None]:
            yield env.timeout(mig_at)
            stats = yield from setup.cluster.migrate(int(mig_part), int(mig_dst))
            migration_stats.update(stats)

        procs.append(env.process(migration_proc(), name="chaos-migration"))
    env.run(env.all_of(procs))
    wall_ns = env.now - t_armed

    # -- disarm, heal, settle -------------------------------------------------
    disarm_store(setup)
    for client in setup.clients:
        if hasattr(client, "reset_endpoints"):
            client.reset_endpoints()  # every per-node QP
        else:
            client.ep.reset()  # clear any residual QP error state
    if cluster_mode:
        # Let in-flight promotions/migrations resolve before auditing.
        env.run(
            env.process(
                setup.cluster.await_stable(spec.settle_ns or 5_000_000.0),
                name="chaos-await-stable",
            )
        )
    # Under a media plan, also wait for two full scrubber laps so every
    # entry has provably been examined *after* the last rot landed.
    _settle(env, setup, spec.settle_ns, scrub_laps=2 if media_plan else 0)

    # -- audit through real client GETs --------------------------------------
    # Raw slot reads would misreport legitimately-invalidated versions
    # (publish-on-alloc indexes not-yet-durable objects); the advertised
    # guarantee is about what GET *returns*, so that is what we check.
    consistent = STORES[spec.store].consistent_get
    scrubber = getattr(setup.server, "scrubber", None)
    scrub_active = scrubber is not None and getattr(scrubber, "active", False)
    violations: list[str] = []
    weaknesses: list[str] = []

    def audit() -> Generator[Event, Any, None]:
        client = setup.client(0)
        for kid in range(spec.key_count):
            try:
                value = yield from client.get(keys[kid], size_hint=spec.value_len)
            except (RpcFault, StoreError, RDMAError) as exc:
                code = getattr(exc, "code", "")
                problem = f"key {kid}: GET failed after faults cleared ({code or exc})"
                if isinstance(exc, RpcFault) and code == ERR_NOT_FOUND:
                    problem = f"key {kid}: lost (not found after faults cleared)"
                # Media rot can destroy every version of a key; the
                # advertised behavior is then exactly this loud miss.
                (weaknesses if media_plan else violations).append(problem)
                continue
            parsed = parse_value(value)
            if parsed is None or parsed[0] != kid:
                msg = f"key {kid}: torn or foreign value returned"
                # With a scrubber the store claims rot is repaired or
                # surfaced, never served — so torn bytes stay a
                # violation. Stores without one never promised that.
                strict = consistent and (not media_plan or scrub_active)
                (violations if strict else weaknesses).append(msg)
                continue
            ver = parsed[1]
            if ver < acked[kid]:
                msg = f"key {kid}: acked version {acked[kid]} lost (read {ver})"
                # Rolling back to an intact older version *is* the
                # scrubber's advertised repair under media faults.
                (weaknesses if media_plan else violations).append(msg)
            elif ver > issued[kid]:
                violations.append(
                    f"key {kid}: phantom version {ver} (> issued {issued[kid]})"
                )

    env.run(env.process(audit(), name="chaos-audit"))
    cluster_metrics: dict[str, Any] = {}
    if cluster_mode:
        cluster_metrics = setup.cluster.metrics()
        setup.stop()
    else:
        setup.server.stop()

    resilience: dict[str, int] = {}
    for client in setup.clients:
        for name, count in client.resilience.snapshot().items():
            resilience[name] = resilience.get(name, 0) + count
    degraded = sum(getattr(c, "degraded_reads", 0) for c in setup.clients)

    # -- repair-outcome accounting (every node's scrubber + device) -----------
    all_servers = list(getattr(setup, "servers", None) or [setup.server])
    repair: dict[str, int] = {}
    integrity: dict[str, int] = {}
    if media_plan:
        totals: dict[str, int] = {}
        for srv in all_servers:
            sc = getattr(srv, "scrubber", None)
            if sc is None:
                continue
            for name, count in sc.stats().items():
                totals[name] = totals.get(name, 0) + count
        repair = {
            "media_faults": sum(s.device.media_faults for s in all_servers),
            "detected": totals.get("corrupt_found", 0),
            "reconstructed": totals.get("reconstructed", 0),
            "replica_fetched": totals.get("replica_fetched", 0),
            "rolled_back": totals.get("repaired", 0),
            "cleared": totals.get("unrepairable", 0),
            "parity_stale": totals.get("parity_stale", 0),
            "tree_rejects": sum(
                getattr(c, "tree_rejects", 0) for c in setup.clients
            ),
        }
    for srv in all_servers:
        for part in getattr(srv, "partitions", ()):
            if getattr(part, "integrity", None) is None:
                continue
            for name, count in part.integrity.stats().items():
                integrity[name] = integrity.get(name, 0) + count

    return ChaosReport(
        spec=spec,
        plan_name=plan.name,
        attempted_ops=stats["attempted"],
        completed_ops=stats["completed"],
        failed_ops=stats["failed"],
        fault_schedule=injector.schedule(),
        fault_counts=injector.counts(),
        resilience=resilience,
        violations=violations,
        weaknesses=weaknesses,
        audited_keys=spec.key_count,
        degraded_reads=degraded,
        wall_ns=wall_ns,
        trace_counts=tracer.counts() if tracer is not None else {},
        scrub=dict(scrubber.stats()) if scrubber is not None else {},
        repair=repair,
        integrity=integrity,
        cluster=cluster_metrics,
        migration=migration_stats,
    )


def _settle(
    env: Environment, setup: Any, settle_ns: float, *, scrub_laps: int = 0
) -> None:
    """Let asynchronous machinery (verifier, scrubber) drain.

    ``scrub_laps`` additionally requires the scrubber (when running) to
    complete that many further passes over the table before settling.
    """
    if settle_ns <= 0:
        return
    deadline = env.now + settle_ns
    # Cluster setups expose every node's server; settle against the live
    # ones only (a killed node's verifier backlog can never drain).
    servers = [
        s
        for s in (getattr(setup, "servers", None) or [setup.server])
        if getattr(s.node, "alive", True)
    ]
    backgrounds = [
        b for s in servers if (b := getattr(s, "background", None)) is not None
    ]
    scrubbers = [
        sc
        for s in servers
        if (sc := getattr(s, "scrubber", None)) is not None
        and getattr(sc, "active", False)
    ]
    want_laps = None
    if scrub_laps and scrubbers:
        want_laps = [sc.laps + scrub_laps for sc in scrubbers]
    while env.now < deadline:
        env.run(until=min(deadline, env.now + 50_000.0))
        if any(b.backlog for b in backgrounds):
            continue
        if want_laps is not None and any(
            sc.laps < want for sc, want in zip(scrubbers, want_laps)
        ):
            continue
        break
