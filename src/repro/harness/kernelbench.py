"""Kernel microbenchmarks: wheel-scheduler speedup and fast-path equivalence.

Three wall-clock cells compare the live kernel (timer wheel + timeout
freelist + fused waiter dispatch, :mod:`repro.sim.kernel`) and the
analytic verb fast path against the seed design
(:class:`~repro.sim.heapkernel.HeapEnvironment`: one binary heap, a
fresh ``Timeout`` per call, full event simulation for every verb):

* ``drain``   — schedule N timeouts at scattered offsets, drain the
  queue: raw scheduler insert/pop throughput.
* ``ping``    — one process yielding N sequential timeouts: the
  "timeout then resume one waiter" hot pattern.
* ``verb``    — the macro cell and headline gate: CQ-posted one-sided
  WRITEs, one at a time. The baseline runs the seed configuration
  (heap scheduler, event-path verbs, ~8 events per op); the candidate
  runs the wheel scheduler with the analytic fast path (~3 events per
  op). Both simulate identical nanoseconds — ``sim_identical`` is
  asserted — so the ratio is purely simulator speed.

The raw scheduler cells move little in CPython (the seed heap is the
C-implemented ``heapq``; a Python-level wheel only wins on constant
factors); the macro cell is where the refactor pays, by *retiring ops
in fewer events*. CI gates on the macro ratio and on equivalence.

The equivalence harness re-runs the fig1/fig2 workloads with the fast
path on and off and asserts the measured latency samples are *exactly*
equal (``ns == ns``, no tolerance) — the bit-identical-defaults
invariant DESIGN.md §11 documents.

Consumed by ``python -m repro bench-kernel`` (writes ``BENCH_pr6.json``)
and the CI ``bench-kernel`` job.
"""

from __future__ import annotations

import time
from collections.abc import Generator
from typing import Any, Callable

import numpy as np

from repro.harness.runner import RunSpec, run_experiment
from repro.nvm.device import NVMDevice
from repro.rdma.cq import CompletionQueue, post_write
from repro.rdma.fabric import Fabric
from repro.sim.heapkernel import HeapEnvironment
from repro.sim.kernel import Environment, Event
from repro.workloads.ycsb import update_only, ycsb_c

__all__ = [
    "run_kernel_suite",
    "run_equivalence_check",
    "EQUIVALENCE_CASES",
]

#: (store, workload factory, value size) cells the equivalence harness
#: replays — the fig1 (durable-write) and fig2 (GET breakdown) setups.
EQUIVALENCE_CASES: tuple[tuple[str, str, int], ...] = (
    ("ca", "update_only", 64),
    ("saw", "update_only", 1024),
    ("imm", "update_only", 64),
    ("rpc", "update_only", 1024),
    ("erda", "ycsb_c", 64),
    ("forca", "ycsb_c", 1024),
)

_WORKLOADS = {"update_only": update_only, "ycsb_c": ycsb_c}


# -- micro cells ---------------------------------------------------------------

def _bench_drain(make_env: Callable[[], Environment], n: int) -> dict[str, float]:
    """Insert ``n`` timeouts at scattered offsets, then drain."""
    env = make_env()
    x = 0x2545F491  # deterministic LCG so both kernels see the same offsets
    t0 = time.perf_counter()
    for _ in range(n):
        x = (1103515245 * x + 12345) & 0x7FFFFFFF
        # Mostly within the ~131 us wheel window (like real verb/persist
        # delays), with a tail spilling into the overflow heap.
        env.timeout(float(x % 160_000))
    env.run()
    wall = time.perf_counter() - t0
    return {"events": env.events_processed, "events_per_sec": n / wall}


def _bench_ping(make_env: Callable[[], Environment], n: int) -> dict[str, float]:
    """One process yielding ``n`` sequential timeouts."""
    env = make_env()

    def proc() -> Generator[Event, Any, None]:
        for _ in range(n):
            yield env.timeout(100.0)

    t0 = time.perf_counter()
    env.run(env.process(proc(), name="ping"))
    wall = time.perf_counter() - t0
    return {
        "events": env.events_processed,
        "events_per_sec": env.events_processed / wall,
    }


def _bench_verbs(
    make_env: Callable[[], Environment], n: int, fastpath: bool
) -> dict[str, float]:
    """CQ-posted one-sided WRITEs, one outstanding at a time."""
    env = make_env()
    fabric = Fabric(env)
    server = fabric.create_node("s", device=NVMDevice(env, 1 << 20))
    client = fabric.create_node("c")
    ep = fabric.connect(client, server)
    mr = server.register_memory(0, 1 << 20)
    fabric.fastpath = fastpath
    cq = CompletionQueue(env)
    payload = b"\x42" * 64

    def proc() -> Generator[Event, Any, None]:
        for i in range(n):
            post_write(ep, cq, mr.rkey, (i % 1024) * 64, payload)
            yield from cq.wait(1)

    t0 = time.perf_counter()
    env.run(env.process(proc(), name="verbs"))
    wall = time.perf_counter() - t0
    return {
        "sim_ns": env.now,
        "ops_per_sec": n / wall,
        "events_per_op": env.events_processed / n,
        "fastpath_ops": fabric.fastpath_ops,
    }


def run_kernel_suite(
    *, drain_events: int = 60_000, ping_events: int = 30_000, verb_ops: int = 4_000
) -> dict[str, Any]:
    """All three cells on both kernels; JSON-ready."""
    heap = HeapEnvironment
    wheel = Environment
    drain = {"heap": _bench_drain(heap, drain_events), "wheel": _bench_drain(wheel, drain_events)}
    ping = {"heap": _bench_ping(heap, ping_events), "wheel": _bench_ping(wheel, ping_events)}
    verb = {
        "baseline": _bench_verbs(heap, verb_ops, fastpath=False),
        "fast": _bench_verbs(wheel, verb_ops, fastpath=True),
    }
    return {
        "suite": "kernel",
        "drain": {**drain, "ratio": drain["wheel"]["events_per_sec"] / drain["heap"]["events_per_sec"]},
        "ping": {**ping, "ratio": ping["wheel"]["events_per_sec"] / ping["heap"]["events_per_sec"]},
        "verb": {
            **verb,
            "sim_identical": verb["baseline"]["sim_ns"] == verb["fast"]["sim_ns"],
            "ratio": verb["fast"]["ops_per_sec"] / verb["baseline"]["ops_per_sec"],
        },
    }


# -- fig1/fig2 equivalence -----------------------------------------------------

def _run_case(
    store: str, workload: str, size: int, ops: int, fastpath: bool
) -> tuple[Any, dict[str, Any]]:
    spec = RunSpec(
        store=store,
        workload=_WORKLOADS[workload](value_len=size, key_count=64),
        n_clients=2,
        ops_per_client=ops,
        warmup_ops=max(5, ops // 10),
        seed=42,
    )
    captured: dict[str, Any] = {}

    def hook(env: Environment, setup: Any) -> None:
        # Runs after preload/settle, before measurement: the preload is
        # identical (default fast path) in both runs; only the measured
        # window switches paths.
        captured["fabric"] = setup.fabric
        setup.fabric.fastpath = fastpath

    result = run_experiment(spec, post_setup=hook)
    return result, captured


def run_equivalence_check(ops: int = 40) -> dict[str, Any]:
    """fig1/fig2 cells, fast path vs event path: exact-ns equality."""
    rows = []
    for store, workload, size in EQUIVALENCE_CASES:
        fast, captured = _run_case(store, workload, size, ops, fastpath=True)
        slow, _ = _run_case(store, workload, size, ops, fastpath=False)
        kinds = sorted(set(fast.latency.kinds()) | set(slow.latency.kinds()))
        same = fast.window_ns == slow.window_ns and all(
            np.array_equal(fast.latency.array(k), slow.latency.array(k))
            for k in kinds
        )
        rows.append(
            {
                "store": store,
                "workload": workload,
                "value_len": size,
                "samples": int(fast.latency.count()),
                "fastpath_ops": captured["fabric"].fastpath_ops,
                "identical": bool(same),
            }
        )
    return {
        "suite": "equivalence",
        "ops": ops,
        "identical": all(r["identical"] for r in rows),
        "fastpath_engaged": any(r["fastpath_ops"] > 0 for r in rows),
        "results": rows,
    }
