"""YCSB-style workload specifications (paper §5.2).

Four canned mixes over a long-tailed Zipfian key distribution:

=============  =====  =====  =====
workload       GET    PUT    RMW
=============  =====  =====  =====
YCSB-C          100%    0%     0%
YCSB-B           95%    5%     0%
YCSB-A           50%   50%     0%
YCSB-F           50%    0%    50%
update-only       0%  100%     0%
=============  =====  =====  =====

(YCSB-F's read-modify-write is a GET followed by a dependent PUT of the
same key — two store operations measured as one application op.)

A workload pregenerates each client's operation stream (vectorised) so
the simulation's hot loop does no distribution sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.zipf import ScrambledZipfian, UniformGenerator

__all__ = [
    "WorkloadSpec",
    "Op",
    "ycsb_a",
    "ycsb_b",
    "ycsb_c",
    "ycsb_f",
    "update_only",
    "WORKLOADS",
]

OpKind = Literal["get", "put", "rmw"]


@dataclass(frozen=True)
class Op:
    """One operation in a client's stream."""

    kind: OpKind
    key_id: int


@dataclass(frozen=True)
class WorkloadSpec:
    """A reproducible multi-client workload."""

    name: str
    read_fraction: float
    rmw_fraction: float = 0.0
    key_count: int = 2048
    key_len: int = 16
    value_len: int = 1024
    distribution: Literal["zipfian", "uniform"] = "zipfian"
    zipf_theta: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError("read_fraction must be in [0,1]")
        if not 0.0 <= self.rmw_fraction <= 1.0 - self.read_fraction:
            raise WorkloadError(
                "rmw_fraction must fit in the remaining op budget"
            )
        if self.key_count <= 0:
            raise WorkloadError("key_count must be >= 1")
        if self.value_len < 16:
            raise WorkloadError("value_len must be >= 16 (oracle header)")

    def with_(self, **kw) -> "WorkloadSpec":
        from dataclasses import replace

        return replace(self, **kw)

    def _sampler(self):
        if self.distribution == "zipfian":
            return ScrambledZipfian(self.key_count, self.zipf_theta)
        return UniformGenerator(self.key_count)

    def client_stream(
        self, rng: np.random.Generator, n_ops: int
    ) -> list[Op]:
        """Pregenerate one client's operation list."""
        sampler = self._sampler()
        keys = np.asarray(sampler.sample(rng, n_ops))
        roll = rng.random(n_ops)
        kinds = np.where(
            roll < self.read_fraction,
            "get",
            np.where(roll < self.read_fraction + self.rmw_fraction, "rmw", "put"),
        )
        return [
            Op(kind, int(k)) for kind, k in zip(kinds.tolist(), keys.tolist())
        ]

    def hot_keys(self, top: int = 10) -> list[int]:
        """The most popular key ids (diagnostics)."""
        sampler = self._sampler()
        if isinstance(sampler, UniformGenerator):
            return list(range(min(top, self.key_count)))
        return [int(k) for k in sampler._map[:top]]


def ycsb_c(**kw) -> WorkloadSpec:
    """Read-only (100% GET)."""
    return WorkloadSpec(name="YCSB-C", read_fraction=1.0, **kw)


def ycsb_b(**kw) -> WorkloadSpec:
    """Read-intensive (95% GET / 5% PUT)."""
    return WorkloadSpec(name="YCSB-B", read_fraction=0.95, **kw)


def ycsb_a(**kw) -> WorkloadSpec:
    """Write-intensive (50% GET / 50% PUT)."""
    return WorkloadSpec(name="YCSB-A", read_fraction=0.5, **kw)


def ycsb_f(**kw) -> WorkloadSpec:
    """Read-modify-write (50% GET / 50% RMW)."""
    return WorkloadSpec(name="YCSB-F", read_fraction=0.5, rmw_fraction=0.5, **kw)


def update_only(**kw) -> WorkloadSpec:
    """Update-only (100% PUT)."""
    return WorkloadSpec(name="update-only", read_fraction=0.0, **kw)


#: The paper's four workloads in Figure 9 order (a..d).
WORKLOADS = {
    "YCSB-C": ycsb_c,
    "YCSB-B": ycsb_b,
    "YCSB-A": ycsb_a,
    "YCSB-F": ycsb_f,
    "update-only": update_only,
}
