"""YCSB-style workload specifications (paper §5.2).

The full A–F core suite plus update-only, over long-tailed key
distributions:

=============  =====  =====  =====  =====  ==============
workload       GET    PUT    RMW    SCAN   distribution
=============  =====  =====  =====  =====  ==============
YCSB-C          100%    0%     0%     0%   zipfian
YCSB-B           95%    5%     0%     0%   zipfian
YCSB-A           50%   50%     0%     0%   zipfian
YCSB-D           95%    5%     0%     0%   latest
YCSB-E            0%    5%     0%    95%   zipfian
YCSB-F           50%    0%    50%     0%   zipfian
update-only       0%  100%     0%     0%   zipfian
=============  =====  =====  =====  =====  ==============

(YCSB-F's read-modify-write is a GET followed by a dependent PUT of the
same key — two store operations measured as one application op.
YCSB-D's "latest" skew targets the most recently inserted ids. The
store has no range index, so YCSB-E's scans *degrade* to bursts of
sequential point GETs — key ``k``, ``k+1``, … for a uniformly drawn
scan length — which is exactly what a YCSB client does against a
hash-only KV binding.)

A workload pregenerates each client's operation stream (vectorised) so
the simulation's hot loop does no distribution sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.zipf import ScrambledZipfian, SkewedLatest, UniformGenerator

__all__ = [
    "WorkloadSpec",
    "Op",
    "ycsb_a",
    "ycsb_b",
    "ycsb_c",
    "ycsb_d",
    "ycsb_e",
    "ycsb_f",
    "update_only",
    "WORKLOADS",
]

OpKind = Literal["get", "put", "rmw"]


@dataclass(frozen=True)
class Op:
    """One operation in a client's stream."""

    kind: OpKind
    key_id: int


@dataclass(frozen=True)
class WorkloadSpec:
    """A reproducible multi-client workload."""

    name: str
    read_fraction: float
    rmw_fraction: float = 0.0
    #: Fraction of application ops that are scans; each expands into a
    #: burst of 1..max_scan_len sequential point GETs (no range index).
    scan_fraction: float = 0.0
    max_scan_len: int = 16
    key_count: int = 2048
    key_len: int = 16
    value_len: int = 1024
    distribution: Literal["zipfian", "uniform", "latest"] = "zipfian"
    zipf_theta: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError("read_fraction must be in [0,1]")
        if not 0.0 <= self.rmw_fraction <= 1.0 - self.read_fraction:
            raise WorkloadError(
                "rmw_fraction must fit in the remaining op budget"
            )
        if not 0.0 <= self.scan_fraction <= 1.0 - self.read_fraction - self.rmw_fraction:
            raise WorkloadError(
                "scan_fraction must fit in the remaining op budget"
            )
        if self.max_scan_len < 1:
            raise WorkloadError("max_scan_len must be >= 1")
        if self.key_count <= 0:
            raise WorkloadError("key_count must be >= 1")
        if self.value_len < 16:
            raise WorkloadError("value_len must be >= 16 (oracle header)")

    def with_(self, **kw) -> "WorkloadSpec":
        from dataclasses import replace

        return replace(self, **kw)

    def _sampler(self):
        if self.distribution == "zipfian":
            return ScrambledZipfian(self.key_count, self.zipf_theta)
        if self.distribution == "latest":
            return SkewedLatest(self.key_count, self.zipf_theta)
        return UniformGenerator(self.key_count)

    def client_stream(
        self, rng: np.random.Generator, n_ops: int
    ) -> list[Op]:
        """Pregenerate one client's operation list (exactly ``n_ops``
        store operations; scan bursts are truncated at the budget)."""
        sampler = self._sampler()
        keys = np.asarray(sampler.sample(rng, n_ops))
        roll = rng.random(n_ops)
        if self.scan_fraction == 0.0:
            # The seed's exact two-draw sequence: streams of every
            # scan-free workload stay bit-identical.
            kinds = np.where(
                roll < self.read_fraction,
                "get",
                np.where(roll < self.read_fraction + self.rmw_fraction, "rmw", "put"),
            )
            return [
                Op(kind, int(k)) for kind, k in zip(kinds.tolist(), keys.tolist())
            ]
        scan_hi = self.read_fraction + self.rmw_fraction + self.scan_fraction
        kinds = np.where(
            roll < self.read_fraction,
            "get",
            np.where(
                roll < self.read_fraction + self.rmw_fraction,
                "rmw",
                np.where(roll < scan_hi, "scan", "put"),
            ),
        )
        lens = rng.integers(1, self.max_scan_len + 1, size=n_ops)
        n = self.key_count
        ops: list[Op] = []
        for kind, k, length in zip(kinds.tolist(), keys.tolist(), lens.tolist()):
            if kind == "scan":
                for i in range(length):
                    ops.append(Op("get", (int(k) + i) % n))
                    if len(ops) == n_ops:
                        break
            else:
                ops.append(Op(kind, int(k)))
            if len(ops) == n_ops:
                break
        return ops

    def hot_keys(self, top: int = 10) -> list[int]:
        """The most popular key ids (diagnostics)."""
        sampler = self._sampler()
        if isinstance(sampler, UniformGenerator):
            return list(range(min(top, self.key_count)))
        if isinstance(sampler, SkewedLatest):
            return [self.key_count - 1 - i for i in range(min(top, self.key_count))]
        return [int(k) for k in sampler._map[:top]]


def ycsb_c(**kw) -> WorkloadSpec:
    """Read-only (100% GET)."""
    return WorkloadSpec(name="YCSB-C", read_fraction=1.0, **kw)


def ycsb_b(**kw) -> WorkloadSpec:
    """Read-intensive (95% GET / 5% PUT)."""
    return WorkloadSpec(name="YCSB-B", read_fraction=0.95, **kw)


def ycsb_a(**kw) -> WorkloadSpec:
    """Write-intensive (50% GET / 50% PUT)."""
    return WorkloadSpec(name="YCSB-A", read_fraction=0.5, **kw)


def ycsb_d(**kw) -> WorkloadSpec:
    """Read-latest (95% GET / 5% PUT, skew toward recent inserts)."""
    kw.setdefault("distribution", "latest")
    return WorkloadSpec(name="YCSB-D", read_fraction=0.95, **kw)


def ycsb_e(**kw) -> WorkloadSpec:
    """Scan-heavy (95% scan / 5% PUT); scans degrade to point-GET
    bursts — this store has no range index."""
    return WorkloadSpec(
        name="YCSB-E", read_fraction=0.0, scan_fraction=0.95, **kw
    )


def ycsb_f(**kw) -> WorkloadSpec:
    """Read-modify-write (50% GET / 50% RMW)."""
    return WorkloadSpec(name="YCSB-F", read_fraction=0.5, rmw_fraction=0.5, **kw)


def update_only(**kw) -> WorkloadSpec:
    """Update-only (100% PUT)."""
    return WorkloadSpec(name="update-only", read_fraction=0.0, **kw)


#: The paper's four workloads in Figure 9 order (a..d), then the rest of
#: the YCSB core suite (D, E) — appended so every pre-existing sweep
#: that iterates this dict keeps its original cell order.
WORKLOADS = {
    "YCSB-C": ycsb_c,
    "YCSB-B": ycsb_b,
    "YCSB-A": ycsb_a,
    "YCSB-F": ycsb_f,
    "update-only": update_only,
    "YCSB-D": ycsb_d,
    "YCSB-E": ycsb_e,
}
