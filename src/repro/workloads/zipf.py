"""Key-popularity distributions (YCSB's long-tailed Zipfian, §5.2).

Implements the Gray et al. "Quickly generating billion-record synthetic
databases" Zipfian sampler used by YCSB, including the *scrambled*
variant that hashes ranks across the key space so popular keys are not
clustered. Both scalar and vectorised (NumPy) sampling are provided —
the harness pregenerates whole op streams with the vectorised path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "zeta",
    "ZipfianGenerator",
    "ScrambledZipfian",
    "SkewedLatest",
    "RotatingHotSet",
    "UniformGenerator",
]


def zeta(n: int, theta: float) -> float:
    """Generalised harmonic number ``sum_{i=1..n} 1/i^theta`` (vectorised)."""
    if n <= 0:
        raise WorkloadError(f"zeta needs n >= 1, got {n}")
    i = np.arange(1, n + 1, dtype=np.float64)
    return float(np.sum(i ** -theta))


class ZipfianGenerator:
    """Ranks ``0..n-1`` with P(rank) ∝ 1/(rank+1)^theta.

    ``theta=0.99`` is YCSB's default "long-tailed" skew.
    """

    def __init__(self, n: int, theta: float = 0.99) -> None:
        if n <= 0:
            raise WorkloadError(f"item count must be >= 1, got {n}")
        if not 0.0 < theta < 1.0:
            raise WorkloadError(f"theta must be in (0,1), got {theta}")
        self.n = n
        self.theta = theta
        self.zetan = zeta(n, theta)
        self.zeta2 = zeta(2, theta) if n >= 2 else self.zetan
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
            1.0 - self.zeta2 / self.zetan
        )

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | int:
        """Draw ranks; vectorised when ``size`` is given."""
        scalar = size is None
        u = rng.random(1 if scalar else size)
        uz = u * self.zetan
        ranks = (self.n * (self.eta * u - self.eta + 1.0) ** self.alpha).astype(
            np.int64
        )
        ranks = np.where(uz < 1.0, 0, ranks)
        ranks = np.where((uz >= 1.0) & (uz < 1.0 + 0.5 ** self.theta), 1, ranks)
        ranks = np.clip(ranks, 0, self.n - 1)
        return int(ranks[0]) if scalar else ranks


class ScrambledZipfian:
    """Zipfian ranks scattered over the key space by FNV mixing, so the
    hottest keys are spread out (YCSB's ScrambledZipfianGenerator)."""

    def __init__(self, n: int, theta: float = 0.99) -> None:
        self.n = n
        self._zipf = ZipfianGenerator(n, theta)
        # precomputed permutation-ish mapping via FNV of the rank
        ranks = np.arange(n, dtype=np.uint64)
        self._map = self._scramble(ranks, n)

    @staticmethod
    def _scramble(ranks: np.ndarray, n: int) -> np.ndarray:
        # vectorised FNV-1a over the 8 little-endian bytes of each rank
        h = np.full(ranks.shape, 0xCBF29CE484222325, dtype=np.uint64)
        prime = np.uint64(0x100000001B3)
        for shift in range(0, 64, 8):
            byte = (ranks >> np.uint64(shift)) & np.uint64(0xFF)
            h = (h ^ byte) * prime
        return (h % np.uint64(n)).astype(np.int64)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        ranks = self._zipf.sample(rng, size)
        if size is None:
            return int(self._map[ranks])
        return self._map[np.asarray(ranks)]


class SkewedLatest:
    """YCSB's SkewedLatestGenerator: Zipfian skew anchored at the *end*
    of the key space, so the most recently inserted ids are the hottest
    (read-latest workloads — YCSB-D)."""

    def __init__(self, n: int, theta: float = 0.99) -> None:
        self.n = n
        self._zipf = ZipfianGenerator(n, theta)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        ranks = self._zipf.sample(rng, size)
        if size is None:
            return self.n - 1 - ranks
        return (self.n - 1) - np.asarray(ranks)


class RotatingHotSet:
    """Zipfian popularity whose hot set *churns*: every ``rotate_every``
    draws the rank→key scatter is re-salted, so a different slice of the
    key space becomes hot (diurnal working-set drift, cache-busting).

    Within one epoch this behaves exactly like :class:`ScrambledZipfian`
    with an epoch-salted FNV scatter; across epochs the hottest keys
    move. A vectorised ``sample`` call may span epoch boundaries — each
    draw is salted with the epoch it falls in, so the stream is
    identical whether sampled one draw at a time or in bulk, and fully
    deterministic given the rng seed and construction parameters.
    """

    def __init__(
        self, n: int, theta: float = 0.99, rotate_every: int = 10_000
    ) -> None:
        if rotate_every <= 0:
            raise WorkloadError(
                f"rotate_every must be >= 1, got {rotate_every}"
            )
        self.n = n
        self.rotate_every = rotate_every
        self._zipf = ZipfianGenerator(n, theta)
        self._drawn = 0

    @property
    def epoch(self) -> int:
        """Epoch the *next* draw falls in."""
        return self._drawn // self.rotate_every

    def _scatter(self, ranks: np.ndarray, epochs: np.ndarray) -> np.ndarray:
        # Epoch-salted FNV-1a: fold the epoch into the high half of the
        # hashed word so each epoch yields an unrelated scatter.
        salted = ranks.astype(np.uint64) | (
            epochs.astype(np.uint64) << np.uint64(32)
        )
        return ScrambledZipfian._scramble(salted, self.n)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        scalar = size is None
        count = 1 if scalar else size
        ranks = np.asarray(self._zipf.sample(rng, count))
        epochs = (self._drawn + np.arange(count)) // self.rotate_every
        self._drawn += count
        keys = self._scatter(ranks, epochs)
        return int(keys[0]) if scalar else keys

    def hot_keys(self, top: int = 10, epoch: int | None = None) -> list[int]:
        """The ``top`` hottest key ids of ``epoch`` (default: current)."""
        e = self.epoch if epoch is None else epoch
        ranks = np.arange(top, dtype=np.uint64)
        return [int(k) for k in self._scatter(ranks, np.full(top, e))]


class UniformGenerator:
    """Uniform key choice (for sensitivity studies)."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise WorkloadError(f"item count must be >= 1, got {n}")
        self.n = n

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            return int(rng.integers(0, self.n))
        return rng.integers(0, self.n, size=size)
