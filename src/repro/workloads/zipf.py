"""Key-popularity distributions (YCSB's long-tailed Zipfian, §5.2).

Implements the Gray et al. "Quickly generating billion-record synthetic
databases" Zipfian sampler used by YCSB, including the *scrambled*
variant that hashes ranks across the key space so popular keys are not
clustered. Both scalar and vectorised (NumPy) sampling are provided —
the harness pregenerates whole op streams with the vectorised path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = ["zeta", "ZipfianGenerator", "ScrambledZipfian", "UniformGenerator"]


def zeta(n: int, theta: float) -> float:
    """Generalised harmonic number ``sum_{i=1..n} 1/i^theta`` (vectorised)."""
    if n <= 0:
        raise WorkloadError(f"zeta needs n >= 1, got {n}")
    i = np.arange(1, n + 1, dtype=np.float64)
    return float(np.sum(i ** -theta))


class ZipfianGenerator:
    """Ranks ``0..n-1`` with P(rank) ∝ 1/(rank+1)^theta.

    ``theta=0.99`` is YCSB's default "long-tailed" skew.
    """

    def __init__(self, n: int, theta: float = 0.99) -> None:
        if n <= 0:
            raise WorkloadError(f"item count must be >= 1, got {n}")
        if not 0.0 < theta < 1.0:
            raise WorkloadError(f"theta must be in (0,1), got {theta}")
        self.n = n
        self.theta = theta
        self.zetan = zeta(n, theta)
        self.zeta2 = zeta(2, theta) if n >= 2 else self.zetan
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
            1.0 - self.zeta2 / self.zetan
        )

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | int:
        """Draw ranks; vectorised when ``size`` is given."""
        scalar = size is None
        u = rng.random(1 if scalar else size)
        uz = u * self.zetan
        ranks = (self.n * (self.eta * u - self.eta + 1.0) ** self.alpha).astype(
            np.int64
        )
        ranks = np.where(uz < 1.0, 0, ranks)
        ranks = np.where((uz >= 1.0) & (uz < 1.0 + 0.5 ** self.theta), 1, ranks)
        ranks = np.clip(ranks, 0, self.n - 1)
        return int(ranks[0]) if scalar else ranks


class ScrambledZipfian:
    """Zipfian ranks scattered over the key space by FNV mixing, so the
    hottest keys are spread out (YCSB's ScrambledZipfianGenerator)."""

    def __init__(self, n: int, theta: float = 0.99) -> None:
        self.n = n
        self._zipf = ZipfianGenerator(n, theta)
        # precomputed permutation-ish mapping via FNV of the rank
        ranks = np.arange(n, dtype=np.uint64)
        self._map = self._scramble(ranks, n)

    @staticmethod
    def _scramble(ranks: np.ndarray, n: int) -> np.ndarray:
        # vectorised FNV-1a over the 8 little-endian bytes of each rank
        h = np.full(ranks.shape, 0xCBF29CE484222325, dtype=np.uint64)
        prime = np.uint64(0x100000001B3)
        for shift in range(0, 64, 8):
            byte = (ranks >> np.uint64(shift)) & np.uint64(0xFF)
            h = (h ^ byte) * prime
        return (h % np.uint64(n)).astype(np.int64)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        ranks = self._zipf.sample(rng, size)
        if size is None:
            return int(self._map[ranks])
        return self._map[np.asarray(ranks)]


class UniformGenerator:
    """Uniform key choice (for sensitivity studies)."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise WorkloadError(f"item count must be >= 1, got {n}")
        self.n = n

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            return int(rng.integers(0, self.n))
        return rng.integers(0, self.n, size=size)
