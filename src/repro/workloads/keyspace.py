"""Keys and verifiable values.

Keys are YCSB-style ``user########`` strings padded to a fixed length.
Values are *self-describing*: the first 16 bytes encode ``(key_id,
version)`` and the remainder is a pattern deterministically derived from
them — so the crash-consistency oracle can tell, from bytes alone,
exactly which write a value came from and whether it is complete
(a torn value fails the pattern check). This is how the harness turns
"the store returned some bytes" into checkable history facts.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.errors import WorkloadError
from repro.sim.rng import fnv1a_64

__all__ = ["make_key", "make_value", "parse_value", "VALUE_HEADER_SIZE"]

#: Bytes of (key_id, version) at the front of every generated value.
VALUE_HEADER_SIZE = 16


def make_key(key_id: int, key_len: int = 16) -> bytes:
    """Fixed-width key for ``key_id`` (YCSB ``user<padded id>`` style)."""
    if key_len < 12:
        raise WorkloadError(f"key_len must be >= 12, got {key_len}")
    body = f"user{key_id:0{key_len - 4}d}"
    if len(body) != key_len:
        raise WorkloadError(f"key_id {key_id} does not fit key_len {key_len}")
    return body.encode("ascii")


def _pattern(key_id: int, version: int, length: int) -> bytes:
    """Deterministic filler derived from (key_id, version)."""
    if length <= 0:
        return b""
    seed = fnv1a_64(struct.pack("<QQ", key_id, version)).to_bytes(8, "little")
    reps = length // 8 + 1
    return (seed * reps)[:length]


def make_value(key_id: int, version: int, vlen: int) -> bytes:
    """A verifiable value of exactly ``vlen`` bytes (min 16)."""
    if vlen < VALUE_HEADER_SIZE:
        raise WorkloadError(
            f"value length must be >= {VALUE_HEADER_SIZE}, got {vlen}"
        )
    header = struct.pack("<QQ", key_id, version)
    return header + _pattern(key_id, version, vlen - VALUE_HEADER_SIZE)


def parse_value(value: bytes) -> Optional[tuple[int, int]]:
    """Recover ``(key_id, version)`` from a value, verifying the pattern.

    Returns ``None`` when the value is torn / not one of ours — the
    oracle treats that as a consistency violation for stores that
    promise intact reads.
    """
    if len(value) < VALUE_HEADER_SIZE:
        return None
    key_id, version = struct.unpack_from("<QQ", value)
    expected = _pattern(key_id, version, len(value) - VALUE_HEADER_SIZE)
    if value[VALUE_HEADER_SIZE:] != expected:
        return None
    return key_id, version
