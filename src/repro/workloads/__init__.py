"""Workload generation: key distributions, verifiable values, YCSB mixes."""

from repro.workloads.keyspace import (
    VALUE_HEADER_SIZE,
    make_key,
    make_value,
    parse_value,
)
from repro.workloads.ycsb import (
    Op,
    WORKLOADS,
    WorkloadSpec,
    update_only,
    ycsb_a,
    ycsb_b,
    ycsb_c,
    ycsb_d,
    ycsb_e,
    ycsb_f,
)
from repro.workloads.zipf import (
    RotatingHotSet,
    ScrambledZipfian,
    SkewedLatest,
    UniformGenerator,
    ZipfianGenerator,
    zeta,
)

__all__ = [
    "Op",
    "RotatingHotSet",
    "ScrambledZipfian",
    "SkewedLatest",
    "UniformGenerator",
    "VALUE_HEADER_SIZE",
    "WORKLOADS",
    "WorkloadSpec",
    "ZipfianGenerator",
    "make_key",
    "make_value",
    "parse_value",
    "update_only",
    "ycsb_a",
    "ycsb_b",
    "ycsb_c",
    "ycsb_d",
    "ycsb_e",
    "ycsb_f",
    "zeta",
]
