"""Command-line interface: ``python -m repro <command>``.

Lets a downstream user drive the reproduction without writing code::

    python -m repro list
    python -m repro run --store efactory --workload YCSB-B \\
        --value-size 1024 --clients 8 --ops 400 --seeds 42 43 44
    python -m repro fig 9 --workload update-only --sizes 64 1024 4096
    python -m repro crash --store erda --seeds 7 11 13
    python -m repro crashmatrix --store efactory --strict
    python -m repro fig 1 --json out.json

Every command prints the same text tables the benchmarks do; ``--json``
additionally writes machine-readable results.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Sequence

from repro._version import __version__
from repro.analysis.stats import fmt_mops, fmt_ns
from repro.analysis.tables import Table, banner
from repro.faults.plans import NODE_KILL_PLANS, shipped_plan_names
from repro.harness import experiments as exp
from repro.harness.chaos import ChaosSpec, run_chaos_experiment
from repro.harness.crash import CrashSpec, run_crash_experiment
from repro.harness.crashmatrix import CrashMatrixSpec, run_crash_matrix
from repro.harness.repeat import run_replicated
from repro.harness.runner import RunSpec
from repro.stores import STORES, store_names
from repro.workloads.ycsb import WORKLOADS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="eFactory (ICPP '21) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available store flavours")

    run_p = sub.add_parser("run", help="run one workload on one store")
    run_p.add_argument("--store", required=True, choices=store_names())
    run_p.add_argument("--workload", default="YCSB-B", choices=list(WORKLOADS))
    run_p.add_argument("--value-size", type=int, default=1024)
    run_p.add_argument("--key-count", type=int, default=1024)
    run_p.add_argument("--clients", type=int, default=8)
    run_p.add_argument("--ops", type=int, default=400)
    run_p.add_argument("--seeds", type=int, nargs="+", default=[42])
    run_p.add_argument(
        "--partitions",
        type=int,
        default=1,
        help="shard the server into N partitions (default 1 = the "
        "paper's single-threaded server)",
    )
    run_p.add_argument(
        "--histogram",
        action="store_true",
        help="print the pooled latency distribution",
    )
    run_p.add_argument("--json", metavar="PATH", default=None)

    fig_p = sub.add_parser("fig", help="regenerate a paper figure")
    fig_p.add_argument("figure", choices=["1", "2", "9", "10", "11"])
    fig_p.add_argument("--workload", default=None, choices=list(WORKLOADS))
    fig_p.add_argument("--sizes", type=int, nargs="+", default=None)
    fig_p.add_argument("--clients", type=int, nargs="+", default=None)
    fig_p.add_argument("--ops", type=int, default=300)
    fig_p.add_argument("--json", metavar="PATH", default=None)

    crash_p = sub.add_parser("crash", help="crash-consistency audit")
    crash_p.add_argument("--store", required=True, choices=store_names())
    crash_p.add_argument("--seeds", type=int, nargs="+", default=[7, 11, 13])
    crash_p.add_argument("--evict", type=float, default=0.35)
    crash_p.add_argument("--json", metavar="PATH", default=None)

    chaos_p = sub.add_parser(
        "chaos", help="fault-injection run + consistency audit"
    )
    chaos_p.add_argument(
        "--store", default="efactory", choices=store_names(),
        help="store flavour (cluster plans require efactory)",
    )
    chaos_p.add_argument(
        "--plan",
        default="qp-flap",
        choices=shipped_plan_names() + ["all"],
        help="shipped fault plan to arm ('all' sweeps every plan)",
    )
    chaos_p.add_argument("--seeds", type=int, nargs="+", default=[7])
    chaos_p.add_argument("--clients", type=int, default=2)
    chaos_p.add_argument("--ops", type=int, default=60)
    chaos_p.add_argument("--keys", type=int, default=24)
    chaos_p.add_argument("--value-size", type=int, default=128)
    chaos_p.add_argument(
        "--partitions", type=int, default=1,
        help="shard the server into N partitions",
    )
    chaos_p.add_argument(
        "--nodes", type=int, default=0,
        help="cluster size (0 = auto: 3 for node-kill plans, else 1)",
    )
    chaos_p.add_argument(
        "--replication", type=int, default=0,
        help="replication factor (0 = auto: 2 for node-kill plans, else 1)",
    )
    chaos_p.add_argument(
        "--parity",
        action="store_true",
        help="arm the self-healing integrity tier (per-stripe parity, "
        "checksum ledger, integrity tree) with shipped defaults",
    )
    chaos_p.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any advertised guarantee was violated",
    )
    chaos_p.add_argument("--json", metavar="PATH", default=None)

    matrix_p = sub.add_parser(
        "crashmatrix",
        help="deterministic crash-point matrix (crash at every "
        "persist boundary; prove recovery idempotent)",
    )
    matrix_p.add_argument("--store", default="efactory", choices=store_names())
    matrix_p.add_argument("--seed", type=int, default=11)
    matrix_p.add_argument(
        "--max-per-site", type=int, default=12,
        help="crash points per injection site (stride-sampled)",
    )
    matrix_p.add_argument(
        "--recovery-points", type=int, default=6,
        help="double-crash points inside recovery itself",
    )
    matrix_p.add_argument(
        "--sites", nargs="+", default=None,
        help="override the crash-site list (default: every persist/"
        "atomic-store boundary plus background stages)",
    )
    matrix_p.add_argument(
        "--partitions", type=int, default=1,
        help="shard the server into N partitions",
    )
    matrix_p.add_argument(
        "--no-replay", action="store_true",
        help="skip the byte-identical replay check (2x faster)",
    )
    matrix_p.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any violation, non-idempotent recovery, "
        "or replay mismatch",
    )
    matrix_p.add_argument("--json", metavar="PATH", default=None)

    part_p = sub.add_parser(
        "partitions", help="partition-scaling sweep (throughput + recovery)"
    )
    part_p.add_argument(
        "--counts", type=int, nargs="+", default=[1, 2, 4, 8]
    )
    part_p.add_argument("--ops", type=int, default=200)
    part_p.add_argument("--clients", type=int, default=16)
    part_p.add_argument("--json", metavar="PATH", default=None)

    bench_p = sub.add_parser(
        "bench",
        help="amortization microbenchmarks (doorbell PUT, location cache)",
    )
    bench_p.add_argument(
        "--suite",
        default="amortization",
        choices=["amortization", "cluster", "parity", "load"],
        help="amortization = the PR-5 hot-path cells; cluster = "
        "replication-factor scaling, failover time, migration throughput; "
        "parity = PUT throughput with the integrity tier off vs. on; "
        "load = thousand-client open-loop cells with completion batching "
        "off vs. on",
    )
    bench_p.add_argument("--ops", type=int, default=256)
    bench_p.add_argument("--value-size", type=int, default=64)
    bench_p.add_argument("--put-batch", type=int, default=16)
    bench_p.add_argument(
        "--partitions", type=int, nargs="+", default=[1, 4]
    )
    bench_p.add_argument(
        "--nodes", type=int, default=3, help="cluster suite: node count"
    )
    bench_p.add_argument(
        "--clients", type=int, default=1000,
        help="load suite: open-loop client count",
    )
    bench_p.add_argument(
        "--ops-per-client", type=int, default=40,
        help="load suite: scheduled ops per client",
    )
    bench_p.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="JSON output path (default: BENCH_pr5.json, BENCH_pr7.json "
        "for --suite cluster, BENCH_pr8.json for --suite parity, "
        "BENCH_pr10.json for --suite load)",
    )

    bk_p = sub.add_parser(
        "bench-kernel",
        help="kernel scheduler microbenchmark + fast-path equivalence",
    )
    bk_p.add_argument("--drain-events", type=int, default=60_000)
    bk_p.add_argument("--ping-events", type=int, default=30_000)
    bk_p.add_argument("--verb-ops", type=int, default=4_000)
    bk_p.add_argument("--equiv-ops", type=int, default=40)
    bk_p.add_argument(
        "--skip-equivalence",
        action="store_true",
        help="only run the wall-clock cells",
    )
    bk_p.add_argument(
        "--min-verb-ratio",
        type=float,
        default=None,
        help="exit non-zero if the verb-cell speedup is below this",
    )
    bk_p.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_pr6.json",
        help="JSON output path (default: BENCH_pr6.json)",
    )

    lg_p = sub.add_parser(
        "loadgen",
        help="open-loop multi-tenant load engine (thousand-client scale)",
    )
    lg_p.add_argument(
        "--store", default="efactory", choices=store_names()
    )
    lg_p.add_argument("--mix", default="YCSB-B", choices=list(WORKLOADS))
    lg_p.add_argument("--clients", type=int, default=64)
    lg_p.add_argument(
        "--ops", type=int, default=40, help="scheduled ops per client"
    )
    lg_p.add_argument(
        "--rate", type=float, default=None,
        help="aggregate offered rate in ops/s (default: 2000 per client)",
    )
    lg_p.add_argument("--slo-us", type=float, default=25.0)
    lg_p.add_argument(
        "--curve", default="constant",
        choices=["constant", "diurnal", "burst"],
    )
    lg_p.add_argument(
        "--tenants", type=int, default=1,
        help="split the client population into N equal tenants",
    )
    lg_p.add_argument(
        "--admission", type=int, default=0, metavar="WATERMARK",
        help="per-partition admission watermark (0 = off)",
    )
    lg_p.add_argument(
        "--no-batching", action="store_true",
        help="disable cross-client completion batching",
    )
    lg_p.add_argument("--bucket-ns", type=float, default=256.0)
    lg_p.add_argument(
        "--churn", type=int, default=0, metavar="N",
        help="rotate each client's hot set every N draws (0 = off)",
    )
    lg_p.add_argument("--seed", type=int, default=42)
    lg_p.add_argument("--json", metavar="PATH", default=None)

    sc_p = sub.add_parser(
        "staticcheck",
        help="domain-aware static analysis (persist ordering, yield "
        "races, determinism, registry cross-check)",
    )
    sc_p.add_argument(
        "--root",
        default="src/repro",
        help="tree to analyze (default: src/repro)",
    )
    sc_p.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="suppression file (default: staticcheck.toml if present)",
    )
    sc_p.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any suppression file (show every raw finding)",
    )
    sc_p.add_argument(
        "--rules",
        metavar="PREFIXES",
        help="comma-separated rule-id prefixes to keep (e.g. PO,DT003)",
    )
    sc_p.add_argument(
        "--strict-baseline",
        action="store_true",
        help="fail if any suppression matched nothing this run",
    )
    sc_p.add_argument("--json", metavar="PATH", help="write the report here")

    return parser


# -- commands -----------------------------------------------------------------


def _cmd_list() -> tuple[str, Any]:
    table = Table(["name", "label", "durable PUT", "consistent GET"])
    for name in store_names():
        spec = STORES[name]
        table.add(
            name,
            spec.label,
            "yes" if spec.durable_put else "no",
            "yes" if spec.consistent_get else "no",
        )
    return (
        banner("available stores") + "\n" + table.render(),
        {name: STORES[name].label for name in store_names()},
    )


def _cmd_run(args: argparse.Namespace) -> tuple[str, Any]:
    spec = RunSpec(
        store=args.store,
        workload=WORKLOADS[args.workload](
            value_len=args.value_size, key_count=args.key_count
        ),
        n_clients=args.clients,
        ops_per_client=args.ops,
        warmup_ops=max(20, args.ops // 10),
        config_overrides=(
            {"num_partitions": args.partitions} if args.partitions != 1 else {}
        ),
    )
    rep = run_replicated(spec, seeds=args.seeds)
    table = Table(["metric", "value"])
    table.add("store", STORES[args.store].label)
    table.add("workload", f"{args.workload}, {args.value_size}B values")
    table.add("clients x ops", f"{args.clients} x {args.ops}")
    table.add("throughput", f"{rep.throughput_mops} Mops/s")
    table.add("GET p50", f"{rep.get_p50_ns} ns")
    table.add("PUT p50", f"{rep.put_p50_ns} ns")
    table.add("errors", rep.total_errors)
    extra = ""
    if args.histogram:
        from repro.analysis.histogram import LogHistogram

        hist = LogHistogram()
        for result in rep.results:
            hist.record_many(result.latency.array())
        extra = (
            "\n" + banner("latency distribution (all ops, all seeds)")
            + "\n" + hist.render()
        )
    payload = {
        "store": args.store,
        "workload": args.workload,
        "value_size": args.value_size,
        "seeds": list(rep.seeds),
        "throughput_mops": rep.throughput_mops.mean,
        "throughput_ci95": rep.throughput_mops.half_width,
        "get_p50_ns": rep.get_p50_ns.mean,
        "put_p50_ns": rep.put_p50_ns.mean,
        "errors": rep.total_errors,
    }
    return banner("run") + "\n" + table.render() + extra, payload


def _cmd_fig(args: argparse.Namespace) -> tuple[str, Any]:
    sizes = tuple(args.sizes) if args.sizes else (64, 1024, 4096)
    if args.figure == "1":
        data = exp.fig1_write_latency(sizes=sizes, ops=args.ops)
        return exp.render_fig1(data), _jsonable(data)
    if args.figure == "2":
        data = exp.fig2_get_breakdown(sizes=sizes, ops=args.ops)
        return exp.render_fig2(data), _jsonable(data)
    if args.figure == "9":
        workload = args.workload or "YCSB-C"
        data = exp.fig9_throughput(workload, sizes=sizes, ops=args.ops)
        return exp.render_fig9(workload, data), _jsonable(data)
    if args.figure == "10":
        workload = args.workload or "update-only"
        counts = tuple(args.clients) if args.clients else (1, 4, 8, 16)
        data = exp.fig10_scalability(
            workload, client_counts=counts, ops=args.ops
        )
        return exp.render_fig10(workload, data), _jsonable(data)
    # figure 11
    workloads = (args.workload,) if args.workload else tuple(WORKLOADS)
    data = exp.fig11_log_cleaning(workload_names=workloads, ops=args.ops)
    return exp.render_fig11(data), _jsonable(data)


def _cmd_crash(args: argparse.Namespace) -> tuple[str, Any]:
    reports = [
        run_crash_experiment(
            CrashSpec(store=args.store, seed=s, evict_probability=args.evict)
        )
        for s in args.seeds
    ]
    table = Table(
        ["seed", "ops", "torn", "acked lost", "non-monotonic", "ok"]
    )
    for seed, r in zip(args.seeds, reports):
        table.add(
            seed,
            r.completed_ops,
            r.torn_exposed,
            r.durability_losses,
            r.monotonicity_losses,
            "yes" if r.ok else "; ".join(r.violations),
        )
    payload = [
        {
            "seed": seed,
            "torn_exposed": r.torn_exposed,
            "durability_losses": r.durability_losses,
            "monotonicity_losses": r.monotonicity_losses,
            "violations": r.violations,
            "recovery": r.recovery.as_dict() if r.recovery else None,
        }
        for seed, r in zip(args.seeds, reports)
    ]
    title = f"crash audit: {STORES[args.store].label}"
    return banner(title) + "\n" + table.render(), payload


def _chaos_spec_for(args: argparse.Namespace, plan: str, seed: int) -> ChaosSpec:
    """Shape one chaos run; node-kill plans auto-deploy a cluster."""
    clustered = plan in NODE_KILL_PLANS
    nodes = args.nodes or (3 if clustered else 1)
    replication = args.replication or (2 if clustered else 1)
    overrides = (
        {"num_partitions": args.partitions} if args.partitions != 1 else {}
    )
    kwargs: dict[str, Any] = {}
    if clustered:
        # Hold promoted replicas to the crash matrix's bar: recover,
        # digest, recover again, assert the images are byte-identical.
        kwargs["cluster_overrides"] = {"verify_promotion": True}
    if plan == "kill-during-migration":
        # Race a live migration (partition 0 to the last node) against
        # the kill; a long drain grace widens the vulnerable window.
        kwargs["migration"] = (0, nodes - 1, 150_000.0)
        kwargs["cluster_overrides"]["drain_grace_ns"] = 200_000.0
    return ChaosSpec(
        store=args.store,
        plan=plan,
        seed=seed,
        n_clients=args.clients,
        ops_per_client=args.ops,
        key_count=args.keys,
        value_len=args.value_size,
        config_overrides=overrides,
        nodes=nodes,
        replication=replication,
        parity=bool(getattr(args, "parity", False)),
        **kwargs,
    )


def _cmd_chaos(args: argparse.Namespace) -> tuple[str, Any, int]:
    plans = shipped_plan_names() if args.plan == "all" else [args.plan]
    reports = [
        run_chaos_experiment(_chaos_spec_for(args, plan, seed))
        for plan in plans
        for seed in args.seeds
    ]
    table = Table(
        ["plan", "seed", "ops", "avail", "faults", "retries", "timeouts", "verdict"]
    )
    for r in reports:
        res = r.resilience
        table.add(
            r.plan_name,
            r.spec.seed,
            r.attempted_ops,
            f"{r.availability:.3f}",
            len(r.fault_schedule),
            res.get("retries", 0),
            res.get("timeouts", 0),
            "ok" if r.ok else "; ".join(r.violations[:2]),
        )
    bad = sum(1 for r in reports if not r.ok)
    title = f"chaos audit: {STORES[args.store].label}"
    text = banner(title) + "\n" + table.render()
    clustered = [r for r in reports if r.cluster]
    if clustered:
        # The per-node ``cluster`` section of server.metrics(), one row
        # per (run, node): shipping volume, failovers, promotions.
        ctable = Table(
            ["plan", "seed", "node", "alive", "primary of",
             "shipped", "failovers", "promotions", "migrations"]
        )
        for r in clustered:
            for nm in r.cluster.get("nodes", []):
                ctable.add(
                    r.plan_name,
                    r.spec.seed,
                    nm["node"],
                    "yes" if nm["alive"] else "no",
                    ",".join(str(p) for p in nm["primary_of"]) or "-",
                    nm["shipped_records"],
                    nm["failovers"],
                    nm["promotions"],
                    nm["migrations"],
                )
        text += "\n" + banner("cluster metrics") + "\n" + ctable.render()
        idem = [
            ok for r in clustered
            for ok in r.cluster.get("promotion_idempotent", [])
        ]
        if idem:
            text += (
                f"\npromotion recovery idempotent: "
                f"{sum(idem)}/{len(idem)} byte-identical"
            )
    repaired = [r for r in reports if r.repair]
    if repaired:
        # Repair-outcome accounting under media faults: how each
        # detected corruption was resolved, by escalation stage.
        rtable = Table(
            ["plan", "seed", "injected", "detected", "reconstructed",
             "replica", "rolled back", "cleared", "tree rejects"]
        )
        for r in repaired:
            rep = r.repair
            rtable.add(
                r.plan_name,
                r.spec.seed,
                rep["media_faults"],
                rep["detected"],
                rep["reconstructed"],
                rep["replica_fetched"],
                rep["rolled_back"],
                rep["cleared"],
                rep["tree_rejects"],
            )
        text += "\n" + banner("repair outcomes") + "\n" + rtable.render()
    if bad:
        text += f"\n{bad} run(s) violated advertised guarantees"
    status = 1 if (bad and args.strict) else 0
    return text, [r.as_dict() for r in reports], status


def _cmd_crashmatrix(args: argparse.Namespace) -> tuple[str, Any, int]:
    overrides = (
        {"num_partitions": args.partitions} if args.partitions != 1 else {}
    )
    spec_kwargs: dict[str, Any] = dict(
        store=args.store,
        seed=args.seed,
        max_per_site=args.max_per_site,
        recovery_points=args.recovery_points,
        replay=not args.no_replay,
        config_overrides=overrides,
    )
    if args.sites:
        spec_kwargs["sites"] = tuple(args.sites)
    rep = run_crash_matrix(CrashMatrixSpec(**spec_kwargs))

    # one row per (phase, site): points exercised and their verdicts
    rows: dict[tuple[str, str], dict[str, int]] = {}
    for r in rep.results:
        row = rows.setdefault(
            (r.phase, r.site),
            {"points": 0, "crashed": 0, "bad": 0, "nonidem": 0, "replay": 0},
        )
        row["points"] += 1
        if r.crashed:
            row["crashed"] += 1
            row["bad"] += bool(r.violations)
            row["nonidem"] += not r.idempotent
            row["replay"] += not r.replay_identical
    table = Table(
        ["phase", "site", "points", "crashed", "violations",
         "non-idempotent", "replay mismatch"]
    )
    for (phase, site), row in sorted(rows.items()):
        table.add(
            phase, site, row["points"], row["crashed"], row["bad"],
            row["nonidem"], row["replay"],
        )
    title = f"crash-point matrix: {STORES[args.store].label}"
    text = banner(title) + "\n" + table.render()
    text += (
        f"\n{rep.total_points} crash points executed, "
        f"{len(rep.violations)} violation(s), "
        f"{len(rep.non_idempotent)} non-idempotent recovery run(s), "
        f"{len(rep.replay_mismatches)} replay mismatch(es)"
    )
    for v in rep.violations[:10]:
        text += f"\n  VIOLATION {v}"
    for p in rep.non_idempotent[:10]:
        text += f"\n  NON-IDEMPOTENT {p}"
    status = 1 if (args.strict and not rep.ok) else 0
    return text, rep.as_dict(), status


def _cmd_partitions(args: argparse.Namespace) -> tuple[str, Any]:
    counts = tuple(args.counts)
    tput = exp.partition_scaling(
        partition_counts=counts, ops=args.ops, n_clients=args.clients
    )
    recov = exp.partition_recovery_sweep(partition_counts=counts)
    text = (
        exp.render_partition_scaling(tput)
        + "\n"
        + exp.render_partition_recovery(recov)
    )
    return text, {"throughput_mops": _jsonable(tput), "recovery_ns": _jsonable(recov)}


def _cmd_bench(args: argparse.Namespace) -> tuple[str, Any]:
    from repro.harness.bench import (
        run_bench_suite,
        run_cluster_bench_suite,
        run_parity_bench_suite,
    )

    if args.suite == "load":
        from repro.loadgen.bench import run_load_bench_suite

        out = args.out or "BENCH_pr10.json"
        payload = run_load_bench_suite(
            clients=args.clients, ops_per_client=args.ops_per_client
        )
        table = Table(
            ["cell", "tenant", "kops", "p50", "p99", "p999", "slo%", "goodput/s"]
        )
        for cell, d in payload["cells"].items():
            for t in d["tenants"]:
                table.add(
                    cell,
                    t["name"],
                    f"{t['throughput_kops']:.0f}",
                    fmt_ns(t["p50_ns"]),
                    fmt_ns(t["p99_ns"]),
                    fmt_ns(t["p999_ns"]),
                    f"{t['slo_fraction'] * 100.0:.1f}",
                    f"{t['goodput_ops_s']:.0f}",
                )
        comp = payload["batching_comparison"]
        extra = (
            f"\ncompletion batching on {comp['cell']}: "
            f"events/op {comp['off']['events_per_op']:.2f} -> "
            f"{comp['on']['events_per_op']:.2f} "
            f"(ratio {comp['events_per_op_ratio']:.3f}), "
            f"wall speedup {comp['wall_speedup']:.2f}x"
        )
        title = "Open-loop load cells"
        with open(out, "w") as fh:
            json.dump(payload, fh, indent=2)
        text = (
            banner(title)
            + "\n"
            + table.render()
            + extra
            + f"\n(json written to {out})"
        )
        return text, payload
    if args.suite == "parity":
        out = args.out or "BENCH_pr8.json"
        payload = run_parity_bench_suite(
            ops=args.ops,
            value_len=args.value_size,
            partitions=tuple(args.partitions),
        )
        table = Table(["bench", "parts", "ops/s", "p50", "p99", "overhead"])
        for row in payload["results"]:
            frac = row.get("overhead_frac")
            table.add(
                row["bench"],
                str(row["partitions"]),
                fmt_mops(row["ops_per_sec"] / 1e6),
                fmt_ns(row["p50_ns"]),
                fmt_ns(row["p99_ns"]),
                f"{frac * 100.0:+.1f}%" if frac is not None else "-",
            )
        title = "Parity-overhead microbenchmarks"
    elif args.suite == "cluster":
        out = args.out or "BENCH_pr7.json"
        payload = run_cluster_bench_suite(
            nodes=args.nodes, ops=args.ops, value_len=args.value_size
        )
        table = Table(["bench", "rf", "ops/s", "p50", "shipped", "extra"])
        for row in payload["results"]:
            if row["bench"] == "cluster_put":
                table.add(
                    row["bench"],
                    str(row["replication"]),
                    fmt_mops(row["ops_per_sec"] / 1e6),
                    fmt_ns(row["p50_ns"]),
                    str(row["shipped_records"]),
                    "-",
                )
            elif row["bench"] == "cluster_failover":
                table.add(
                    row["bench"], str(row["replication"]), "-", "-", "-",
                    f"failover {fmt_ns(row.get('failover_ns', 0.0))}",
                )
            else:
                table.add(
                    row["bench"], str(row["replication"]), "-", "-", "-",
                    f"{row.get('moved', 0)} keys in "
                    f"{fmt_ns(row.get('duration_ns', 0.0))}",
                )
        title = "Cluster benchmarks"
    else:
        out = args.out or "BENCH_pr5.json"
        payload = run_bench_suite(
            ops=args.ops,
            value_len=args.value_size,
            partitions=tuple(args.partitions),
            put_batch=args.put_batch,
        )
        table = Table(
            ["bench", "parts", "ops/s", "p50", "p99", "hits", "doorbells"]
        )
        for row in payload["results"]:
            table.add(
                row["bench"],
                str(row["partitions"]),
                fmt_mops(row["ops_per_sec"] / 1e6),
                fmt_ns(row["p50_ns"]),
                fmt_ns(row["p99_ns"]),
                str(row.get("cache_hits", "-")),
                str(row.get("doorbell_batches", "-")),
            )
        title = "Amortization microbenchmarks"
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2)
    text = (
        banner(title)
        + "\n"
        + table.render()
        + f"\n(json written to {out})"
    )
    return text, payload


def _cmd_loadgen(args: argparse.Namespace) -> tuple[str, Any]:
    from repro.loadgen import ArrivalCurve, LoadSpec, TenantSpec, run_load

    rate = args.rate if args.rate is not None else 2_000.0 * args.clients
    curve = ArrivalCurve(kind=args.curve)
    workload_factory = WORKLOADS[args.mix]
    n_tenants = max(1, args.tenants)
    per = args.clients // n_tenants
    tenants = []
    for i in range(n_tenants):
        clients = per + (1 if i < args.clients % n_tenants else 0)
        if clients == 0:
            continue
        tenants.append(
            TenantSpec(
                name=args.mix if n_tenants == 1 else f"{args.mix}-t{i}",
                workload=workload_factory(),
                clients=clients,
                ops_per_client=args.ops,
                rate_ops_s=rate * clients / args.clients,
                slo_ns=args.slo_us * 1_000.0,
                curve=curve,
            )
        )
    spec = LoadSpec(
        tenants=tuple(tenants),
        store=args.store,
        seed=args.seed,
        completion_batching=not args.no_batching,
        batch_bucket_ns=args.bucket_ns,
        admission_watermark=args.admission,
        churn_rotate_every=args.churn,
    )
    report = run_load(spec)
    payload = report.as_dict()
    table = Table(
        ["tenant", "clients", "ops", "err", "kops", "p50", "p99", "p999",
         "slo%", "goodput/s"]
    )
    for t in report.tenants:
        table.add(
            t.name,
            str(t.clients),
            str(t.ops),
            str(t.errors),
            f"{t.throughput_kops:.0f}",
            fmt_ns(t.p50_ns),
            fmt_ns(t.p99_ns),
            fmt_ns(t.p999_ns),
            f"{t.slo_fraction * 100.0:.1f}",
            f"{t.goodput_ops_s:.0f}",
        )
    lines = [
        banner(f"Open-loop load: {report.clients} clients on {report.store}"),
        table.render(),
        f"events/op {report.events_per_op:.2f}"
        + (
            f"  batches {report.sim['batches']}"
            f"  batched waits {report.sim['batched_waits']}"
            if "batches" in report.sim
            else ""
        ),
    ]
    if report.admission is not None:
        a = report.admission
        lines.append(
            f"admission: watermark {a['watermark']}  admitted {a['admitted']}"
            f"  shed {a['shed']}  peak inflight {a['peak_inflight']}"
        )
    if report.resilience["enabled"]:
        r = report.resilience
        lines.append(
            f"resilience: retries {r['retries']}  gave up {r['gave_up']}"
        )
    return "\n".join(lines), payload


def _cmd_bench_kernel(args: argparse.Namespace) -> tuple[str, Any, int]:
    from repro.harness.kernelbench import run_equivalence_check, run_kernel_suite

    payload: dict[str, Any] = run_kernel_suite(
        drain_events=args.drain_events,
        ping_events=args.ping_events,
        verb_ops=args.verb_ops,
    )
    table = Table(["cell", "baseline", "wheel/fast", "ratio"])
    for cell, unit in (("drain", "ev/s"), ("ping", "ev/s")):
        row = payload[cell]
        table.add(
            cell,
            f"{row['heap']['events_per_sec']:,.0f} {unit}",
            f"{row['wheel']['events_per_sec']:,.0f} {unit}",
            f"{row['ratio']:.2f}x",
        )
    verb = payload["verb"]
    table.add(
        "verb",
        f"{verb['baseline']['ops_per_sec']:,.0f} op/s "
        f"({verb['baseline']['events_per_op']:.1f} ev/op)",
        f"{verb['fast']['ops_per_sec']:,.0f} op/s "
        f"({verb['fast']['events_per_op']:.1f} ev/op)",
        f"{verb['ratio']:.2f}x",
    )
    lines = [banner("Kernel microbenchmarks"), table.render()]
    status = 0
    if not verb["sim_identical"]:
        lines.append("FAIL: verb cell simulated different nanoseconds")
        status = 1
    if not args.skip_equivalence:
        equiv = run_equivalence_check(ops=args.equiv_ops)
        payload["equivalence"] = equiv
        lines.append(
            "fig1/fig2 fast-path equivalence: "
            + ("exact (bit-identical)" if equiv["identical"] else "MISMATCH")
        )
        if not (equiv["identical"] and equiv["fastpath_engaged"]):
            status = 1
    if args.min_verb_ratio is not None and verb["ratio"] < args.min_verb_ratio:
        lines.append(
            f"FAIL: verb ratio {verb['ratio']:.2f}x < {args.min_verb_ratio}x"
        )
        status = 1
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    lines.append(f"(json written to {args.out})")
    return "\n".join(lines), payload, status


def _cmd_staticcheck(args: argparse.Namespace) -> tuple[str, Any, int]:
    from repro.staticcheck import DEFAULT_BASELINE, run_staticcheck

    baseline = None
    if not args.no_baseline:
        baseline = args.baseline or DEFAULT_BASELINE
    rules = (
        {r.strip() for r in args.rules.split(",") if r.strip()}
        if args.rules
        else None
    )
    rep = run_staticcheck(args.root, baseline=baseline, rules=rules)

    table = Table(["checker", "raw findings"])
    for name, count in rep.per_checker.items():
        table.add(name, count)
    text = banner("staticcheck") + "\n" + table.render()
    text += (
        f"\n{rep.modules_scanned} modules / {rep.functions_scanned} "
        f"functions analyzed in {rep.elapsed_s:.2f}s"
    )
    if rep.baseline_path:
        text += (
            f"\nbaseline {rep.baseline_path}: {len(rep.suppressed)} "
            "finding(s) suppressed"
        )
    for f in rep.findings:
        text += "\n" + f.render()
    for s in rep.unused_suppressions:
        text += (
            f"\nunused suppression: {s.rule} path={s.path or '*'} "
            f"({s.reason})"
        )
    status = 0
    if rep.findings:
        text += f"\nFAIL: {len(rep.findings)} unsuppressed finding(s)"
        status = 1
    elif args.strict_baseline and rep.unused_suppressions:
        text += (
            f"\nFAIL: {len(rep.unused_suppressions)} stale "
            "suppression(s) (--strict-baseline)"
        )
        status = 1
    else:
        text += "\nOK: no unsuppressed findings"
    return text, rep.as_dict(), status


def _jsonable(obj: Any) -> Any:
    """Coerce experiment dicts (int keys, tuples) into JSON-safe data."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    status = 0
    if args.command == "list":
        text, payload = _cmd_list()
    elif args.command == "run":
        text, payload = _cmd_run(args)
    elif args.command == "fig":
        text, payload = _cmd_fig(args)
    elif args.command == "crash":
        text, payload = _cmd_crash(args)
    elif args.command == "chaos":
        text, payload, status = _cmd_chaos(args)
    elif args.command == "crashmatrix":
        text, payload, status = _cmd_crashmatrix(args)
    elif args.command == "partitions":
        text, payload = _cmd_partitions(args)
    elif args.command == "bench":
        text, payload = _cmd_bench(args)
    elif args.command == "bench-kernel":
        text, payload, status = _cmd_bench_kernel(args)
    elif args.command == "loadgen":
        text, payload = _cmd_loadgen(args)
    elif args.command == "staticcheck":
        text, payload, status = _cmd_staticcheck(args)
    else:  # pragma: no cover - argparse enforces choices
        return 2
    print(text)
    json_path = getattr(args, "json", None)
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"(json written to {json_path})")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
