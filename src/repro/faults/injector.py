"""The fault injector: arms a plan against a deployed store.

Injection hooks throughout the stack (``rdma/qp.py``, ``rdma/rpc.py``,
``nvm/device.py``, ``core/background.py``, ``core/log_cleaning.py``)
each perform a single attribute check — ``injector is None`` — so an
unarmed system pays nothing, the same pattern as
:class:`~repro.sim.trace.Tracer`. An armed-but-empty plan yields no
events at any hook, so it provably changes no simulated timings.

Determinism: every probabilistic rule draws from its own named
:class:`~repro.sim.rng.RngRegistry` stream
(``fault.<plan>.<rule-index>.<kind>``), and coins are only spent on
operations that pass the rule's deterministic trigger checks, so the
fault schedule is a pure function of ``(plan, seed, workload)``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.faults.plan import FaultPlan
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

__all__ = ["FaultAction", "FaultEvent", "FaultInjector", "arm_store", "disarm_store"]


class FaultAction:
    """What a hook should do right now (returned by :meth:`FaultInjector.fire`)."""

    __slots__ = ("kind", "delay_ns", "factor", "rule")

    def __init__(self, kind: str, delay_ns: float, factor: float, rule: str) -> None:
        self.kind = kind
        self.delay_ns = delay_ns
        self.factor = factor
        self.rule = rule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultAction {self.kind} rule={self.rule}>"


class FaultEvent:
    """One injected fault, for the chaos report and reproducibility checks."""

    __slots__ = ("time", "site", "kind", "rule", "op_index", "partition")

    def __init__(
        self,
        time: float,
        site: str,
        kind: str,
        rule: str,
        op_index: int,
        partition: Optional[int],
    ) -> None:
        self.time = time
        self.site = site
        self.kind = kind
        self.rule = rule
        self.op_index = op_index
        self.partition = partition

    def as_tuple(self) -> tuple:
        return (self.time, self.site, self.kind, self.rule, self.op_index, self.partition)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultEvent(t={self.time:.1f}, {self.site}, {self.kind})"


class FaultInjector:
    """Evaluates an armed :class:`FaultPlan` at every injection point."""

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        rngs: RngRegistry,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.env = env
        self.plan = plan
        self.tracer = tracer
        self._rngs = [
            rngs.stream(f"fault.{plan.name}.{i}.{rule.kind}")
            if rule.probability < 1.0
            else None
            for i, rule in enumerate(plan.rules)
        ]
        self._fires = [0] * len(plan.rules)
        self._site_ops: dict[str, int] = {}
        #: Dedicated stream for media-fault placement (which bit flips,
        #: which word tears) — separate from the per-rule trigger coins
        #: so adding a media rule never perturbs other rules' draws.
        self.media_rng = rngs.stream(f"fault.{plan.name}.media")
        #: Installed by the crash harness: called (with the site name)
        #: when a ``crash`` rule fires; expected to power-fail the node
        #: and raise :class:`~repro.errors.PowerFailure`. Without a hook
        #: a ``crash`` rule is inert (the action is returned and hooks
        #: ignore the unknown kind).
        self.crash_hook = None
        #: Every fault injected, in firing order.
        self.events: list[FaultEvent] = []
        # One-shot partition context for sites that lack their own
        # (one-sided verbs): set by the client immediately before the
        # verb's ``yield from``, consumed at the verb's injection point
        # in the same kernel step, so it cannot leak across processes.
        self._ctx_partition: Optional[int] = None

    # -- partition context ---------------------------------------------------
    def set_context_partition(self, part: Optional[int]) -> None:
        self._ctx_partition = part

    def pop_context_partition(self) -> Optional[int]:
        part = self._ctx_partition
        self._ctx_partition = None
        return part

    # -- the hook entry point ------------------------------------------------
    def fire(self, site: str, partition: Optional[int] = None) -> Optional[FaultAction]:
        """Evaluate the plan at one injection-point visit.

        Returns the action of the first rule that fires (plan order), or
        None. Increments the per-site operation counter either way.
        """
        op_index = self._site_ops.get(site, 0)
        self._site_ops[site] = op_index + 1
        now = self.env.now
        for i, rule in enumerate(self.plan.rules):
            if self._fires[i] == rule.max_fires:  # None never equals an int
                continue
            if not rule.eligible(site, op_index, now):
                continue
            if rule.partition is not None and partition != rule.partition:
                continue
            rng = self._rngs[i]
            if rng is not None and rng.random() >= rule.probability:
                continue
            self._fires[i] += 1
            self.events.append(
                FaultEvent(now, site, rule.kind, rule.name, op_index, partition)
            )
            if self.tracer is not None:
                where = site if partition is None else f"{site}[p{partition}]"
                self.tracer.record(f"fault.{rule.kind}", f"{where}#{op_index}")
            if rule.kind == "crash" and self.crash_hook is not None:
                self.crash_hook(site)  # raises PowerFailure
            return FaultAction(rule.kind, rule.delay_ns, rule.factor, rule.name)
        return None

    # -- reporting ------------------------------------------------------------
    def schedule(self) -> list[tuple]:
        """The full fault schedule as comparable tuples (reproducibility)."""
        return [ev.as_tuple() for ev in self.events]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def site_op_counts(self) -> dict[str, int]:
        return dict(self._site_ops)


def arm_store(
    setup: Any,
    plan: FaultPlan,
    *,
    rngs: RngRegistry,
    tracer: Optional[Tracer] = None,
) -> FaultInjector:
    """Arm ``plan`` against a deployed :class:`~repro.stores.StoreSetup`.

    Installs one shared injector on the fabric (QP verbs), the server's
    NVM device (flush spikes), and its RPC dispatch loop (stalls); the
    background threads reach it through ``server.fabric``.
    """
    injector = FaultInjector(setup.env, plan, rngs, tracer=tracer)
    setup.fabric.injector = injector
    cluster = getattr(setup, "cluster", None)
    if cluster is not None:
        # Every node's RPC loop and NVM device shares the one injector,
        # and the cluster's kill-tick polls the ``cluster.*`` sites.
        for server in cluster.servers:
            server.rpc.injector = injector
            if server.device is not None:
                server.device.injector = injector
        cluster.arm(injector)
        return injector
    setup.server.rpc.injector = injector
    if setup.server.device is not None:
        setup.server.device.injector = injector
    return injector


def disarm_store(setup: Any) -> None:
    """Remove an armed injector; every hook reverts to zero cost."""
    setup.fabric.injector = None
    cluster = getattr(setup, "cluster", None)
    if cluster is not None:
        for server in cluster.servers:
            server.rpc.injector = None
            if server.device is not None:
                server.device.injector = None
        cluster.disarm()
        return
    setup.server.rpc.injector = None
    if setup.server.device is not None:
        setup.server.device.injector = None
