"""Client-side resilience: retry/backoff policy and partition health.

:class:`RetryPolicy` is pure configuration; :class:`ClientResilience`
is the per-client state machine the store clients consult:

* **timeout + retry** — each operation attempt races a timeout; a
  transport fault (QP error, dropped completion, timeout) or a
  retryable RPC fault triggers capped exponential backoff with seeded
  jitter, up to ``max_retries`` re-attempts;
* **re-connect** — when the client's QP (either direction) is in the
  error state, the retry loop re-establishes the connection before the
  next attempt (modelled as ``reconnect_ns`` plus a QP reset);
* **graceful degradation** — ``degrade_threshold`` *consecutive*
  one-sided read faults on a partition demote that partition to the
  RPC+RDMA read path (the same per-partition routing the log cleaner
  uses) for ``degrade_window_ns``; after the window the partition is
  *probing*: one successful pure read promotes it back, one more fault
  re-demotes it immediately.

Attaching a policy is opt-in per client; an unattached client behaves
bit-for-bit as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.sim.trace import Tracer

__all__ = ["RetryPolicy", "PartitionHealth", "ClientResilience"]


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the client resilience machinery (times in ns)."""

    timeout_ns: float = 2_000_000.0  # per-attempt deadline (0 disables)
    max_retries: int = 6
    backoff_base_ns: float = 2_000.0
    backoff_factor: float = 2.0
    backoff_max_ns: float = 200_000.0
    jitter: float = 0.2  # +/- fraction of the backoff, seeded
    reconnect_ns: float = 5_000.0  # QP teardown + re-establish cost
    degrade_threshold: int = 3  # consecutive pure-read faults to demote
    degrade_window_ns: float = 500_000.0  # demotion length before probing

    def __post_init__(self) -> None:
        if self.timeout_ns < 0:
            raise ConfigError("timeout_ns must be >= 0")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base_ns < 0 or self.backoff_max_ns < 0:
            raise ConfigError("backoff bounds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("jitter must be in [0, 1)")
        if self.reconnect_ns < 0:
            raise ConfigError("reconnect_ns must be >= 0")
        if self.degrade_threshold < 1:
            raise ConfigError("degrade_threshold must be >= 1")
        if self.degrade_window_ns < 0:
            raise ConfigError("degrade_window_ns must be >= 0")


class PartitionHealth:
    """Degradation state of one partition, as seen by one client."""

    __slots__ = ("consecutive_faults", "degraded_until", "probing")

    def __init__(self) -> None:
        self.consecutive_faults = 0
        self.degraded_until = 0.0
        self.probing = False


class ClientResilience:
    """Per-client retry/backoff/degradation state (see module docstring)."""

    def __init__(
        self,
        policy: RetryPolicy,
        rng: np.random.Generator,
        tracer: Optional[Tracer] = None,
        name: str = "client",
    ) -> None:
        self.policy = policy
        self.rng = rng
        self.tracer = tracer
        self.name = name
        self._health: dict[int, PartitionHealth] = {}
        # counters (surface of the chaos report)
        self.retries = 0
        self.timeouts = 0
        self.reconnects = 0
        self.gave_up = 0
        self.demotions = 0
        self.promotions = 0

    # -- backoff ---------------------------------------------------------------
    def backoff_ns(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), with seeded jitter."""
        p = self.policy
        base = min(
            p.backoff_max_ns,
            p.backoff_base_ns * (p.backoff_factor ** (attempt - 1)),
        )
        if p.jitter > 0:
            base *= 1.0 + p.jitter * (2.0 * float(self.rng.random()) - 1.0)
        return base

    # -- bookkeeping hooks -------------------------------------------------------
    def note_retry(self, op: str, attempt: int, cause: str) -> None:
        self.retries += 1
        if self.tracer is not None:
            self.tracer.record("retry", f"{self.name} {op} attempt={attempt} {cause}")

    def note_timeout(self) -> None:
        self.timeouts += 1

    def note_reconnect(self) -> None:
        self.reconnects += 1
        if self.tracer is not None:
            self.tracer.record("reconnect", self.name)

    def note_gave_up(self, op: str) -> None:
        self.gave_up += 1
        if self.tracer is not None:
            self.tracer.record("gave_up", f"{self.name} {op}")

    # -- partition degradation ---------------------------------------------------
    def partition_degraded(self, part: int, now: float) -> bool:
        """True while ``part`` should stay on the RPC read path.

        Crossing the end of the demotion window flips the partition to
        *probing* (pure reads allowed again, promotion pending).
        """
        h = self._health.get(part)
        if h is None:
            return False
        if h.degraded_until > now:
            return True
        if h.degraded_until > 0.0 and not h.probing:
            h.probing = True
        return False

    def note_pure_fault(self, part: int, now: float) -> None:
        """A one-sided read on ``part`` hit a transport fault."""
        h = self._health.setdefault(part, PartitionHealth())
        h.consecutive_faults += 1
        if h.probing or h.consecutive_faults >= self.policy.degrade_threshold:
            h.degraded_until = now + self.policy.degrade_window_ns
            h.probing = False
            self.demotions += 1
            if self.tracer is not None:
                self.tracer.record("demote", f"{self.name} part={part}")

    def note_pure_ok(self, part: int) -> None:
        """A one-sided read on ``part`` completed at the transport level."""
        h = self._health.get(part)
        if h is None:
            return
        if h.probing:
            self.promotions += 1
            if self.tracer is not None:
                self.tracer.record("promote", f"{self.name} part={part}")
        h.consecutive_faults = 0
        h.degraded_until = 0.0
        h.probing = False

    def degraded_partitions(self, now: float) -> list[int]:
        return sorted(
            part for part, h in self._health.items() if h.degraded_until > now
        )

    def snapshot(self) -> dict[str, int]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "reconnects": self.reconnects,
            "gave_up": self.gave_up,
            "demotions": self.demotions,
            "promotions": self.promotions,
        }
