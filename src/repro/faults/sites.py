"""The fault-site registry: single source of truth for injection sites.

Every ``injector.fire("<site>")`` call in the tree must name (or, for
dynamic sites, match a family of) an entry registered here, and every
entry here must be fired somewhere — the static cross-checker
(:mod:`repro.staticcheck.registry`) enforces both directions, so a
typo'd site string or a dead registry row is a CI failure, not a
silently-never-firing chaos rule.

Consumers:

* :mod:`repro.faults.plans` validates every shipped rule's ``site``
  pattern against the registry at build time (:func:`validate_pattern`);
* :mod:`repro.harness.crashmatrix` derives its default crash-site list
  from the ``crash_point`` rows (:func:`crash_matrix_sites`);
* :mod:`repro.staticcheck.registry` cross-checks the fired-site universe
  extracted from the AST against :func:`all_known_sites` /
  :func:`family_prefixes`.

A :class:`Site` is either *static* (``members is None``: the site name
itself is fired, e.g. ``rpc.dispatch``) or a *family* (``members`` or
``dynamic`` set: the firing code interpolates a suffix, e.g.
``bg.cleaner.{stage}``). Families with a closed member set enumerate it;
open families (``cluster.node<N>`` — one site per deployed node) mark
themselves ``dynamic`` and are matched by prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ConfigError

__all__ = [
    "Site",
    "SITES",
    "all_known_sites",
    "crash_matrix_sites",
    "family_prefixes",
    "is_known_site",
    "validate_pattern",
]


@dataclass(frozen=True)
class Site:
    """One registered injection site (or family of sites).

    Attributes
    ----------
    name:
        The fired site string, or the family prefix for dynamic sites.
    fired_by:
        Module that calls ``injector.fire`` for this site (documentation
        + the cross-checker's dead-site error message).
    description:
        What an operation at this site is.
    members:
        For closed families: the concrete suffixes interpolated at the
        fire call (full site = ``f"{name}.{member}"``).
    dynamic:
        Open family: any ``name.<suffix>`` is valid (one site per
        deployed cluster node).
    crash_point:
        The crash-point matrix pulls the plug at this site by default.
        ``recovery.step`` is a crash point too but is driven by the
        matrix's dedicated double-crash phase, not the default sweep.
    """

    name: str
    fired_by: str
    description: str
    members: Optional[tuple[str, ...]] = None
    dynamic: bool = False
    crash_point: bool = False

    def site_names(self) -> Iterator[str]:
        """Concrete site strings (static name, or each closed member)."""
        if self.members is None:
            yield self.name
        else:
            for m in self.members:
                yield f"{self.name}.{m}"

    def covers(self, site: str) -> bool:
        """Does ``site`` belong to this registry row?"""
        if self.dynamic:
            return site.startswith(self.name + ".") or site == self.name
        return site in self.site_names()


#: The registry. Crash-point rows are ordered exactly as the crash-point
#: matrix has always swept them (the matrix report's row order — and so
#: its JSON artifact — is part of the bit-identical surface).
SITES: tuple[Site, ...] = (
    Site(
        "qp",
        "repro.rdma.qp",
        "head of every verb on an Endpoint",
        members=(
            "write",
            "write_many",
            "read",
            "cas",
            "faa",
            "send",
            "write_imm",
        ),
    ),
    Site(
        "nvm.store64",
        "repro.nvm.device",
        "aligned 8-byte atomic store (publish boundary)",
        crash_point=True,
    ),
    Site(
        "nvm.flush",
        "repro.nvm.device",
        "state-level writeback (timing charged by the caller)",
        crash_point=True,
    ),
    Site(
        "nvm.persist",
        "repro.nvm.device",
        "timed CLWB sweep + SFENCE drain",
        crash_point=True,
    ),
    Site(
        "rpc.dispatch",
        "repro.rdma.rpc",
        "server polling thread, before dispatching the next message",
        crash_point=True,
    ),
    Site(
        "bg.verifier",
        "repro.core.background",
        "background verifier, per settle step",
        crash_point=True,
    ),
    Site(
        "bg.cleaner",
        "repro.core.log_cleaning",
        "log-cleaning stage entry (compress, merge, finish)",
        members=("compress", "merge", "finish"),
        crash_point=True,
    ),
    Site(
        "bg.scrubber",
        "repro.core.scrub",
        "online scrubber, per scanned head",
    ),
    Site(
        "recovery.step",
        "repro.core.recovery",
        "per-entry step inside recovery (double-crash phase)",
    ),
    Site(
        "cluster",
        "repro.cluster.node",
        "per-node kill-poll visit (cluster.node0, cluster.node1, ...)",
        dynamic=True,
    ),
    Site(
        "admission",
        "repro.baselines.partition",
        "admission-control decision at handler entry (enter fires per "
        "request while the watermark is armed; shed fires when one is "
        "turned away with ERR_BUSY)",
        members=("enter", "shed"),
    ),
    Site(
        "loadgen",
        "repro.loadgen.engine",
        "open-loop load engine, per client arrival before the op issues",
        members=("arrival",),
    ),
)


def all_known_sites() -> tuple[str, ...]:
    """Every concrete site string from closed rows, in registry order."""
    out: list[str] = []
    for site in SITES:
        if not site.dynamic:
            out.extend(site.site_names())
    return tuple(out)


def family_prefixes() -> tuple[str, ...]:
    """Prefixes of family rows (closed and open), for f-string sites."""
    return tuple(s.name for s in SITES if s.members is not None or s.dynamic)


def crash_matrix_sites() -> tuple[str, ...]:
    """Default crash-site sweep for the crash-point matrix."""
    out: list[str] = []
    for site in SITES:
        if site.crash_point:
            out.extend(site.site_names())
    return tuple(out)


def is_known_site(site: str) -> bool:
    """Is ``site`` a registered concrete site (or dynamic-family member)?"""
    return any(row.covers(site) for row in SITES)


def validate_pattern(pattern: str, *, context: str = "") -> None:
    """Reject a rule site ``pattern`` that can never match a registered
    site (exact unknown name, or a ``prefix.*`` covering nothing).

    Raises :class:`~repro.errors.ConfigError`; used by the shipped-plan
    builders so a typo'd plan fails at construction, not by silently
    never firing.
    """
    if pattern == "*":
        return
    where = f" in {context}" if context else ""
    if pattern.endswith(".*"):
        prefix = pattern[:-2]
        for row in SITES:
            if row.dynamic or row.members is not None:
                if row.name == prefix or row.name.startswith(prefix + "."):
                    return
            for name in row.site_names():
                if name.startswith(prefix + "."):
                    return
        raise ConfigError(
            f"site pattern {pattern!r}{where} matches no registered "
            f"injection site (see repro/faults/sites.py)"
        )
    if not is_known_site(pattern):
        raise ConfigError(
            f"unknown injection site {pattern!r}{where} "
            f"(see repro/faults/sites.py)"
        )
