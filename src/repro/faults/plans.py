"""Shipped fault plans: the canned chaos scenarios CI sweeps.

Each builder returns a :class:`~repro.faults.plan.FaultPlan` sized so a
short seeded run (a few hundred operations) sees a meaningful number of
faults without starving the workload. They are the repo's standing
robustness gauntlet: the chaos CI job asserts zero advertised-guarantee
violations for every plan here, so adding a plan extends the guarantee
surface the repo defends.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.sites import validate_pattern

__all__ = [
    "NODE_KILL_PLANS",
    "SHIPPED_PLANS",
    "shipped_plan",
    "shipped_plan_names",
]


def qp_flap(probability: float = 0.01) -> FaultPlan:
    """Random QP-to-error transitions across every verb; the client must
    re-connect and retry."""
    return FaultPlan(
        "qp-flap",
        (FaultRule(kind="qp_error", site="qp.*", probability=probability),),
        description="random QP error-state transitions on all verbs",
    )


def drop_completions(
    probability: float = 0.015, detect_ns: float = 20_000.0
) -> FaultPlan:
    """WRITE/READ work requests vanish; the initiator burns ``detect_ns``
    of transport retries before the QP errors out."""
    return FaultPlan(
        "drop-completions",
        (
            FaultRule(
                kind="completion_drop",
                site="qp.write",
                probability=probability,
                delay_ns=detect_ns,
            ),
            FaultRule(
                kind="completion_drop",
                site="qp.read",
                probability=probability,
                delay_ns=detect_ns,
            ),
        ),
        description="lost one-sided completions with detection latency",
    )


def slow_nvm(factor: float = 8.0, probability: float = 0.3) -> FaultPlan:
    """NVM flush latency spikes (media congestion): a fraction of
    CLWB+fence sweeps cost ``factor``x."""
    return FaultPlan(
        "slow-nvm",
        (
            FaultRule(
                kind="nvm_spike",
                site="nvm.persist",
                probability=probability,
                factor=factor,
                delay_ns=2_000.0,
            ),
        ),
        description="NVM flush latency spikes on the persist path",
    )


def rpc_stall(delay_ns: float = 50_000.0, probability: float = 0.05) -> FaultPlan:
    """The server's dispatch thread occasionally stalls (scheduling
    hiccup, cache thrash) before picking up the next request."""
    return FaultPlan(
        "rpc-stall",
        (
            FaultRule(
                kind="rpc_stall",
                site="rpc.dispatch",
                probability=probability,
                delay_ns=delay_ns,
            ),
        ),
        description="server RPC dispatch stalls",
    )


def verifier_pause(delay_ns: float = 200_000.0, probability: float = 0.1) -> FaultPlan:
    """The background verifier keeps pausing, so durability flags lag
    and reads must lean on the RPC path's on-demand verification."""
    return FaultPlan(
        "verifier-pause",
        (
            FaultRule(
                kind="pause",
                site="bg.verifier",
                probability=probability,
                delay_ns=delay_ns,
            ),
        ),
        description="stalled background verifier",
    )


def jittery_fabric(delay_ns: float = 15_000.0, probability: float = 0.05) -> FaultPlan:
    """Fat-tailed completion delays on every verb (congested fabric)."""
    return FaultPlan(
        "jittery-fabric",
        (
            FaultRule(
                kind="completion_delay",
                site="qp.*",
                probability=probability,
                delay_ns=delay_ns,
            ),
        ),
        description="heavy-tailed verb completion delays",
    )


def bitrot(probability: float = 0.02) -> FaultPlan:
    """Latent media errors: a fraction of writebacks leave one flipped
    bit behind on the DIMM (Pangolin's threat model). eFactory's
    durability-flag shortcut would serve the rot forever; the online
    scrubber (:mod:`repro.core.scrub`) must find and repair it."""
    return FaultPlan(
        "bitrot",
        (
            FaultRule(
                kind="nvm_bitrot", site="nvm.persist", probability=probability
            ),
            FaultRule(
                kind="nvm_bitrot", site="nvm.flush", probability=probability / 2
            ),
        ),
        description="latent single-bit media corruption on writebacks",
    )


def bitrot_heavy(probability: float = 0.12) -> FaultPlan:
    """Aggressive bitrot: enough flips that stripes accumulate *multiple*
    faulted pages, defeating single-parity reconstruction. Exercises the
    escalation ladder — parity first, then replica-assisted repair
    (cluster), then version rollback, then clear."""
    return FaultPlan(
        "bitrot-heavy",
        (
            FaultRule(
                kind="nvm_bitrot", site="nvm.persist", probability=probability
            ),
            FaultRule(
                kind="nvm_bitrot", site="nvm.flush", probability=probability / 2
            ),
        ),
        description="dense multi-fault media corruption on writebacks",
    )


def torn_media(probability: float = 0.02) -> FaultPlan:
    """Writebacks that reach the power-fail domain only partially: one
    8-byte word of the flushed range is withheld (torn store)."""
    return FaultPlan(
        "torn-media",
        (
            FaultRule(
                kind="nvm_torn_store", site="nvm.persist", probability=probability
            ),
        ),
        description="partially-persisted writebacks (torn stores)",
    )


def node_kill(after_op: int = 3) -> FaultPlan:
    """Kill the cluster's node 0 (a primary) once the workload is warm.

    The node-kill site counter ticks once per kill-poll visit to each
    live node, so ``after_op`` is measured in poll rounds, not client
    ops — small values mean "early in the run".
    """
    return FaultPlan(
        "node-kill",
        (
            FaultRule(
                kind="node_kill",
                site="cluster.node0",
                after_op=after_op,
                max_fires=1,
            ),
        ),
        description="whole-node failure of a primary; failover must promote",
    )


def kill_backup(after_op: int = 3) -> FaultPlan:
    """Kill a node that is (mostly) a backup: acks must continue at
    degraded redundancy once the detector shrinks the target set."""
    return FaultPlan(
        "kill-backup",
        (
            FaultRule(
                kind="node_kill",
                site="cluster.node1",
                after_op=after_op,
                max_fires=1,
            ),
        ),
        description="whole-node failure of a backup; acks continue degraded",
    )


def kill_during_migration(after_op: int = 25) -> FaultPlan:
    """Kill the migration source mid-move: the migration must abort (or
    the failover path must take over) with no acked durable PUT lost."""
    return FaultPlan(
        "kill-during-migration",
        (
            FaultRule(
                kind="node_kill",
                site="cluster.node0",
                after_op=after_op,
                max_fires=1,
            ),
        ),
        description="node death racing a live partition migration",
    )


SHIPPED_PLANS: dict[str, Callable[..., FaultPlan]] = {
    "qp-flap": qp_flap,
    "drop-completions": drop_completions,
    "slow-nvm": slow_nvm,
    "rpc-stall": rpc_stall,
    "verifier-pause": verifier_pause,
    "jittery-fabric": jittery_fabric,
    "bitrot": bitrot,
    "bitrot-heavy": bitrot_heavy,
    "torn-media": torn_media,
    "node-kill": node_kill,
    "kill-backup": kill_backup,
    "kill-during-migration": kill_during_migration,
}

#: Plans that need a multi-node cluster (the chaos CLI auto-sizes the
#: deployment to 3 nodes / replication 2 when one of these is named).
NODE_KILL_PLANS: frozenset[str] = frozenset(
    {"node-kill", "kill-backup", "kill-during-migration"}
)


def shipped_plan_names() -> list[str]:
    return list(SHIPPED_PLANS)


def shipped_plan(name: str, **overrides) -> FaultPlan:
    """Build a shipped plan by name (optionally re-parameterised).

    Every rule's site pattern is validated against the fault-site
    registry (:mod:`repro.faults.sites`): a plan naming a site nothing
    fires is a :class:`~repro.errors.ConfigError` at build time, not a
    rule that silently never triggers.
    """
    builder = SHIPPED_PLANS.get(name)
    if builder is None:
        raise ConfigError(
            f"unknown fault plan {name!r}; known: {shipped_plan_names()}"
        )
    plan = builder(**overrides)
    for rule in plan.rules:
        validate_pattern(rule.site, context=f"plan {plan.name!r}")
    return plan
