"""Deterministic fault injection and client resilience.

The subsystem has three layers:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` /
  :class:`FaultRule` specs: *which* fault, *where* in the stack, *when*
  (op window, time window, partition, seeded probability);
* :mod:`repro.faults.injector` — the armed :class:`FaultInjector`
  consulted by zero-cost hooks in the RDMA verbs, the RPC dispatch
  loop, the NVM persist path and the background threads;
* :mod:`repro.faults.policy` — the client-side :class:`RetryPolicy` /
  :class:`ClientResilience` machinery (timeout, backoff + jitter,
  re-connect, per-partition graceful degradation).

:mod:`repro.faults.plans` ships the canned chaos scenarios exercised by
``python -m repro chaos`` and CI.
"""

from repro.faults.injector import (
    FaultAction,
    FaultEvent,
    FaultInjector,
    arm_store,
    disarm_store,
)
from repro.faults.plan import FAULT_KINDS, FaultKind, FaultPlan, FaultRule, site_matches
from repro.faults.plans import SHIPPED_PLANS, shipped_plan, shipped_plan_names
from repro.faults.policy import ClientResilience, PartitionHealth, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "SHIPPED_PLANS",
    "ClientResilience",
    "FaultAction",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "PartitionHealth",
    "RetryPolicy",
    "arm_store",
    "disarm_store",
    "shipped_plan",
    "shipped_plan_names",
    "site_matches",
]
