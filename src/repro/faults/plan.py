"""Declarative fault plans.

A :class:`FaultPlan` is an ordered tuple of :class:`FaultRule` specs.
Each rule names a *fault kind* from :data:`FAULT_KINDS` (what happens),
a *site pattern* (where in the stack it can happen), and a set of
*triggers* (when it happens): a per-site operation-count window, a
simulated-time window, a partition filter, and a seeded probability.

Plans are pure data — they carry no state and no randomness. All
stochastic choices are made by the
:class:`~repro.faults.injector.FaultInjector` from named
:class:`~repro.sim.rng.RngRegistry` streams, so a chaos run is exactly
reproducible from ``(plan, seed)``.

Sites form a small hierarchy and patterns may end in ``.*``::

    qp.write  qp.read  qp.cas  qp.faa  qp.send  qp.write_imm
    rpc.dispatch
    nvm.persist  nvm.flush  nvm.store64
    bg.verifier  bg.scrubber
    bg.cleaner.compress  bg.cleaner.merge  bg.cleaner.finish
    recovery.step
    cluster.node0  cluster.node1  ...  (one site per cluster node)
    admission.enter  admission.shed
    loadgen.arrival

so ``site="qp.*"`` targets every verb while ``site="qp.read"`` faults
only one-sided READs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConfigError

__all__ = ["FaultKind", "FAULT_KINDS", "FaultRule", "FaultPlan", "site_matches"]


@dataclass(frozen=True)
class FaultKind:
    """One injectable fault type and the sites it may attach to."""

    name: str
    site_pattern: str  # sites a rule of this kind may target
    description: str
    uses_delay: bool = False
    uses_factor: bool = False


#: Registry of injectable faults. ``delay_ns``/``factor`` on a rule are
#: only meaningful where the kind says so.
FAULT_KINDS: dict[str, FaultKind] = {
    kind.name: kind
    for kind in (
        FaultKind(
            "qp_error",
            "qp.*",
            "the QP transitions to the error state; the verb fails "
            "immediately and every later verb fails until the client "
            "re-connects (Endpoint.reset)",
        ),
        FaultKind(
            "completion_delay",
            "qp.*",
            "the verb's completion is delayed by delay_ns (congestion, "
            "retransmission) but eventually succeeds",
            uses_delay=True,
        ),
        FaultKind(
            "completion_drop",
            "qp.*",
            "the work request is lost: after delay_ns of detection time "
            "(transport retry exhaustion) the QP errors out and the verb "
            "raises; the payload never reaches the target",
            uses_delay=True,
        ),
        FaultKind(
            "rpc_stall",
            "rpc.dispatch",
            "the server's polling thread stalls delay_ns before "
            "dispatching the next message",
            uses_delay=True,
        ),
        FaultKind(
            "nvm_spike",
            "nvm.persist",
            "one CLWB+fence sweep costs factor x the modelled latency "
            "plus delay_ns (media congestion, thermal throttling)",
            uses_delay=True,
            uses_factor=True,
        ),
        FaultKind(
            "pause",
            "bg.*",
            "the background thread (verifier, scrubber or cleaner) "
            "sleeps delay_ns before its next step",
            uses_delay=True,
        ),
        FaultKind(
            "nvm_bitrot",
            "nvm.*",
            "latent media corruption: right after the writeback, one bit "
            "of the persisted range flips on media (detected only by a "
            "later CRC check — the scrubber's threat model)",
        ),
        FaultKind(
            "nvm_torn_store",
            "nvm.*",
            "one aligned 8-byte word of the flushed range fails to reach "
            "the ADR domain; its line stays dirty, so only a crash "
            "before the next writeback exposes the tear",
        ),
        FaultKind(
            "node_kill",
            "cluster.*",
            "whole-node failure: the node's NIC goes dark (in-flight "
            "RDMA torn, later verbs fail target_down), its processes "
            "stop, and its NVM is preserved but unreachable; the cluster "
            "failure detector must notice and promote a backup",
        ),
        FaultKind(
            "admission_shed",
            "admission.*",
            "admission control force-sheds the request (retryable "
            "ERR_BUSY) even below the watermark, exercising the client "
            "backoff loop without real overload; only fires while "
            "admission_watermark > 0 arms the site",
        ),
        FaultKind(
            "client_stall",
            "loadgen.*",
            "the open-loop load generator defers this client's next "
            "arrival by delay_ns (generator-side scheduling hiccup; the "
            "op is late, not lost)",
            uses_delay=True,
        ),
        FaultKind(
            "crash",
            "*",
            "power failure at this injection-point visit: the node's "
            "in-flight state resolves per the crash model and the "
            "harness's crash hook raises PowerFailure (crash-point "
            "matrix trigger; a no-op when no hook is installed)",
        ),
    )
}


def site_matches(pattern: str, site: str) -> bool:
    """Match ``site`` against ``pattern`` (exact, ``*``, or ``prefix.*``)."""
    if pattern == "*" or pattern == site:
        return True
    if pattern.endswith(".*"):
        return site.startswith(pattern[:-1])
    return False


@dataclass(frozen=True)
class FaultRule:
    """One injectable fault plus its triggers (see module docstring).

    Trigger semantics (all must hold for the rule to fire):

    * ``after_op <= site_op_index < before_op`` — the per-site operation
      counter (every injection-point visit at a site increments it);
    * ``t_start <= now < t_end`` — simulated time window;
    * ``partition`` — only operations carrying this partition id (rules
      with a partition filter never match context-free sites);
    * ``probability`` — a seeded coin per otherwise-eligible operation;
    * ``max_fires`` — total firing budget for the rule.
    """

    kind: str
    site: str = ""
    after_op: int = 0
    before_op: int | None = None
    t_start: float = 0.0
    t_end: float = float("inf")
    partition: int | None = None
    probability: float = 1.0
    max_fires: int | None = None
    delay_ns: float = 0.0
    factor: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        spec = FAULT_KINDS.get(self.kind)
        if spec is None:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; known: {sorted(FAULT_KINDS)}"
            )
        if not self.site:
            object.__setattr__(self, "site", spec.site_pattern)
        elif not site_matches(spec.site_pattern, self.site) and not site_matches(
            self.site, spec.site_pattern
        ):
            raise ConfigError(
                f"fault kind {self.kind!r} cannot attach to site {self.site!r} "
                f"(expects {spec.site_pattern!r})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError("probability must be in [0, 1]")
        if self.delay_ns < 0:
            raise ConfigError("delay_ns must be >= 0")
        if self.factor <= 0:
            raise ConfigError("factor must be > 0")
        if self.after_op < 0:
            raise ConfigError("after_op must be >= 0")
        if self.before_op is not None and self.before_op <= self.after_op:
            raise ConfigError("before_op must be > after_op")
        if self.t_end <= self.t_start:
            raise ConfigError("t_end must be > t_start")
        if self.max_fires is not None and self.max_fires < 1:
            raise ConfigError("max_fires must be >= 1")
        if not self.name:
            object.__setattr__(self, "name", f"{self.kind}@{self.site}")

    def eligible(self, site: str, op_index: int, now: float) -> bool:
        """Deterministic (coin-free) part of the trigger check."""
        if not site_matches(self.site, site):
            return False
        if op_index < self.after_op:
            return False
        if self.before_op is not None and op_index >= self.before_op:
            return False
        return self.t_start <= now < self.t_end


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered collection of fault rules.

    Rule order matters: at most one rule fires per injection-point visit,
    and earlier rules win ties deterministically.
    """

    name: str
    rules: tuple[FaultRule, ...] = field(default_factory=tuple)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a fault plan needs a name")
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    @property
    def empty(self) -> bool:
        return not self.rules

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> "Iterable[FaultRule]":
        return iter(self.rules)
