"""Simulated-time cost of CRC computation.

Calibrated directly against the paper's own measurement (§3): verifying
a 4 KiB object takes ≈4.4 µs on their Xeon E5-2640 v4, "which accounts
for 45% and 35% of the read latency for Erda and Forca respectively".
With ``base_ns = 60`` and ``ns_per_byte = 1.06``:

>>> CrcCostModel().cost_ns(4096)
4401.76

Every place a store computes a CRC in simulation charges this cost to
whoever runs it — the client (Erda), the server request handler (Forca,
eFactory's RPC-read fallback), or the background thread (eFactory),
which is exactly the placement argument the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["CrcCostModel"]


@dataclass(frozen=True)
class CrcCostModel:
    """Affine CRC time model: ``base_ns + ns_per_byte * nbytes``."""

    base_ns: float = 60.0
    ns_per_byte: float = 1.06

    def __post_init__(self) -> None:
        if self.base_ns < 0 or self.ns_per_byte < 0:
            raise ConfigError("CrcCostModel parameters must be >= 0")

    def cost_ns(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ConfigError(f"nbytes must be >= 0, got {nbytes}")
        return self.base_ns + self.ns_per_byte * nbytes
