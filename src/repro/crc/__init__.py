"""CRC-32 integrity checking: real checksums + calibrated time cost."""

from repro.crc.cost import CrcCostModel
from repro.crc.crc32 import CRC32_POLY, crc32, crc32_combine, crc32_fast

__all__ = ["CRC32_POLY", "CrcCostModel", "crc32", "crc32_combine", "crc32_fast"]
