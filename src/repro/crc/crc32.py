"""CRC-32 (IEEE 802.3 polynomial, reflected) integrity checksums.

This is the *functional* integrity check the stores run over object
values — it really does detect the torn writes the crash model produces.
The simulated *time* the computation would take on the paper's Xeon is a
separate concern, modelled in :mod:`repro.crc.cost`.

Three entry points:

* :func:`crc32` — table-driven byte-at-a-time implementation, the
  self-contained reference.
* :func:`crc32_fast` — delegates to :func:`zlib.crc32` (same polynomial)
  for hot paths; property tests assert it matches :func:`crc32`
  bit-for-bit. Throughput simulations checksum hundreds of megabytes,
  which a pure-Python loop cannot sustain (guides: move the measured
  bottleneck to compiled code).
* :func:`crc32_combine` — CRC of a concatenation from per-part CRCs in
  O(log n) GF(2) matrix steps, used to verify chunked transfers without
  re-touching the data.
"""

from __future__ import annotations

import zlib

__all__ = ["CRC32_POLY", "crc32", "crc32_fast", "crc32_combine"]

#: Reflected IEEE polynomial.
CRC32_POLY = 0xEDB88320
_MASK = 0xFFFFFFFF


def _make_table() -> list[int]:
    table = []
    for n in range(256):
        c = n
        for _ in range(8):
            c = (c >> 1) ^ CRC32_POLY if c & 1 else c >> 1
        table.append(c)
    return table


_TABLE = _make_table()


def crc32(data: bytes | bytearray | memoryview, crc: int = 0) -> int:
    """Reference table-driven CRC-32; ``crc`` chains partial results.

    ``crc32(b + c) == crc32(c, crc32(b))`` for any split.
    """
    c = (crc & _MASK) ^ _MASK
    table = _TABLE
    for byte in bytes(data):
        c = table[(c ^ byte) & 0xFF] ^ (c >> 8)
    return (c ^ _MASK) & _MASK


def crc32_fast(data: bytes | bytearray | memoryview, crc: int = 0) -> int:
    """CRC-32 via :mod:`zlib` — identical results, C speed."""
    return zlib.crc32(bytes(data), crc & _MASK) & _MASK


# -- crc combination (zlib-style GF(2) matrix trick) -------------------------


def _gf2_matrix_times(mat: list[int], vec: int) -> int:
    total = 0
    idx = 0
    while vec:
        if vec & 1:
            total ^= mat[idx]
        vec >>= 1
        idx += 1
    return total


def _gf2_matrix_square(square: list[int], mat: list[int]) -> None:
    for i in range(32):
        square[i] = _gf2_matrix_times(mat, mat[i])


def crc32_combine(crc_a: int, crc_b: int, len_b: int) -> int:
    """CRC of ``A + B`` given ``crc32(A)``, ``crc32(B)`` and ``len(B)``.

    Implements zlib's crc32_combine: advances ``crc_a`` through
    ``len_b`` zero bytes using repeated squaring of the CRC shift
    operator over GF(2), then XORs in ``crc_b``.
    """
    if len_b < 0:
        raise ValueError(f"len_b must be >= 0, got {len_b}")
    if len_b == 0:
        return crc_a & _MASK

    even = [0] * 32  # even-power-of-two zero operator
    odd = [0] * 32  # odd-power operator

    # operator for one zero bit
    odd[0] = CRC32_POLY
    row = 1
    for i in range(1, 32):
        odd[i] = row
        row <<= 1
    # put operator for two zero bits in even
    _gf2_matrix_square(even, odd)
    # put operator for four zero bits in odd
    _gf2_matrix_square(odd, even)

    crc = crc_a & _MASK
    while True:
        # apply len_b zero *bytes*, one bit of len at a time
        _gf2_matrix_square(even, odd)
        if len_b & 1:
            crc = _gf2_matrix_times(even, crc)
        len_b >>= 1
        if len_b == 0:
            break
        _gf2_matrix_square(odd, even)
        if len_b & 1:
            crc = _gf2_matrix_times(odd, crc)
        len_b >>= 1
        if len_b == 0:
            break

    return (crc ^ (crc_b & _MASK)) & _MASK
