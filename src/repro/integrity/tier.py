"""Parity + checksum-ledger integrity tier for the log pools.

Layout (per partition, per pool, carved after the log pools when
``StoreConfig.parity_stripe_kb > 0``):

* **parity region** — one :data:`PARITY_PAGE`-byte XOR parity page per
  ``parity_stripe_kb``-KiB stripe of the pool. A pool byte at offset
  ``o`` belongs to stripe ``o // stripe_bytes`` and parity column
  ``o % PARITY_PAGE`` (stripes are a multiple of the page size, so the
  column is stable across the stripe).
* **checksum ledger** — one 8-byte slot per ``pool.align`` granule:
  ``(size, crc32)`` of the *covered* object starting at that granule.
* **root line** — in integrity-tree mode, a CRC over the sorted ledger
  (a one-level Merkle collapse), persisted with each verifier batch.

The DRAM copies are authoritative: parity pages and ledger entries are
kept in memory and written through to NVM so that every update creates
a real persist boundary for the crash matrix, but **no read path ever
trusts the NVM copies** — recovery deterministically recomputes parity,
ledger and root from the recovered pool contents and rewrites the full
regions, which keeps repeated recoveries byte-identical (idempotent)
even when a crash tore the integrity regions themselves.

Parity is XORed over *covered* bytes only. An object becomes covered
when the background verifier settles it (CRC verified + flushed), so
in-flight client WRITEs never skew the parity. Post-settle mutations of
covered bytes (flag invalidation, ``nxt_ptr`` forward links, cleaner
``pre_ptr`` splices) feed the old⊕new delta back into the parity page
and refresh the ledger CRC.

Reconstruction of a corrupted covered object replaces each overlapped
pool page in turn with ``parity ⊕ XOR(covered media bytes of the other
pages in the stripe)`` and hands the candidate to the caller's
validator (header parse, key fingerprint, value CRC); with at most one
faulted page per stripe exactly one candidate validates.

This module deliberately avoids importing the store layers — pools and
locations are duck-typed — so it can sit below ``baselines`` and
``core`` without cycles.
"""

from __future__ import annotations

import struct
from collections.abc import Generator
from typing import Any, Callable, Iterable, Optional

from repro.crc.crc32 import crc32_fast
from repro.kv.objects import FLAG_DURABLE, OBJECT_HEADER, parse_object
from repro.sim.kernel import Event

__all__ = [
    "LEDGER_SLOT",
    "PARITY_PAGE",
    "PartitionIntegrity",
    "PoolIntegrity",
    "integrity_region_bytes",
]

#: Parity granule: one XOR page guards this many bytes per stripe column.
PARITY_PAGE = 256
#: Bytes per checksum-ledger slot: ``<II`` = (object size, crc32).
LEDGER_SLOT = 8
#: Bytes reserved for the integrity-tree root (one cache line).
ROOT_LINE = 64

_FLAGS_OFF = OBJECT_HEADER.offset_of("flags")
_LEDGER = struct.Struct("<II")
_ROOT = struct.Struct("<II")


def integrity_region_bytes(pool_size: int, stripe_bytes: int, align: int) -> int:
    """Total NVM bytes one pool's parity + ledger + root regions need."""
    n_stripes = (pool_size + stripe_bytes - 1) // stripe_bytes
    return n_stripes * PARITY_PAGE + (pool_size // align) * LEDGER_SLOT + ROOT_LINE


class PoolIntegrity:
    """Parity pages + checksum ledger for a single log pool."""

    __slots__ = (
        "device",
        "pool",
        "stripe_bytes",
        "n_stripes",
        "parity_base",
        "ledger_base",
        "root_base",
        "parity",
        "entries",
        "dirty_stripes",
        "dirty_slots",
        "stale_stripes",
        "root_dirty",
    )

    def __init__(
        self, device: Any, pool: Any, stripe_bytes: int, region_base: int
    ) -> None:
        if stripe_bytes % PARITY_PAGE != 0:
            raise ValueError("stripe size must be a multiple of PARITY_PAGE")
        self.device = device
        self.pool = pool
        self.stripe_bytes = stripe_bytes
        self.n_stripes = (pool.size + stripe_bytes - 1) // stripe_bytes
        self.parity_base = region_base
        self.ledger_base = region_base + self.n_stripes * PARITY_PAGE
        self.root_base = self.ledger_base + (pool.size // pool.align) * LEDGER_SLOT
        #: stripe -> parity page (lazily materialised; absent == zeros).
        self.parity: dict[int, bytearray] = {}
        #: covered object offset -> (size, crc32 of the covered bytes).
        self.entries: dict[int, tuple[int, int]] = {}
        self.dirty_stripes: set[int] = set()
        self.dirty_slots: set[int] = set()
        #: Stripes whose parity can no longer be trusted until a rebuild
        #: (an object was re-covered without its old bytes).
        self.stale_stripes: set[int] = set()
        self.root_dirty = False

    # -- parity math --------------------------------------------------------
    def _page(self, stripe: int) -> bytearray:
        page = self.parity.get(stripe)
        if page is None:
            page = bytearray(PARITY_PAGE)
            self.parity[stripe] = page
        return page

    def _xor_range(self, offset: int, data: bytes) -> None:
        """XOR ``data`` (pool bytes at ``offset``) into the parity pages."""
        i, n = 0, len(data)
        while i < n:
            o = offset + i
            stripe = o // self.stripe_bytes
            take = min(n - i, self.stripe_bytes - o % self.stripe_bytes)
            page = self._page(stripe)
            col = o % PARITY_PAGE
            for j in range(take):
                page[(col + j) % PARITY_PAGE] ^= data[i + j]
            self.dirty_stripes.add(stripe)
            i += take

    def _stripes_of(self, offset: int, size: int) -> range:
        return range(offset // self.stripe_bytes, (offset + size - 1) // self.stripe_bytes + 1)

    # -- coverage -----------------------------------------------------------
    def covered_at(self, offset: int) -> bool:
        return offset in self.entries

    def covered(self, offset: int, size: int) -> bool:
        entry = self.entries.get(offset)
        return entry is not None and entry[0] == size

    def ledger_crc(self, offset: int) -> Optional[int]:
        entry = self.entries.get(offset)
        return None if entry is None else entry[1]

    def cover(self, offset: int, raw: bytes) -> None:
        """Record ``raw`` as the settled bytes of the object at ``offset``."""
        size = len(raw)
        crc = crc32_fast(raw)
        old = self.entries.get(offset)
        if old is not None:
            if old == (size, crc):
                return
            # Re-covered without the old image (shouldn't happen in the
            # log-structured flow — offsets are only reused after a pool
            # reset): the affected stripes' parity is untrustworthy.
            self.stale_stripes.update(self._stripes_of(offset, max(size, old[0])))
            self.entries[offset] = (size, crc)
            self.dirty_slots.add(offset)
            self.root_dirty = True
            return
        self.entries[offset] = (size, crc)
        self._xor_range(offset, raw)
        self.dirty_slots.add(offset)
        self.root_dirty = True

    def mutate(self, obj_off: int, field_off: int, old: bytes) -> bool:
        """A covered object's bytes at ``obj_off + field_off`` changed in
        place; ``old`` is their prior value. Folds old⊕new into the
        parity and refreshes the ledger CRC."""
        entry = self.entries.get(obj_off)
        if entry is None:
            return False
        size = entry[0]
        if field_off + len(old) > size:
            return False
        new = bytes(self.pool.read(obj_off + field_off, len(old)))
        if new != old:
            delta = bytes(a ^ b for a, b in zip(old, new))
            self._xor_range(obj_off + field_off, delta)
        raw = bytes(self.pool.read(obj_off, size))
        self.entries[obj_off] = (size, crc32_fast(raw))
        self.dirty_slots.add(obj_off)
        self.root_dirty = True
        return True

    # -- reconstruction -----------------------------------------------------
    def reconstruct_cost_bytes(self, offset: int, size: int) -> int:
        """Media bytes a reconstruction of this object has to read."""
        return len(self._stripes_of(offset, size)) * self.stripe_bytes

    def _reconstruct_page(self, pg: int) -> bytearray:
        """Rebuild pool page ``pg``'s covered bytes from stripe ⊕ parity."""
        stripe = (pg * PARITY_PAGE) // self.stripe_bytes
        out = bytearray(self._page(stripe))
        s_lo = stripe * self.stripe_bytes
        s_hi = min(s_lo + self.stripe_bytes, self.pool.size)
        pg_lo = pg * PARITY_PAGE
        pg_hi = pg_lo + PARITY_PAGE
        for off, (size, _crc) in self.entries.items():
            if off + size <= s_lo or off >= s_hi:
                continue
            lo = max(off, s_lo)
            hi = min(off + size, s_hi)
            data = self.pool.read(lo, hi - lo)
            for j in range(hi - lo):
                o = lo + j
                if pg_lo <= o < pg_hi:
                    continue
                out[o % PARITY_PAGE] ^= data[j]
        return out

    def reconstruct(
        self, offset: int, size: int, validate: Callable[[bytes], bool]
    ) -> Optional[bytes]:
        """Try to rebuild the covered object at ``offset`` in DRAM.

        Replaces each overlapped pool page (then, for cross-stripe
        objects, all pages at once) with its parity reconstruction and
        returns the first candidate accepted by ``validate``."""
        if not self.covered(offset, size):
            return None
        if any(s in self.stale_stripes for s in self._stripes_of(offset, size)):
            return None
        media = bytes(self.pool.read(offset, size))
        first_pg = offset // PARITY_PAGE
        last_pg = (offset + size - 1) // PARITY_PAGE
        pages: dict[int, bytearray] = {}
        for pg in range(first_pg, last_pg + 1):
            pages[pg] = self._reconstruct_page(pg)
            cand = bytearray(media)
            lo = max(offset, pg * PARITY_PAGE)
            hi = min(offset + size, (pg + 1) * PARITY_PAGE)
            cand[lo - offset : hi - offset] = pages[pg][
                lo - pg * PARITY_PAGE : hi - pg * PARITY_PAGE
            ]
            if validate(bytes(cand)):
                return bytes(cand)
        if last_pg > first_pg:
            # Faults in several pages of one object: as long as each
            # stripe holds at most one faulted page, splicing every
            # page's reconstruction at once yields the intact image.
            cand = bytearray(media)
            for pg in range(first_pg, last_pg + 1):
                lo = max(offset, pg * PARITY_PAGE)
                hi = min(offset + size, (pg + 1) * PARITY_PAGE)
                cand[lo - offset : hi - offset] = pages[pg][
                    lo - pg * PARITY_PAGE : hi - pg * PARITY_PAGE
                ]
            if validate(bytes(cand)):
                return bytes(cand)
        return None

    # -- NVM write-through --------------------------------------------------
    def root_value(self) -> int:
        """One-level Merkle collapse: CRC over the sorted ledger."""
        acc = 0
        for off in sorted(self.entries):
            size, crc = self.entries[off]
            acc = crc32_fast(struct.pack("<QII", off, size, crc), acc)
        return acc

    def root_line(self) -> bytes:
        return _ROOT.pack(self.root_value(), len(self.entries)).ljust(ROOT_LINE, b"\x00")

    def drain_dirty(self, tree: bool) -> list[tuple[int, int]]:
        """Write dirty parity pages / ledger slots (and, in tree mode,
        the root line) through to NVM; return the (addr, length) ranges
        that now need a persist."""
        ranges: list[tuple[int, int]] = []
        for stripe in sorted(self.dirty_stripes):
            addr = self.parity_base + stripe * PARITY_PAGE
            self.device.write(addr, bytes(self._page(stripe)))
            ranges.append((addr, PARITY_PAGE))
        self.dirty_stripes.clear()
        for off in sorted(self.dirty_slots):
            addr = self.ledger_base + (off // self.pool.align) * LEDGER_SLOT
            entry = self.entries.get(off)
            blob = _LEDGER.pack(*entry) if entry is not None else bytes(LEDGER_SLOT)
            self.device.write(addr, blob)
            ranges.append((addr, LEDGER_SLOT))
        self.dirty_slots.clear()
        if tree and self.root_dirty:
            self.device.write(self.root_base, self.root_line())
            ranges.append((self.root_base, ROOT_LINE))
            self.root_dirty = False
        return ranges

    def full_ranges(self) -> list[tuple[int, int]]:
        """Write the complete deterministic region images (including
        zeroed uncovered slots) and return their persist ranges. Used by
        recovery so the regions are a pure function of pool contents."""
        parity = bytearray(self.n_stripes * PARITY_PAGE)
        for stripe, page in self.parity.items():
            parity[stripe * PARITY_PAGE : (stripe + 1) * PARITY_PAGE] = page
        self.device.write(self.parity_base, bytes(parity))
        ledger = bytearray((self.pool.size // self.pool.align) * LEDGER_SLOT)
        for off, entry in self.entries.items():
            i = (off // self.pool.align) * LEDGER_SLOT
            ledger[i : i + LEDGER_SLOT] = _LEDGER.pack(*entry)
        self.device.write(self.ledger_base, bytes(ledger))
        self.device.write(self.root_base, self.root_line())
        self.dirty_stripes.clear()
        self.dirty_slots.clear()
        self.root_dirty = False
        return [
            (self.parity_base, len(parity)),
            (self.ledger_base, len(ledger)),
            (self.root_base, ROOT_LINE),
        ]

    def reset(self) -> None:
        """The pool was reset (log cleaning / repl_reset): drop all
        coverage and zero the NVM regions."""
        self.parity.clear()
        self.entries.clear()
        self.dirty_stripes.clear()
        self.dirty_slots.clear()
        self.stale_stripes.clear()
        self.root_dirty = True
        self.device.write(self.parity_base, bytes(self.n_stripes * PARITY_PAGE))
        self.device.write(
            self.ledger_base, bytes((self.pool.size // self.pool.align) * LEDGER_SLOT)
        )
        self.device.write(self.root_base, bytes(ROOT_LINE))
        self.device.flush(self.parity_base, self.root_base + ROOT_LINE - self.parity_base)


class PartitionIntegrity:
    """Per-partition facade tying the pools' parity/ledger state to the
    verifier batches, the scrubber and recovery."""

    def __init__(
        self,
        device: Any,
        env: Any,
        config: Any,
        pools: Iterable[Any],
        region_base: int,
        *,
        tree: bool = False,
    ) -> None:
        self.device = device
        self.env = env
        self.timing = config.nvm_timing
        self.crc_cost = config.crc_cost
        self.tree = tree
        self.stripe_bytes = int(config.parity_stripe_kb) * 1024
        self.by_pool: list[PoolIntegrity] = []
        base = region_base
        for pool in pools:
            pi = PoolIntegrity(device, pool, self.stripe_bytes, base)
            base += integrity_region_bytes(pool.size, self.stripe_bytes, pool.align)
            self.by_pool.append(pi)
        self.region_end = base
        self.settled = 0
        self.mutations = 0
        self.flushes = 0
        self.flushed_bytes = 0
        self.rebuilds = 0
        self.resets = 0
        self.tree_checks = 0

    # -- coverage queries ---------------------------------------------------
    def covered(self, loc: Any) -> bool:
        return self.by_pool[loc.pool].covered(loc.offset, loc.size)

    def verify_image(self, pool: int, offset: int, raw: bytes) -> bool:
        """End-to-end check for the GET fast path: does ``raw`` (the
        one-READ image) match the checksum ledger? Uncovered objects
        (not yet settled) pass — the legacy CRC path still guards them."""
        self.tree_checks += 1
        entry = self.by_pool[pool].entries.get(offset)
        if entry is None or entry[0] != len(raw):
            return True
        return crc32_fast(raw) == entry[1]

    # -- coverage updates (instant; flushed with the next batch) ------------
    def note_settled(self, loc: Any, raw: bytes) -> None:
        """Cover an object with known-good bytes (cleaner copies, repair
        writes) — ``raw`` must be the full on-media image."""
        self.by_pool[loc.pool].cover(loc.offset, raw)
        self.settled += 1

    def note_settled_checked(self, loc: Any, raw: Optional[bytes]) -> bool:
        """Cover a just-settled object. Prefers the current media bytes
        (they may legitimately differ from ``raw`` — e.g. the durable
        flag, or a forward link written after the verifier's read); if
        the media no longer validates, the settling persist itself was
        the corruption, so cover ``raw`` — the verified pre-persist
        image, with the durable flag folded in — and let the scrubber
        reconstruct the media from it."""
        pi = self.by_pool[loc.pool]
        media = bytes(pi.pool.read(loc.offset, loc.size))
        img = parse_object(media)
        if (
            img is not None
            and img.well_formed
            and img.vlen == len(img.value)
            and crc32_fast(img.value) == img.crc
        ):
            pi.cover(loc.offset, media)
        elif raw is not None and len(raw) == loc.size:
            fixed = bytearray(raw)
            fixed[_FLAGS_OFF] |= FLAG_DURABLE
            pi.cover(loc.offset, bytes(fixed))
        else:
            return False
        self.settled += 1
        return True

    def cover_from_media(self, loc: Any) -> bool:
        """Cover from the media only if it validates (replica commits,
        migration installs — there is no independent good image)."""
        return self.note_settled_checked(loc, None)

    def note_mutation(self, pool: int, obj_off: int, field_off: int, old: bytes) -> None:
        """A field of a (possibly covered) object was rewritten in
        place; ``old`` holds the bytes before the write."""
        if self.by_pool[pool].mutate(obj_off, field_off, old):
            self.mutations += 1

    # -- repair -------------------------------------------------------------
    def reconstruct(self, loc: Any, validate: Callable[[bytes], bool]) -> Optional[bytes]:
        return self.by_pool[loc.pool].reconstruct(loc.offset, loc.size, validate)

    def reconstruct_cost_bytes(self, loc: Any) -> int:
        return self.by_pool[loc.pool].reconstruct_cost_bytes(loc.offset, loc.size)

    # -- batch settle + flush (the verifier's coalesced path) ---------------
    def settle_batch(
        self, items: Iterable[tuple[Any, Optional[bytes]]]
    ) -> Generator[Event, Any, None]:
        total = 0
        for loc, raw in items:
            total += loc.size
            self.note_settled_checked(loc, raw)
        if total:
            # XOR + CRC work to fold the batch into parity and ledger.
            yield self.env.timeout(
                self.timing.copy_cost(total) + self.crc_cost.cost_ns(total)
            )
        yield from self.flush()

    def flush(self) -> Generator[Event, Any, None]:
        """Write dirty parity pages / ledger slots / root through to NVM
        and persist them as one coalesced run of ranges."""
        ranges: list[tuple[int, int]] = []
        for pi in self.by_pool:
            ranges.extend(pi.drain_dirty(self.tree))
        yield from self._persist_ranges(ranges)

    def _persist_ranges(
        self, ranges: list[tuple[int, int]]
    ) -> Generator[Event, Any, None]:
        if not ranges:
            return
        ranges.sort()
        merged: list[list[int]] = []
        for addr, length in ranges:
            if merged and addr <= merged[-1][0] + merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], addr + length - merged[-1][0])
            else:
                merged.append([addr, length])
        for addr, length in merged:
            yield from self.device.persist(addr, length)
            self.flushed_bytes += length
        self.flushes += 1

    # -- lifecycle ----------------------------------------------------------
    def reset_pool(self, pool_id: int) -> None:
        self.by_pool[pool_id].reset()
        self.resets += 1

    def rebuild(self) -> Generator[Event, Any, None]:
        """Recovery: recompute parity + ledger + root from the pool
        journals and rewrite the full regions. Deterministic — repeated
        recoveries of the same pool bytes produce identical regions."""
        total = 0
        ranges: list[tuple[int, int]] = []
        for pi in self.by_pool:
            pi.parity.clear()
            pi.entries.clear()
            pi.dirty_stripes.clear()
            pi.dirty_slots.clear()
            pi.stale_stripes.clear()
            for alloc in pi.pool.allocations:
                raw = bytes(pi.pool.read(alloc.offset, alloc.size))
                total += alloc.size
                img = parse_object(raw)
                if (
                    img is not None
                    and img.well_formed
                    and img.durable
                    and img.vlen == len(img.value)
                    and crc32_fast(img.value) == img.crc
                ):
                    pi.cover(alloc.offset, raw)
            ranges.extend(pi.full_ranges())
        self.rebuilds += 1
        if total:
            yield self.env.timeout(
                self.timing.read_cost(total) + self.crc_cost.cost_ns(total)
            )
        yield from self._persist_ranges(ranges)

    # -- metrics ------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        return {
            "settled": self.settled,
            "mutations": self.mutations,
            "flushes": self.flushes,
            "flushed_bytes": self.flushed_bytes,
            "rebuilds": self.rebuilds,
            "resets": self.resets,
            "tree_checks": self.tree_checks,
            "covered": sum(len(pi.entries) for pi in self.by_pool),
            "stale_stripes": sum(len(pi.stale_stripes) for pi in self.by_pool),
        }
