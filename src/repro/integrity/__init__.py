"""Self-healing integrity tier (Pangolin-style, beyond the paper).

Per-partition XOR parity over log-pool stripes plus a per-object
checksum ledger, maintained incrementally by the background verifier,
with an optional coalesced Merkle-over-ledger mode for end-to-end
verification on the GET fast path. See :mod:`repro.integrity.tier`.
"""

from repro.integrity.tier import (
    LEDGER_SLOT,
    PARITY_PAGE,
    PartitionIntegrity,
    PoolIntegrity,
    integrity_region_bytes,
)

__all__ = [
    "LEDGER_SLOT",
    "PARITY_PAGE",
    "PartitionIntegrity",
    "PoolIntegrity",
    "integrity_region_bytes",
]
