"""Store registry and one-call deployment.

The benchmarks and examples build every system through this registry so
that a comparison is always apples-to-apples: same fabric, same NVM
timing, same geometry; only the scheme differs.

>>> from repro.sim import Environment
>>> from repro.stores import build_store
>>> env = Environment()
>>> setup = build_store("efactory", env, n_clients=2)
>>> setup.server.start()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.baselines import (
    BaseClient,
    BaseServer,
    CAClient,
    CAServer,
    ErdaClient,
    ErdaServer,
    ForcaClient,
    ForcaServer,
    IMMClient,
    IMMServer,
    RpcStoreClient,
    RpcStoreServer,
    SAWClient,
    SAWServer,
    StoreConfig,
    ca_config,
    erda_config,
    forca_config,
    imm_config,
    rpc_store_config,
    saw_config,
)
from repro.core import EFactoryClient, EFactoryServer, efactory_config
from repro.errors import ConfigError
from repro.rdma.fabric import Fabric
from repro.rdma.latency import FabricTiming
from repro.sim.kernel import Environment

__all__ = ["StoreSpec", "StoreSetup", "STORES", "build_store", "store_names"]


@dataclass(frozen=True)
class StoreSpec:
    """How to construct one store flavour."""

    name: str
    label: str  # display name used in reports (matches the paper)
    server_cls: type
    client_cls: type
    config_factory: Callable[..., StoreConfig]
    #: Whether PUT acknowledgement implies durability.
    durable_put: bool
    #: Whether GET guarantees an intact (untorn) value.
    consistent_get: bool


def _efactory_nohr_config(**overrides: Any):
    overrides.setdefault("hybrid_read", False)
    return efactory_config(**overrides)


STORES: dict[str, StoreSpec] = {
    "efactory": StoreSpec(
        "efactory", "eFactory", EFactoryServer, EFactoryClient,
        efactory_config, durable_put=False, consistent_get=True,
    ),
    "efactory_nohr": StoreSpec(
        "efactory_nohr", "eFactory w/o hr", EFactoryServer, EFactoryClient,
        _efactory_nohr_config, durable_put=False, consistent_get=True,
    ),
    "ca": StoreSpec(
        "ca", "CA w/o persistence", CAServer, CAClient,
        ca_config, durable_put=False, consistent_get=False,
    ),
    "rpc": StoreSpec(
        "rpc", "RPC", RpcStoreServer, RpcStoreClient,
        rpc_store_config, durable_put=True, consistent_get=True,
    ),
    "saw": StoreSpec(
        "saw", "SAW", SAWServer, SAWClient,
        saw_config, durable_put=True, consistent_get=True,
    ),
    "imm": StoreSpec(
        "imm", "IMM", IMMServer, IMMClient,
        imm_config, durable_put=True, consistent_get=True,
    ),
    "erda": StoreSpec(
        "erda", "Erda", ErdaServer, ErdaClient,
        erda_config, durable_put=False, consistent_get=True,
    ),
    "forca": StoreSpec(
        "forca", "Forca", ForcaServer, ForcaClient,
        forca_config, durable_put=False, consistent_get=True,
    ),
}


def store_names() -> list[str]:
    return list(STORES)


@dataclass
class StoreSetup:
    """A deployed store: one server plus its connected clients."""

    spec: StoreSpec
    env: Environment
    fabric: Fabric
    server: BaseServer
    clients: list[BaseClient]

    def client(self, i: int = 0) -> BaseClient:
        return self.clients[i]

    def start(self) -> "StoreSetup":
        self.server.start()
        return self


def build_store(
    name: str,
    env: Environment,
    *,
    fabric: Optional[Fabric] = None,
    fabric_timing: Optional[FabricTiming] = None,
    config_overrides: Optional[dict[str, Any]] = None,
    n_clients: int = 1,
) -> StoreSetup:
    """Deploy a store by registry name with ``n_clients`` clients."""
    spec = STORES.get(name)
    if spec is None:
        raise ConfigError(f"unknown store {name!r}; known: {store_names()}")
    if n_clients < 0:
        raise ConfigError("n_clients must be >= 0")
    fabric = fabric or Fabric(env, timing=fabric_timing)
    config = spec.config_factory(**(config_overrides or {}))
    server = spec.server_cls(env, fabric, config, name=f"{name}-server")
    clients = [
        spec.client_cls(env, server, name=f"{name}-client{i}")
        for i in range(n_clients)
    ]
    return StoreSetup(spec=spec, env=env, fabric=fabric, server=server, clients=clients)
