"""Deterministic named random-number streams.

Every stochastic component of the simulation (workload key choice, crash
timing, natural-eviction coin flips, ...) draws from its own named
stream so that

* runs are exactly reproducible given a root seed, and
* adding randomness to one component never perturbs another
  (no shared-stream coupling).

Streams are NumPy :class:`~numpy.random.Generator` instances derived from
a root :class:`~numpy.random.SeedSequence` keyed by a stable 64-bit hash
of the stream name (Python's builtin ``hash`` is salted per-interpreter,
so we use FNV-1a instead).
"""

from __future__ import annotations

import numpy as np

__all__ = ["fnv1a_64", "RngRegistry"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(data: bytes | str) -> int:
    """64-bit FNV-1a hash — stable across processes and Python versions."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


class RngRegistry:
    """Factory of independent, reproducible random streams.

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("workload.client0")
    >>> b = rngs.stream("crash")
    >>> a is rngs.stream("workload.client0")   # memoised
    True
    """

    __slots__ = ("seed", "_streams")

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (memoised) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence([self.seed, fnv1a_64(name)])
            gen = np.random.Generator(np.random.PCG64(ss))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(seed=(self.seed ^ fnv1a_64(name)) & _MASK64)
