"""Discrete-event simulation kernel.

A deliberately small, deterministic event-driven kernel in the style of
SimPy: simulated *processes* are Python generators that ``yield`` events;
the :class:`Environment` owns a priority queue of scheduled events and
advances virtual time from one event to the next.

Design notes
------------
* Two-phase event lifecycle: an event is first *triggered*
  (:meth:`Event.succeed` / :meth:`Event.fail`), which schedules it on the
  environment queue; it is *processed* when popped, at which point its
  callbacks run. This matches SimPy semantics and guarantees that all
  state mutations made by the triggering process are visible before any
  waiter resumes.
* Deterministic ordering: the queue is keyed by
  ``(time, priority, sequence)``. Two events scheduled for the same time
  and priority always process in schedule order, so simulations are
  exactly reproducible.
* Virtual time is a ``float`` in **nanoseconds** by convention throughout
  the library (see :mod:`repro.rdma.latency`), although the kernel itself
  is unit-agnostic.

Scheduler structure (see DESIGN.md §11)
---------------------------------------
The queue is a bucketed timer wheel rather than a single binary heap:

* The wheel covers a fixed absolute window of ``_WHEEL_BUCKETS`` buckets,
  each ``_BUCKET_NS`` wide, starting at ``_base`` (a bucket number, not a
  time). An event at time ``t`` lands in bucket ``int(t / _BUCKET_NS) -
  _base``; events beyond the window go to a single overflow heap.
* Bucket storage is array-of-struct: each bucket is three parallel
  append-only lists ``(times, keys, events)`` where ``keys`` holds the
  fused ordering key ``(priority << 60) | sequence`` — no per-entry tuple
  is allocated on the bucketed path. Keys are globally unique (the
  sequence is), so sorting indices by key and then stable-sorting by time
  reproduces the exact ``(time, priority, sequence)`` order the seed heap
  produced, regardless of append order.
* A bucket is sorted lazily when the cursor reaches it (*staged*): two
  C-level key-function sorts over an index list, popped from the end.
  Events scheduled into the staged bucket **while it drains** (delay-0
  ``succeed()``s, urgent process resumptions — the common case) go to a
  small residual heap merged at pop time, so mid-drain inserts still pop
  in exact global order.
* When the wheel runs dry the window is **rebased** onto the earliest
  overflow event and every overflow event inside the new window migrates
  into its bucket. The window never moves while the wheel holds events,
  so an event is sorted at most twice (overflow, then one bucket).

Two allocation optimizations ride on top:

* The dominant wait pattern — exactly one process yielding an event — is
  stored in the :attr:`Event._waiter` slot instead of a callbacks-list
  append, avoiding a bound-method allocation per wait. Dispatch resumes
  the waiter first, then the callbacks list, which preserves the
  subscription order the seed kernel produced.
* :meth:`Environment.timeout` recycles fired ``Timeout`` objects through
  a small freelist. Only pool-created timeouts whose callbacks list was
  still empty at dispatch are recycled, so any timeout subscribed to by a
  condition (``a | b``) or held for post-hoc ``.value`` inspection via
  callbacks is never reused. Contract: do not re-yield or re-inspect a
  plain ``env.timeout()`` event after it has been processed — use
  ``env.event()`` for shared rendezvous points.
"""

from __future__ import annotations

from collections.abc import Generator, Iterable
from heapq import heappop, heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError

__all__ = [
    "PENDING",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "StopSimulation",
    "Environment",
    "ConditionValue",
    "AllOf",
    "AnyOf",
]


class _Pending:
    """Unique sentinel marking an event that has not been triggered."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


#: Sentinel value stored in :attr:`Event._value` while untriggered.
PENDING = _Pending()

#: Queue priorities: urgent events (process resumptions) run before
#: normal ones at the same timestamp; low runs last.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

#: Timer-wheel geometry. 1024 buckets × 128 ns ≈ a 131 µs window — wide
#: enough that verb segments, server polls, and the 50 µs verifier delay
#: all land in-wheel; only long experiment horizons hit the overflow heap.
_WHEEL_BUCKETS = 1024
_BUCKET_NS = 128.0
_INV_BUCKET_NS = 1.0 / _BUCKET_NS

#: Fused ordering key: ``(priority << _PRIO_SHIFT) | seq``. Priorities are
#: 0..2 and the sequence counter never approaches 2**60, so comparing the
#: fused int is identical to comparing ``(priority, seq)`` and the key is
#: globally unique.
_PRIO_SHIFT = 60

#: Upper bound on the recycled-Timeout freelist.
_FREELIST_CAP = 256


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at its ``until``
    event; carries the event's value."""

    def __init__(self, value: Any) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; ``cause`` carries
    the object passed to :meth:`Process.interrupt`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0]


class Event:
    """An occurrence at a point in simulated time that processes can wait on.

    Events carry a *value* (delivered to waiting processes) or an
    *exception* (raised inside waiting processes). They trigger at most
    once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_waiter", "on_abandon")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event when it is processed. ``None``
        #: once processed (used as the "already processed" flag).
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False
        #: The single process waiting on this event, when that process is
        #: the *only* subscriber (the dominant pattern). Resumed before the
        #: callbacks list, preserving subscription order.
        self._waiter: Optional["Process"] = None
        #: Invoked when the last waiter detaches before the event
        #: triggered (e.g. the waiting process was interrupted). Wait
        #: queues use this to cancel the abandoned reservation so items
        #: and grants are never delivered to dead processes.
        self.on_abandon: Optional[Callable[[], None]] = None

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception and is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only meaningful once triggered."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, *, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` (processed at the
        current simulation time)."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, *, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another (triggered) event's outcome onto this one."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def defused(self) -> None:
        """Mark a failed event as handled so the kernel will not escalate
        its exception to :meth:`Environment.step`."""
        self._defused = True

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "pending"
            if self._value is PENDING
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically ``delay`` time units after
    creation."""

    __slots__ = ("delay", "_pooled")

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._pooled = False
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Initialize(Event):
    """Internal: first resumption of a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._waiter = process
        self._ok = True
        self._value = None
        env.schedule(self, priority=PRIORITY_URGENT)


class _InterruptEvent(Event):
    """Internal: carries an interrupt's cause to the target process."""

    __slots__ = ("cause",)

    def __init__(self, env: "Environment", cause: Any) -> None:
        super().__init__(env)
        self.cause = cause


class Process(Event):
    """Wraps a generator and drives it through the event loop.

    The process itself is an :class:`Event` that triggers when the
    generator returns (value = the generator's return value) or raises
    (the process fails with that exception).
    """

    __slots__ = ("_generator", "_target", "_started", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process() requires a generator, got {generator!r}"
            )
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None when the
        #: process is active, finished, or not yet started).
        self._target: Optional[Event] = None
        #: False until the first resumption runs.
        self._started = False
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is about to resume is allowed and the interrupt
        wins (delivered first).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self._target is None and self._started:
            raise SimulationError(
                f"cannot interrupt {self!r} from within itself"
            )
        # A not-yet-started process may be interrupted: the interrupt
        # event is scheduled after the pending Initialize (same time,
        # both urgent, FIFO), so it lands right after the first yield.
        interrupt_ev = _InterruptEvent(self.env, cause)
        interrupt_ev.callbacks.append(self._resume_interrupt)
        interrupt_ev._ok = True
        interrupt_ev._value = None
        self.env.schedule(interrupt_ev, priority=PRIORITY_URGENT)

    # -- kernel plumbing ---------------------------------------------------
    def _unsubscribe(self) -> None:
        """Detach from the event we were waiting on (after an interrupt)."""
        target = self._target
        if target is not None and target.callbacks is not None:
            if target._waiter is self:
                target._waiter = None
            else:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            if (
                target._waiter is None
                and not target.callbacks
                and target.on_abandon is not None
            ):
                target.on_abandon()
        self._target = None

    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:  # finished in the meantime; drop silently
            return
        self._unsubscribe()
        assert isinstance(event, _InterruptEvent)
        self._step(Interrupt(event.cause), throw=True)

    def _resume(self, event: Event) -> None:
        self._started = True
        self._target = None
        if event._ok:
            self._step(event._value, throw=False)
        else:
            event._defused = True
            self._step(event._value, throw=True)

    def _step(self, value: Any, *, throw: bool) -> None:
        env = self.env
        env._active_process = self
        try:
            if throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            env._active_process = None
            self._ok = True
            self._value = stop.value
            env.schedule(self, priority=PRIORITY_URGENT)
            return
        except Interrupt as exc:
            # The generator re-raised (or did not catch) an interrupt:
            # treat like any other failure.
            env._active_process = None
            self._ok = False
            self._value = exc
            self._defused = True
            env.schedule(self, priority=PRIORITY_URGENT)
            return
        except BaseException as exc:
            env._active_process = None
            self._ok = False
            self._value = exc
            env.schedule(self, priority=PRIORITY_URGENT)
            return
        env._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"{self.name} yielded a non-event: {target!r}"
            )
        if target.env is not env:
            raise SimulationError(
                f"{self.name} yielded an event from a different environment"
            )
        if target.callbacks is None:
            # Already processed: resume immediately (at the current time,
            # urgent priority) with its recorded outcome.
            resume = Event(env)
            resume._waiter = self
            resume._ok = target._ok
            resume._value = target._value
            if not target._ok:
                target._defused = True
            env.schedule(resume, priority=PRIORITY_URGENT)
            self._target = resume
        elif target._waiter is None and not target.callbacks:
            target._waiter = self
            self._target = target
        else:
            target.callbacks.append(self._resume)
            self._target = target


class ConditionValue:
    """Ordered mapping of the events that triggered inside a condition."""

    __slots__ = ("events",)

    def __init__(self, events: list[Event]) -> None:
        self.events = events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def values(self) -> list[Any]:
        return [ev._value for ev in self.events]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ConditionValue {self.values()!r}>"


class _Condition(Event):
    """Common machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._done: list[Event] = []
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition spans multiple environments")
        if not self._events:
            self.succeed(ConditionValue([]))
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        # (an empty-events condition already succeeded above)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done.append(event)
        if self._satisfied():
            self.succeed(ConditionValue(list(self._done)))

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every constituent event has succeeded; fails fast on
    the first failure."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._done) == len(self._events)


class AnyOf(_Condition):
    """Triggers when the first constituent event succeeds."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._done) >= 1


class Environment:
    """Owns the event queue and the current simulation time.

    The queue is a bucketed timer wheel with an overflow heap (see the
    module docstring); :attr:`events_scheduled` / :attr:`events_processed`
    count queue traffic so consumers can report events-per-op.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now`.
    """

    __slots__ = (
        "_now",
        "_seq",
        "_active_process",
        "trace_hook",
        "_b_times",
        "_b_keys",
        "_b_events",
        "_order",
        "_drain",
        "_extra",
        "_wheel_count",
        "_overflow",
        "_base",
        "_cursor",
        "_free_timeouts",
        "events_scheduled",
        "events_processed",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Optional callable ``(time, event)`` invoked as each event is
        #: processed; used by :mod:`repro.sim.trace`.
        self.trace_hook: Optional[Callable[[float, Event], None]] = None
        # Timer wheel, array-of-struct: bucket _base + i holds its entries
        # as the parallel lists _b_times[i] / _b_keys[i] / _b_events[i]
        # (key = fused (priority << _PRIO_SHIFT) | seq). _cursor is the
        # lowest possibly-non-empty bucket index; it only advances except
        # when a schedule lands behind it.
        self._b_times: list[list[float]] = [[] for _ in range(_WHEEL_BUCKETS)]
        self._b_keys: list[list[int]] = [[] for _ in range(_WHEEL_BUCKETS)]
        self._b_events: list[list[Event]] = [[] for _ in range(_WHEEL_BUCKETS)]
        # The staged (lazily sorted) bucket being drained: _drain is its
        # cursor index (-1 when none), _order the reversed sorted index
        # list (next entry at _order[-1]), _extra a heap of
        # (time, key, event) for entries scheduled into the staged bucket
        # mid-drain. _extra is mutated in place only — run() aliases it.
        self._order: list[int] = []
        self._drain = -1
        self._extra: list[tuple[float, int, Event]] = []
        self._wheel_count = 0
        self._overflow: list[tuple[float, int, Event]] = []
        self._base = int(self._now * _INV_BUCKET_NS)
        self._cursor = 0
        self._free_timeouts: list[Timeout] = []
        #: Total events ever placed on the queue / popped from it.
        self.events_scheduled = 0
        self.events_processed = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        free = self._free_timeouts
        if free:
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay!r}")
            ev = free.pop()
            ev.callbacks = []
            ev._value = value
            ev._ok = True
            ev._defused = False
            ev.on_abandon = None
            ev.delay = delay
            self.schedule(ev, delay=delay)
            return ev
        ev = Timeout(self, delay, value)
        ev._pooled = True
        return ev

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """A :class:`Timeout` that fires at *absolute* time ``when``.

        Used by the analytic fast path: scheduling at the exact float an
        event-path timeout chain would have produced (rather than
        ``now + (when - now)``) keeps the two paths bit-identical.
        """
        if when < self._now:
            raise SimulationError(f"timeout_at({when!r}) is in the past")
        free = self._free_timeouts
        if free:
            ev = free.pop()
            ev.callbacks = []
            ev._defused = False
            ev.on_abandon = None
        else:
            ev = Timeout.__new__(Timeout)
            ev.env = self
            ev.callbacks = []
            ev._defused = False
            ev._waiter = None
            ev.on_abandon = None
            ev._pooled = True
        ev._ok = True
        ev._value = value
        ev.delay = when - self._now
        self.schedule_at(ev, when)
        return ev

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Place a triggered event on the queue ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay!r})")
        when = self._now + delay
        self._seq = seq = self._seq + 1
        self.events_scheduled += 1
        idx = int(when * _INV_BUCKET_NS) - self._base
        if idx >= _WHEEL_BUCKETS:
            heappush(self._overflow, (when, priority << _PRIO_SHIFT | seq, event))
            return
        if idx < 0:
            # Pre-window time (possible when peek() rebased the window
            # past `now` before the clock advanced): bucket 0 is the
            # earliest, and full-key ordering inside it keeps the
            # pop order exact.
            idx = 0
        if idx == self._drain:
            # The bucket is mid-drain (already sorted): route through the
            # residual heap so the entry still pops in exact order.
            heappush(self._extra, (when, priority << _PRIO_SHIFT | seq, event))
        else:
            self._b_times[idx].append(when)
            self._b_keys[idx].append(priority << _PRIO_SHIFT | seq)
            self._b_events[idx].append(event)
        self._wheel_count += 1
        if idx < self._cursor:
            # The cursor may have overshot the clock while scanning
            # empty buckets (e.g. run(until=T) stopped between
            # events); every remaining event is later than everything
            # already processed, so regressing it is exact.
            self._cursor = idx

    def schedule_at(
        self, event: Event, when: float, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Place a triggered event on the queue at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule into the past ({when!r})")
        self._seq = seq = self._seq + 1
        self.events_scheduled += 1
        idx = int(when * _INV_BUCKET_NS) - self._base
        if idx >= _WHEEL_BUCKETS:
            heappush(self._overflow, (when, priority << _PRIO_SHIFT | seq, event))
            return
        if idx < 0:
            idx = 0
        if idx == self._drain:
            heappush(self._extra, (when, priority << _PRIO_SHIFT | seq, event))
        else:
            self._b_times[idx].append(when)
            self._b_keys[idx].append(priority << _PRIO_SHIFT | seq)
            self._b_events[idx].append(event)
        self._wheel_count += 1
        if idx < self._cursor:
            self._cursor = idx

    def _stage(self, cursor: int) -> None:
        """Sort bucket ``cursor`` for draining: indices ordered by key
        (unique), then a stable sort by time — exactly
        ``(time, priority, seq)`` — reversed so the next entry pops from
        the end."""
        keys = self._b_keys[cursor]
        n = len(keys)
        if n == 1:
            order = [0]
        else:
            order = sorted(range(n), key=keys.__getitem__)
            order.sort(key=self._b_times[cursor].__getitem__)
            order.reverse()
        self._order = order
        self._drain = cursor

    def _unstage(self) -> None:
        """Push a part-drained staged bucket's pending entries back into
        its append lists (a schedule landed in an earlier bucket; the
        cursor must regress). Append order is irrelevant — keys are
        unique, so re-staging re-sorts exactly."""
        drain = self._drain
        times = self._b_times[drain]
        keys = self._b_keys[drain]
        events = self._b_events[drain]
        order = self._order
        pend_t = [times[i] for i in order]
        pend_k = [keys[i] for i in order]
        pend_e = [events[i] for i in order]
        for when, key, event in self._extra:
            pend_t.append(when)
            pend_k.append(key)
            pend_e.append(event)
        del self._extra[:]
        self._b_times[drain] = pend_t
        self._b_keys[drain] = pend_k
        self._b_events[drain] = pend_e
        self._order = []
        self._drain = -1

    def _advance(self) -> bool:
        """Ensure the cursor sits on a staged bucket with pending entries
        (scanning forward, clearing exhausted staged buckets, rebasing
        the window from overflow as needed). False when the schedule is
        empty."""
        b_times = self._b_times
        while True:
            if self._wheel_count:
                cursor = self._cursor
                drain = self._drain
                # Scan to the next bucket with entries. The staged
                # bucket's raw lists are stale (already consumed via
                # _order), so stop there regardless of their contents.
                while cursor != drain and not b_times[cursor]:
                    cursor += 1
                self._cursor = cursor
                if cursor == drain:
                    if self._order or self._extra:
                        return True
                    # Staged bucket exhausted: clear and keep scanning.
                    b_times[cursor].clear()
                    self._b_keys[cursor].clear()
                    self._b_events[cursor].clear()
                    self._drain = -1
                    self._cursor = cursor + 1
                    continue
                if drain >= 0:
                    # A bucket before the part-drained one became
                    # non-empty: put the leftovers back, stage the
                    # earlier bucket first.
                    self._unstage()
                self._stage(cursor)
                return True
            if self._drain >= 0:
                # Wheel empty ⇒ the staged bucket is fully consumed;
                # clear its stale lists before rebasing into them.
                drain = self._drain
                b_times[drain].clear()
                self._b_keys[drain].clear()
                self._b_events[drain].clear()
                self._drain = -1
            overflow = self._overflow
            if not overflow:
                return False
            # Rebase the window onto the earliest overflow event and
            # migrate everything now inside it.
            base = int(overflow[0][0] * _INV_BUCKET_NS)
            self._base = base
            self._cursor = 0
            horizon = (base + _WHEEL_BUCKETS) * _BUCKET_NS
            b_keys = self._b_keys
            b_events = self._b_events
            count = 0
            while overflow and overflow[0][0] < horizon:
                when, key, event = heappop(overflow)
                idx = int(when * _INV_BUCKET_NS) - base
                b_times[idx].append(when)
                b_keys[idx].append(key)
                b_events[idx].append(event)
                count += 1
            self._wheel_count = count

    def _pop_next(self) -> tuple[float, Event]:
        """Pop the globally next entry off the staged bucket, merging the
        residual heap (caller must have _advance()d successfully)."""
        order = self._order
        extra = self._extra
        if order:
            drain = self._drain
            i = order[-1]
            when = self._b_times[drain][i]
            if extra:
                head = extra[0]
                if head[0] < when or (
                    head[0] == when and head[1] < self._b_keys[drain][i]
                ):
                    heappop(extra)
                    self._wheel_count -= 1
                    return head[0], head[2]
            order.pop()
            self._wheel_count -= 1
            return when, self._b_events[drain][i]
        head = heappop(extra)
        self._wheel_count -= 1
        return head[0], head[2]

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._advance():
            return float("inf")
        order = self._order
        extra = self._extra
        if order:
            when = self._b_times[self._drain][order[-1]]
            if extra and extra[0][0] < when:
                return extra[0][0]
            return when
        return extra[0][0]

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._advance():
            raise SimulationError("step(): empty schedule")
        when, event = self._pop_next()
        self._now = when
        self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        """Run one popped event's waiter/callbacks; recycle pooled timeouts."""
        if self.trace_hook is not None:
            self.trace_hook(self._now, event)
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None  # marks processed
        waiter = event._waiter
        if waiter is not None:
            event._waiter = None
            waiter._started = True
            waiter._target = None
            if event._ok:
                waiter._step(event._value, throw=False)
            else:
                event._defused = True
                waiter._step(event._value, throw=True)
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif type(event) is Timeout and event._pooled:
            # Sole-waiter (or waiterless) pooled timeout: nothing can
            # observe it any more, so recycle the object.
            free = self._free_timeouts
            if len(free) < _FREELIST_CAP:
                free.append(event)
        if not event._ok and not event._defused:
            # Nobody handled the failure: escalate to the driver of run().
            raise event._value

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until it is processed and return its
          value (raising if it failed).
        """
        if until is None:
            stop_at = float("inf")
        elif isinstance(until, Event):
            if until.callbacks is None:
                if not until._ok:
                    raise until._value
                return until._value
            until.callbacks.append(self._stop_on)
            stop_at = float("inf")
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at!r} is in the past (now={self._now!r})"
                )
        b_times = self._b_times
        b_keys = self._b_keys
        b_events = self._b_events
        extra = self._extra  # stable alias: mutated in place only
        dispatch = self._dispatch
        try:
            while True:
                drain = self._drain
                order = self._order
                # Fast case: the cursor bucket is staged with entries
                # pending; otherwise scan/rebase/stage via _advance().
                if drain != self._cursor or not (order or extra):
                    if not self._advance():
                        break
                    drain = self._drain
                    order = self._order
                if order:
                    i = order[-1]
                    when = b_times[drain][i]
                    if extra:
                        head = extra[0]
                        if head[0] < when or (
                            head[0] == when and head[1] < b_keys[drain][i]
                        ):
                            if head[0] > stop_at:
                                break
                            heappop(extra)
                            self._wheel_count -= 1
                            self._now = head[0]
                            dispatch(head[2])
                            continue
                    if when > stop_at:
                        break
                    order.pop()
                    self._wheel_count -= 1
                    self._now = when
                    dispatch(b_events[drain][i])
                else:
                    head = extra[0]
                    if head[0] > stop_at:
                        break
                    heappop(extra)
                    self._wheel_count -= 1
                    self._now = head[0]
                    dispatch(head[2])
        except StopSimulation as stop:
            return stop.value
        if isinstance(until, Event):
            raise SimulationError(
                "run() ran out of events before its target event triggered"
            )
        if until is not None:
            self._now = stop_at
        return None

    @staticmethod
    def _stop_on(event: Event) -> None:
        if not event._ok:
            event._defused = True
            raise event._value
        raise StopSimulation(event._value)
