"""Shared-resource primitives for the simulation kernel.

Three primitives cover everything the RDMA/NVM models need:

* :class:`Resource` — a counted resource (e.g. a server CPU core, a NIC
  DMA engine). Processes ``yield resource.request()`` and later
  ``resource.release(req)``; requests queue FIFO.
* :class:`Store` — an unbounded (or bounded) FIFO of Python objects with
  blocking ``get``/``put``; used for receive queues and mailboxes.
* :class:`Semaphore` — a counting semaphore built on the same machinery,
  convenient for notification-style signalling.

All wait queues are strictly FIFO, preserving the kernel's determinism.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from typing import Any, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Environment, Event

__all__ = ["Request", "Resource", "Store", "FilterStore", "Semaphore"]


def _discard(queue, entry) -> None:
    """Remove an abandoned waiter from a wait queue (no-op if gone)."""
    try:
        queue.remove(entry)
    except ValueError:
        pass


class Request(Event):
    """Event returned by :meth:`Resource.request`; succeeds when granted.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req
            ... hold the resource ...
        # released on exit
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with FIFO request queueing."""

    __slots__ = ("env", "capacity", "_users", "_waiting")

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of grants currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._waiting)

    def request(self) -> Request:
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
            req.on_abandon = lambda: _discard(self._waiting, req)
        return req

    def release(self, request: Request) -> None:
        """Release a held (or still-queued) request."""
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            # Cancelling a queued request is allowed (e.g. timeout races).
            try:
                self._waiting.remove(request)
            except ValueError:
                raise SimulationError(
                    "release() of a request that holds nothing"
                ) from None

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed()

    def acquire(self) -> Generator[Event, Any, Request]:
        """``yield from``-style helper: wait for and return a grant.

        Interrupt-safe: if the waiting process is interrupted (or any
        exception is thrown into it), the request is cancelled/released
        so the resource can never leak a grant to a dead process — vital
        for crash handling, where in-flight server work is interrupted
        while queued for the CPU or NIC.
        """
        req = self.request()
        try:
            yield req
        except BaseException:
            try:
                self.release(req)
            except SimulationError:
                pass  # already released; nothing held
            raise
        return req


class Store:
    """FIFO object store with blocking get/put.

    ``capacity`` bounds the number of queued items; ``put`` on a full
    store blocks until space frees up. With the default infinite
    capacity ``put`` always succeeds immediately. A getter whose waiting
    process is interrupted cancels itself (via the event's abandon hook),
    so items are never delivered to dead processes.
    """

    __slots__ = ("env", "capacity", "items", "_getters", "_putters")

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"store capacity must be > 0, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event succeeds once it is stored."""
        ev = Event(self.env)
        if self._getters:
            # Hand straight to the longest-waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed()
        elif len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def put_nowait(self, item: Any) -> bool:
        """Non-blocking put: True when stored or handed to a getter,
        False when the store is full. Unlike :meth:`put` this creates
        no event, so hot producers that never block (e.g. completion
        queues) pay nothing for the confirmation they don't read."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if len(self.items) < self.capacity:
            self.items.append(item)
            return True
        return False

    def get(self) -> Event:
        """Remove and return the oldest item; blocks while empty."""
        ev = Event(self.env)
        if self.items:
            ev.succeed(self.items.popleft())
            self._admit_putters()
        else:
            self._getters.append(ev)
            ev.on_abandon = lambda: _discard(self._getters, ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self.items:
            item = self.items.popleft()
            self._admit_putters()
            return True, item
        return False, None

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            ev, item = self._putters.popleft()
            self.items.append(item)
            ev.succeed()


class FilterStore:
    """Unbounded store whose getters select items with a predicate.

    Used for receive queues where a process must wait for *its* message
    (e.g. an RPC response) while unrelated messages (e.g. log-cleaning
    notifications) queue up for other consumers. Getters are served FIFO
    among those whose predicate matches; unmatched items stay queued.
    """

    __slots__ = ("env", "items", "_getters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.items: list[Any] = []
        self._getters: deque[tuple[Event, Optional[Any]]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Insert ``item``; wakes the first *live* waiting getter that
        matches (abandoned getters are pruned, never fed)."""
        for idx, (ev, pred) in enumerate(self._getters):
            if pred is None or pred(item):
                del self._getters[idx]
                ev.succeed(item)
                return
        self.items.append(item)

    def get(self, predicate: Optional[Any] = None) -> Event:
        """Wait for the oldest item matching ``predicate`` (or any item)."""
        ev = Event(self.env)
        for idx, item in enumerate(self.items):
            if predicate is None or predicate(item):
                del self.items[idx]
                ev.succeed(item)
                return ev
        entry = (ev, predicate)
        self._getters.append(entry)
        ev.on_abandon = lambda: _discard(self._getters, entry)
        return ev

    def try_get(self, predicate: Optional[Any] = None) -> tuple[bool, Any]:
        """Non-blocking matched get."""
        for idx, item in enumerate(self.items):
            if predicate is None or predicate(item):
                del self.items[idx]
                return True, item
        return False, None


class Semaphore:
    """Counting semaphore: ``acquire()`` events grant in FIFO order."""

    __slots__ = ("env", "_count", "_waiting")

    def __init__(self, env: Environment, initial: int = 0) -> None:
        if initial < 0:
            raise SimulationError(f"semaphore initial count must be >= 0")
        self.env = env
        self._count = initial
        self._waiting: deque[Event] = deque()

    @property
    def count(self) -> int:
        return self._count

    def acquire(self) -> Event:
        ev = Event(self.env)
        if self._count > 0:
            self._count -= 1
            ev.succeed()
        else:
            self._waiting.append(ev)
            ev.on_abandon = lambda: _discard(self._waiting, ev)
        return ev

    def release(self, n: int = 1) -> None:
        for _ in range(n):
            if self._waiting:
                self._waiting.popleft().succeed()
            else:
                self._count += 1
