"""Lightweight event tracing for debugging simulations.

Attach a :class:`Tracer` to an :class:`~repro.sim.kernel.Environment` to
record (time, event-repr) tuples or stream them to a file. Tracing is
off by default and costs nothing when unused (the kernel checks a single
attribute).
"""

from __future__ import annotations

import io
from typing import Optional

from repro.sim.kernel import Environment, Event

__all__ = ["Tracer", "TraceRecord"]


class TraceRecord:
    """One processed event."""

    __slots__ = ("time", "kind", "detail")

    def __init__(self, time: float, kind: str, detail: str) -> None:
        self.time = time
        self.kind = kind
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceRecord(t={self.time:.1f}, {self.kind}, {self.detail})"


class Tracer:
    """Collects processed-event records from an environment.

    Parameters
    ----------
    env:
        Environment to attach to.
    limit:
        Maximum records retained (oldest dropped beyond this) to bound
        memory in long simulations.
    stream:
        Optional text stream to additionally write one line per event.
    """

    def __init__(
        self,
        env: Environment,
        limit: int = 100_000,
        stream: Optional[io.TextIOBase] = None,
    ) -> None:
        self.env = env
        self.limit = limit
        self.stream = stream
        self.records: list[TraceRecord] = []
        self._installed = False

    def install(self) -> "Tracer":
        self.env.trace_hook = self._hook
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.env.trace_hook = None
            self._installed = False

    def __enter__(self) -> "Tracer":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    def _hook(self, time: float, event: Event) -> None:
        kind = type(event).__name__
        detail = getattr(event, "name", "") or ""
        self._append(time, kind, detail)

    def record(self, kind: str, detail: str = "") -> TraceRecord:
        """Record an application-level occurrence at the current time.

        Used by the fault injector and the client resilience machinery
        to put injected faults, retries, re-connects and partition
        demotions on the same timeline as kernel events; works whether
        or not the tracer is installed as the kernel hook.
        """
        return self._append(self.env.now, kind, detail)

    def _append(self, time: float, kind: str, detail: str) -> TraceRecord:
        rec = TraceRecord(time, kind, detail)
        self.records.append(rec)
        if len(self.records) > self.limit:
            del self.records[: len(self.records) // 2]
        if self.stream is not None:
            self.stream.write(f"{time:>14.1f} {kind:<12} {detail}\n")
        return rec

    def counts(self) -> dict[str, int]:
        """Histogram of processed event kinds."""
        out: dict[str, int] = {}
        for rec in self.records:
            out[rec.kind] = out.get(rec.kind, 0) + 1
        return out
