"""The pre-wheel, single-heap scheduler, kept as a benchmark baseline.

:class:`HeapEnvironment` reproduces the original ``Environment`` queue:
one binary heap of ``(time, priority, sequence, event)`` tuples, a fresh
``Timeout`` object per ``timeout()`` call (no freelist), and a per-event
``step()`` method call. Event/Process semantics are shared with the live
kernel, so the two environments produce identical simulations — only the
scheduler data structure and allocation behaviour differ.

Used by :mod:`repro.harness.kernelbench` to measure the wheel scheduler's
events/sec speedup against the seed design; not used by any experiment.
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.errors import SimulationError
from repro.sim.kernel import Environment, Event, StopSimulation, Timeout

__all__ = ["HeapEnvironment"]


class HeapEnvironment(Environment):
    """Drop-in :class:`Environment` with the seed heap-based scheduler."""

    __slots__ = ("_heap",)

    def __init__(self, initial_time: float = 0.0) -> None:
        super().__init__(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # Seed behaviour: always allocate; never recycle.
        return Timeout(self, delay, value)

    def schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay!r})")
        self._seq += 1
        self.events_scheduled += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def schedule_at(self, event: Event, when: float, priority: int = 1) -> None:
        if when < self._now:
            raise SimulationError(f"cannot schedule into the past ({when!r})")
        self._seq += 1
        self.events_scheduled += 1
        heapq.heappush(self._heap, (when, priority, self._seq, event))

    def peek(self) -> float:
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        try:
            when, _prio, _seq, event = heapq.heappop(self._heap)
        except IndexError:
            raise SimulationError("step(): empty schedule") from None
        self._now = when
        self._dispatch(event)

    def run(self, until: "float | Event | None" = None) -> Any:
        if until is None:
            stop_at = float("inf")
        elif isinstance(until, Event):
            if until.callbacks is None:
                if not until._ok:
                    raise until._value
                return until._value
            until.callbacks.append(self._stop_on)
            stop_at = float("inf")
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at!r} is in the past (now={self._now!r})"
                )
        try:
            while self._heap and self._heap[0][0] <= stop_at:
                self.step()
        except StopSimulation as stop:
            return stop.value
        if isinstance(until, Event):
            raise SimulationError(
                "run() ran out of events before its target event triggered"
            )
        if until is not None:
            self._now = stop_at
        return None
