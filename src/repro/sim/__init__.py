"""Discrete-event simulation substrate.

The kernel (:mod:`repro.sim.kernel`) provides SimPy-style processes and
events; :mod:`repro.sim.resources` adds counted resources, FIFO stores
and semaphores; :mod:`repro.sim.rng` supplies deterministic named random
streams; :mod:`repro.sim.trace` provides opt-in event tracing.

Simulated time is measured in **nanoseconds** by convention everywhere
in this library.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    ConditionValue,
    Environment,
    Event,
    Interrupt,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Process,
    Timeout,
)
from repro.sim.resources import FilterStore, Request, Resource, Semaphore, Store
from repro.sim.rng import RngRegistry, fnv1a_64
from repro.sim.trace import Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Environment",
    "Event",
    "Interrupt",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "Process",
    "FilterStore",
    "Request",
    "Resource",
    "RngRegistry",
    "Semaphore",
    "Store",
    "Timeout",
    "Tracer",
    "fnv1a_64",
]
