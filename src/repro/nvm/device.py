"""Non-volatile main-memory device: state + timing.

:class:`NVMDevice` binds a :class:`~repro.mem.buffer.PersistentBuffer`
(state, crash semantics) to an :class:`NVMTiming` cost model and a
simulation environment, and exposes *timed* operations as generators to
``yield from`` inside simulated processes:

* :meth:`copy_in` — CPU memcpy into NVM (the RPC server's staging copy);
* :meth:`persist` — CLWB over a range + SFENCE drain;
* :meth:`store`  — small CPU store (metadata field update).

Instant (zero-time) state access is available through :attr:`buffer`
and the convenience :meth:`read` / :meth:`write` passthroughs — those
model reads/writes whose *timing* is charged elsewhere (e.g. inbound
RDMA DMA, whose time lives in the fabric model).

Every persist boundary and atomic metadata store is also a fault
*injection site*: :meth:`persist` fires ``nvm.persist``, :meth:`flush`
fires ``nvm.flush`` (the state-level writeback used where timing is
charged by the caller), and :meth:`write_atomic64` fires
``nvm.store64``. These sites carry the media-fault kinds
(``nvm_bitrot``, ``nvm_torn_store``) and double as the crash points the
crash-point matrix (:mod:`repro.harness.crashmatrix`) enumerates.

Default constants approximate Optane DC PMM behind a DDR bus and are
recorded (with their calibration rationale) in DESIGN.md §6.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.mem.buffer import CACHELINE, PersistentBuffer
from repro.sim.kernel import Environment, Event

__all__ = ["NVMTiming", "NVMDevice"]


@dataclass(frozen=True)
class NVMTiming:
    """Latency model for NVM operations (nanoseconds).

    Attributes
    ----------
    store_ns:
        Fixed cost of a small CPU store + pipeline effects.
    copy_ns_per_byte:
        Marginal memcpy cost into NVM (single-thread NVM write bandwidth ~1.1 GB/s).
    read_ns_per_byte:
        Marginal media read cost (used for recovery scans).
    read_base_ns:
        Base media-read latency for a random read.
    flush_line_ns:
        Cost of issuing one CLWB.
    fence_ns:
        SFENCE drain: waiting for queued write-backs to reach the media
        power-fail domain.
    """

    store_ns: float = 15.0
    copy_ns_per_byte: float = 0.9
    read_ns_per_byte: float = 0.15
    read_base_ns: float = 170.0
    flush_line_ns: float = 20.0
    fence_ns: float = 150.0

    def __post_init__(self) -> None:
        for name in (
            "store_ns",
            "copy_ns_per_byte",
            "read_ns_per_byte",
            "read_base_ns",
            "flush_line_ns",
            "fence_ns",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"NVMTiming.{name} must be >= 0")

    # -- cost functions ------------------------------------------------------
    def copy_cost(self, nbytes: int) -> float:
        return self.store_ns + self.copy_ns_per_byte * nbytes

    def read_cost(self, nbytes: int) -> float:
        return self.read_base_ns + self.read_ns_per_byte * nbytes

    def flush_cost(self, nbytes: int) -> float:
        """Issue CLWBs over the whole range and drain with one fence."""
        lines = (nbytes + CACHELINE - 1) // CACHELINE
        return self.flush_line_ns * lines + self.fence_ns


class NVMDevice:
    """A simulated NVMM DIMM-set (see module docstring)."""

    __slots__ = ("env", "name", "timing", "buffer", "injector", "media_faults")

    def __init__(
        self,
        env: Environment,
        size: int,
        timing: NVMTiming | None = None,
        name: str = "nvm0",
    ) -> None:
        self.env = env
        self.name = name
        self.timing = timing or NVMTiming()
        self.buffer = PersistentBuffer(size)
        #: Armed fault injector (:mod:`repro.faults`), or None; the
        #: persist path checks this one attribute per flush.
        self.injector = None
        #: Media-fault events actually resolved against this device
        #: (bitrot flips + torn writebacks) — the denominator for the
        #: chaos harness's repair-outcome accounting.
        self.media_faults = 0

    @property
    def size(self) -> int:
        return self.buffer.size

    # -- instant state access (timing charged by the caller) -----------------
    def read(self, addr: int, length: int) -> bytes:
        return self.buffer.read(addr, length)

    def write(self, addr: int, data: bytes | bytearray | memoryview) -> None:
        self.buffer.write(addr, data)

    def write_atomic64(self, addr: int, data: bytes) -> None:
        if self.injector is not None:
            self.injector.fire("nvm.store64")
        self.buffer.write_atomic64(addr, data)

    def is_persistent(self, addr: int, length: int) -> bool:
        return self.buffer.is_persistent(addr, length)

    def flush(self, addr: int, length: int) -> int:
        """State-level writeback through the ``nvm.flush`` injection site.

        Timing is charged by the caller (paths that fold the CLWB+fence
        cost into their own timeouts); the site still exists so the
        crash matrix can pull the plug at, and media faults can target,
        every persist boundary — not just the timed :meth:`persist`.
        """
        if self.injector is not None:
            act = self.injector.fire("nvm.flush")
            if act is not None:
                return self._faulted_flush(act, addr, length)
        return self.buffer.flush(addr, length)

    # -- timed operations -----------------------------------------------------
    def store(
        self, addr: int, data: bytes, *, atomic: bool = False
    ) -> Generator[Event, None, None]:
        """Timed small CPU store (metadata updates)."""
        yield self.env.timeout(self.timing.store_ns)
        if atomic:
            self.buffer.write_atomic64(addr, data)
        else:
            self.buffer.write(addr, data)

    def copy_in(self, addr: int, data: bytes) -> Generator[Event, None, None]:
        """Timed CPU memcpy of ``data`` into NVM at ``addr``."""
        yield self.env.timeout(self.timing.copy_cost(len(data)))
        self.buffer.write(addr, data)

    def load(self, addr: int, length: int) -> Generator[Event, None, bytes]:
        """Timed CPU read from NVM (recovery scans)."""
        yield self.env.timeout(self.timing.read_cost(length))
        return self.buffer.read(addr, length)

    def persist(self, addr: int, length: int) -> Generator[Event, None, int]:
        """Timed CLWB sweep + SFENCE; returns lines actually written back.

        The time charged covers issuing CLWB over the *whole* range
        (real code cannot skip clean lines it does not know about) plus
        one fence; the state transition only copies dirty lines.
        """
        cost = self.timing.flush_cost(length)
        act = None
        if self.injector is not None:
            act = self.injector.fire("nvm.persist")
            if act is not None and act.kind == "nvm_spike":
                # Media congestion / write-pressure throttling spike.
                cost = cost * act.factor + act.delay_ns
        yield self.env.timeout(cost)
        if act is not None and act.kind in ("nvm_bitrot", "nvm_torn_store"):
            return self._faulted_flush(act, addr, length)
        return self.buffer.flush(addr, length)

    def _faulted_flush(self, act, addr: int, length: int) -> int:
        """Resolve a media-fault action on one writeback."""
        rng = getattr(self.injector, "media_rng", None)
        if act.kind == "nvm_torn_store" and rng is not None:
            self.media_faults += 1
            return self.buffer.flush_torn(addr, length, rng)
        n = self.buffer.flush(addr, length)
        if act.kind == "nvm_bitrot" and rng is not None and length > 0:
            self.media_faults += 1
            off = int(rng.integers(length))
            self.buffer.corrupt(addr + off, "bitflip", rng=rng)
        return n

    # -- crash -----------------------------------------------------------------
    def crash(
        self,
        rng: np.random.Generator,
        evict_probability: float = 0.5,
        *,
        tear_words: bool = False,
    ) -> dict:
        """Power-fail the device (state only; orchestration is in
        :mod:`repro.harness.crash`)."""
        return self.buffer.crash(rng, evict_probability, tear_words=tear_words)

    def corrupt(
        self,
        addr: int,
        kind: str = "bitflip",
        *,
        rng: np.random.Generator | None = None,
    ) -> dict:
        """Seeded latent media corruption (see
        :meth:`repro.mem.buffer.PersistentBuffer.corrupt`)."""
        return self.buffer.corrupt(addr, kind, rng=rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<NVMDevice {self.name} size={self.size}>"
