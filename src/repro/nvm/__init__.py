"""Non-volatile main-memory device model."""

from repro.nvm.device import NVMDevice, NVMTiming

__all__ = ["NVMDevice", "NVMTiming"]
