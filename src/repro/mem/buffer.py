"""Byte-addressable memory with a volatility/persistence boundary.

:class:`PersistentBuffer` models the state (not the timing — see
:mod:`repro.nvm.device`) of NVMM behind a write-back cache hierarchy:

* ``visible`` — what loads (and RDMA READs) observe *now*: the union of
  CPU-cache / DDIO-LLC contents and the media.
* ``durable`` — what is actually on the NVM media and survives a crash.

Stores and inbound DMA update ``visible`` and mark the covered 64-byte
cachelines *dirty*. ``flush`` (CLWB/CLFLUSH + SFENCE at a higher layer)
copies dirty lines to ``durable``. On a crash each dirty line is
independently either *naturally evicted* (it made it to media on its
own — the behaviour Erda relies on and that causes its non-monotonic
reads) or lost, in which case ``visible`` reverts to the durable image.

Crash resolution has two granularities. The default resolves whole
lines, which subsumes the 8-byte failure-atomicity unit of real NVM for
aligned 8-byte stores — what every scheme in the paper relies on for
hash-entry updates; :meth:`write_atomic64` asserts the alignment
invariant. With ``tear_words=True`` each aligned 8-byte word of a dirty
line is resolved *independently*, the harshest model consistent with the
hardware guarantee: multi-word stores (headers, values) can tear
mid-object, while any single aligned 8-byte store still lands or misses
atomically.

Latent media faults (bit-rot, stuck lines) are modelled by
:meth:`corrupt`: a seeded mutation of the *durable* image, visible to
loads only where the cache no longer masks the media (clean lines) —
exactly the class of error Pangolin-style checksum scrubbing exists to
catch.

Dirty tracking uses a NumPy boolean array so that flush/crash sweeps are
vectorised (guides: prefer masks over Python loops).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryAccessError

__all__ = [
    "CACHELINE",
    "ATOMIC_WORD",
    "CORRUPTION_KINDS",
    "PersistentBuffer",
    "BufferStats",
]

#: Cacheline size in bytes; the dirty-tracking and crash granularity.
CACHELINE = 64

#: NVM failure-atomicity unit: an aligned 8-byte store lands atomically.
ATOMIC_WORD = 8

#: Latent-corruption kinds accepted by :meth:`PersistentBuffer.corrupt`.
CORRUPTION_KINDS = ("bitflip", "zero_line")


class BufferStats:
    """Running counters for a :class:`PersistentBuffer`."""

    __slots__ = (
        "bytes_written",
        "bytes_read",
        "lines_flushed",
        "flush_calls",
        "crashes",
        "lines_evicted_on_crash",
        "lines_lost_on_crash",
        "lines_torn_on_crash",
        "words_lost_on_crash",
        "corruptions",
        "torn_stores",
    )

    def __init__(self) -> None:
        self.bytes_written = 0
        self.bytes_read = 0
        self.lines_flushed = 0
        self.flush_calls = 0
        self.crashes = 0
        self.lines_evicted_on_crash = 0
        self.lines_lost_on_crash = 0
        self.lines_torn_on_crash = 0
        self.words_lost_on_crash = 0
        self.corruptions = 0
        self.torn_stores = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class PersistentBuffer:
    """State model of an NVMM address space (see module docstring)."""

    __slots__ = ("size", "visible", "durable", "_dirty", "stats")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise MemoryAccessError(f"buffer size must be positive, got {size}")
        self.size = size
        self.visible = bytearray(size)
        self.durable = bytearray(size)
        n_lines = (size + CACHELINE - 1) // CACHELINE
        self._dirty = np.zeros(n_lines, dtype=bool)
        self.stats = BufferStats()

    # -- bounds ------------------------------------------------------------
    def _check(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size:
            raise MemoryAccessError(
                f"access [{addr}, {addr + length}) outside buffer of size {self.size}"
            )

    def _line_span(self, addr: int, length: int) -> tuple[int, int]:
        """First and one-past-last line index covering ``[addr, addr+length)``."""
        if length == 0:
            return 0, 0
        return addr // CACHELINE, (addr + length - 1) // CACHELINE + 1

    # -- access ------------------------------------------------------------
    def write(self, addr: int, data: bytes | bytearray | memoryview) -> None:
        """Store ``data`` at ``addr`` (visible immediately, not durable)."""
        n = len(data)
        self._check(addr, n)
        if n == 0:
            return
        self.visible[addr : addr + n] = data
        lo, hi = self._line_span(addr, n)
        self._dirty[lo:hi] = True
        self.stats.bytes_written += n

    def write_atomic64(self, addr: int, data: bytes) -> None:
        """An aligned 8-byte store — the failure-atomicity unit of NVM."""
        if len(data) != 8:
            raise MemoryAccessError(f"atomic64 write needs 8 bytes, got {len(data)}")
        if addr % 8 != 0:
            raise MemoryAccessError(f"atomic64 write to unaligned address {addr}")
        self.write(addr, data)

    def read(self, addr: int, length: int) -> bytes:
        """Load from the *visible* image (what RDMA READ returns)."""
        self._check(addr, length)
        self.stats.bytes_read += length
        return bytes(self.visible[addr : addr + length])

    def read_durable(self, addr: int, length: int) -> bytes:
        """Load from the media image (post-crash contents)."""
        self._check(addr, length)
        return bytes(self.durable[addr : addr + length])

    # -- persistence -------------------------------------------------------
    def flush(self, addr: int, length: int) -> int:
        """Write back all lines covering the range; returns #lines flushed.

        Clean lines in the range are skipped (CLWB semantics on an
        already-clean line are free at the state level; the *timing*
        model in :mod:`repro.nvm.device` still charges for issuing the
        instruction over the full range, as real code does).
        """
        self._check(addr, length)
        self.stats.flush_calls += 1
        if length == 0:
            return 0
        lo, hi = self._line_span(addr, length)
        dirty_idx = np.flatnonzero(self._dirty[lo:hi]) + lo
        for line in dirty_idx:
            start = int(line) * CACHELINE
            end = min(start + CACHELINE, self.size)
            self.durable[start:end] = self.visible[start:end]
        self._dirty[lo:hi] = False
        n = int(dirty_idx.size)
        self.stats.lines_flushed += n
        return n

    def flush_all(self) -> int:
        """Write back every dirty line (used at clean shutdown)."""
        return self.flush(0, self.size)

    def is_persistent(self, addr: int, length: int) -> bool:
        """True when no line covering the range is dirty *and* the visible
        and durable images agree on the exact byte range.

        The byte-level comparison matters: a line may have been re-dirtied
        by a neighbouring object after this range was flushed, in which
        case the range itself is still durable.
        """
        self._check(addr, length)
        if length == 0:
            return True
        lo, hi = self._line_span(addr, length)
        if not self._dirty[lo:hi].any():
            return True
        return self.visible[addr : addr + length] == self.durable[addr : addr + length]

    def dirty_line_count(self) -> int:
        return int(self._dirty.sum())

    def dirty_lines_in(self, addr: int, length: int) -> int:
        """Number of dirty lines covering the range (flush-cost input)."""
        self._check(addr, length)
        if length == 0:
            return 0
        lo, hi = self._line_span(addr, length)
        return int(self._dirty[lo:hi].sum())

    # -- crash semantics -----------------------------------------------------
    def crash(
        self,
        rng: np.random.Generator,
        evict_probability: float = 0.5,
        *,
        tear_words: bool = False,
    ) -> dict:
        """Power failure: resolve every dirty line, then expose the media.

        Each dirty line is independently *naturally evicted* (survives)
        with ``evict_probability``, else its volatile contents are lost.
        With ``tear_words=True`` the coin is flipped per aligned 8-byte
        word instead, so a line can land *partially* — tearing any store
        wider than the hardware's failure-atomicity unit — while aligned
        8-byte stores (one word) still resolve atomically.
        Afterwards ``visible == durable`` and nothing is dirty.

        Returns a summary dict (``evicted``, ``lost``, ``torn`` line
        counts; ``torn`` only ever non-zero with ``tear_words``).
        """
        if not 0.0 <= evict_probability <= 1.0:
            raise MemoryAccessError(
                f"evict_probability must be in [0,1], got {evict_probability}"
            )
        dirty_idx = np.flatnonzero(self._dirty)
        evicted = lost = torn = 0
        words_per_line = CACHELINE // ATOMIC_WORD
        for line in dirty_idx:
            start = int(line) * CACHELINE
            end = min(start + CACHELINE, self.size)
            if tear_words:
                n_words = (end - start + ATOMIC_WORD - 1) // ATOMIC_WORD
                survives = rng.random(n_words) < evict_probability
                n_live = int(survives.sum())
                if n_live == n_words:
                    self.durable[start:end] = self.visible[start:end]
                    evicted += 1
                elif n_live == 0:
                    lost += 1
                    self.stats.words_lost_on_crash += n_words
                else:
                    for w in np.flatnonzero(survives):
                        ws = start + int(w) * ATOMIC_WORD
                        we = min(ws + ATOMIC_WORD, end)
                        self.durable[ws:we] = self.visible[ws:we]
                    torn += 1
                    self.stats.words_lost_on_crash += n_words - n_live
            else:
                if rng.random() < evict_probability:
                    self.durable[start:end] = self.visible[start:end]
                    evicted += 1
                else:
                    lost += 1
                    self.stats.words_lost_on_crash += words_per_line
        self.visible[:] = self.durable
        self._dirty[:] = False
        self.stats.crashes += 1
        self.stats.lines_evicted_on_crash += evicted
        self.stats.lines_lost_on_crash += lost
        self.stats.lines_torn_on_crash += torn
        return {"evicted": evicted, "lost": lost, "torn": torn}

    # -- media faults --------------------------------------------------------
    def corrupt(
        self,
        addr: int,
        kind: str = "bitflip",
        *,
        rng: np.random.Generator | None = None,
    ) -> dict:
        """Seeded latent media corruption at ``addr`` (Pangolin's threat
        model: errors the DIMM develops *after* a successful write).

        ``bitflip`` flips one bit of the byte at ``addr`` (bit chosen by
        ``rng``, bit 0 without one); ``zero_line`` zeroes the whole
        cacheline containing ``addr`` (an uncorrectable stuck line).

        The *durable* image is always mutated. The *visible* image
        follows only where the covered line is clean — a dirty line
        means the cache still holds the good data and masks the media
        until the next writeback.

        Returns a summary dict (``kind``, ``addr``, ``bit``, ``masked``).
        """
        self._check(addr, 1)
        if kind not in CORRUPTION_KINDS:
            raise MemoryAccessError(
                f"unknown corruption kind {kind!r}; known: {CORRUPTION_KINDS}"
            )
        line = addr // CACHELINE
        start = line * CACHELINE
        end = min(start + CACHELINE, self.size)
        bit = None
        if kind == "bitflip":
            bit = int(rng.integers(8)) if rng is not None else 0
            self.durable[addr] ^= 1 << bit
        else:  # zero_line
            self.durable[start:end] = bytes(end - start)
        masked = bool(self._dirty[line])
        if not masked:
            self.visible[start:end] = self.durable[start:end]
        self.stats.corruptions += 1
        return {"kind": kind, "addr": addr, "bit": bit, "masked": masked}

    def flush_torn(
        self, addr: int, length: int, rng: np.random.Generator
    ) -> int:
        """Flush the range but leave one aligned 8-byte word behind — a
        torn store: the CLWB for that word's line was issued but the
        write-back was dropped before the ADR domain (a modelled media
        write fault on the persist path).

        The un-persisted word's line is re-marked dirty, so a later
        flush honestly repairs it; only a crash before that exposes the
        tear. Returns #lines written back (like :meth:`flush`).
        """
        self._check(addr, length)
        if length < ATOMIC_WORD:
            return self.flush(addr, length)
        first = (addr + ATOMIC_WORD - 1) // ATOMIC_WORD
        last = (addr + length) // ATOMIC_WORD  # one-past-last full word
        if last <= first:
            return self.flush(addr, length)
        word = int(rng.integers(first, last))
        ws = word * ATOMIC_WORD
        saved = bytes(self.durable[ws : ws + ATOMIC_WORD])
        n = self.flush(addr, length)
        self.durable[ws : ws + ATOMIC_WORD] = saved
        self._dirty[ws // CACHELINE] = True
        self.stats.torn_stores += 1
        return n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PersistentBuffer size={self.size} "
            f"dirty_lines={self.dirty_line_count()}>"
        )
