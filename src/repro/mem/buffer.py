"""Byte-addressable memory with a volatility/persistence boundary.

:class:`PersistentBuffer` models the state (not the timing — see
:mod:`repro.nvm.device`) of NVMM behind a write-back cache hierarchy:

* ``visible`` — what loads (and RDMA READs) observe *now*: the union of
  CPU-cache / DDIO-LLC contents and the media.
* ``durable`` — what is actually on the NVM media and survives a crash.

Stores and inbound DMA update ``visible`` and mark the covered 64-byte
cachelines *dirty*. ``flush`` (CLWB/CLFLUSH + SFENCE at a higher layer)
copies dirty lines to ``durable``. On a crash each dirty line is
independently either *naturally evicted* (it made it to media on its
own — the behaviour Erda relies on and that causes its non-monotonic
reads) or lost, in which case ``visible`` reverts to the durable image.

Line-granular crash atomicity subsumes the 8-byte failure-atomicity unit
of real NVM for aligned 8-byte stores, which is what every scheme in the
paper relies on (hash-entry updates); :meth:`write_atomic64` asserts the
alignment invariant.

Dirty tracking uses a NumPy boolean array so that flush/crash sweeps are
vectorised (guides: prefer masks over Python loops).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryAccessError

__all__ = ["CACHELINE", "PersistentBuffer", "BufferStats"]

#: Cacheline size in bytes; the dirty-tracking and crash granularity.
CACHELINE = 64


class BufferStats:
    """Running counters for a :class:`PersistentBuffer`."""

    __slots__ = (
        "bytes_written",
        "bytes_read",
        "lines_flushed",
        "flush_calls",
        "crashes",
        "lines_evicted_on_crash",
        "lines_lost_on_crash",
    )

    def __init__(self) -> None:
        self.bytes_written = 0
        self.bytes_read = 0
        self.lines_flushed = 0
        self.flush_calls = 0
        self.crashes = 0
        self.lines_evicted_on_crash = 0
        self.lines_lost_on_crash = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class PersistentBuffer:
    """State model of an NVMM address space (see module docstring)."""

    __slots__ = ("size", "visible", "durable", "_dirty", "stats")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise MemoryAccessError(f"buffer size must be positive, got {size}")
        self.size = size
        self.visible = bytearray(size)
        self.durable = bytearray(size)
        n_lines = (size + CACHELINE - 1) // CACHELINE
        self._dirty = np.zeros(n_lines, dtype=bool)
        self.stats = BufferStats()

    # -- bounds ------------------------------------------------------------
    def _check(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size:
            raise MemoryAccessError(
                f"access [{addr}, {addr + length}) outside buffer of size {self.size}"
            )

    def _line_span(self, addr: int, length: int) -> tuple[int, int]:
        """First and one-past-last line index covering ``[addr, addr+length)``."""
        if length == 0:
            return 0, 0
        return addr // CACHELINE, (addr + length - 1) // CACHELINE + 1

    # -- access ------------------------------------------------------------
    def write(self, addr: int, data: bytes | bytearray | memoryview) -> None:
        """Store ``data`` at ``addr`` (visible immediately, not durable)."""
        n = len(data)
        self._check(addr, n)
        if n == 0:
            return
        self.visible[addr : addr + n] = data
        lo, hi = self._line_span(addr, n)
        self._dirty[lo:hi] = True
        self.stats.bytes_written += n

    def write_atomic64(self, addr: int, data: bytes) -> None:
        """An aligned 8-byte store — the failure-atomicity unit of NVM."""
        if len(data) != 8:
            raise MemoryAccessError(f"atomic64 write needs 8 bytes, got {len(data)}")
        if addr % 8 != 0:
            raise MemoryAccessError(f"atomic64 write to unaligned address {addr}")
        self.write(addr, data)

    def read(self, addr: int, length: int) -> bytes:
        """Load from the *visible* image (what RDMA READ returns)."""
        self._check(addr, length)
        self.stats.bytes_read += length
        return bytes(self.visible[addr : addr + length])

    def read_durable(self, addr: int, length: int) -> bytes:
        """Load from the media image (post-crash contents)."""
        self._check(addr, length)
        return bytes(self.durable[addr : addr + length])

    # -- persistence -------------------------------------------------------
    def flush(self, addr: int, length: int) -> int:
        """Write back all lines covering the range; returns #lines flushed.

        Clean lines in the range are skipped (CLWB semantics on an
        already-clean line are free at the state level; the *timing*
        model in :mod:`repro.nvm.device` still charges for issuing the
        instruction over the full range, as real code does).
        """
        self._check(addr, length)
        self.stats.flush_calls += 1
        if length == 0:
            return 0
        lo, hi = self._line_span(addr, length)
        dirty_idx = np.flatnonzero(self._dirty[lo:hi]) + lo
        for line in dirty_idx:
            start = int(line) * CACHELINE
            end = min(start + CACHELINE, self.size)
            self.durable[start:end] = self.visible[start:end]
        self._dirty[lo:hi] = False
        n = int(dirty_idx.size)
        self.stats.lines_flushed += n
        return n

    def flush_all(self) -> int:
        """Write back every dirty line (used at clean shutdown)."""
        return self.flush(0, self.size)

    def is_persistent(self, addr: int, length: int) -> bool:
        """True when no line covering the range is dirty *and* the visible
        and durable images agree on the exact byte range.

        The byte-level comparison matters: a line may have been re-dirtied
        by a neighbouring object after this range was flushed, in which
        case the range itself is still durable.
        """
        self._check(addr, length)
        if length == 0:
            return True
        lo, hi = self._line_span(addr, length)
        if not self._dirty[lo:hi].any():
            return True
        return self.visible[addr : addr + length] == self.durable[addr : addr + length]

    def dirty_line_count(self) -> int:
        return int(self._dirty.sum())

    def dirty_lines_in(self, addr: int, length: int) -> int:
        """Number of dirty lines covering the range (flush-cost input)."""
        self._check(addr, length)
        if length == 0:
            return 0
        lo, hi = self._line_span(addr, length)
        return int(self._dirty[lo:hi].sum())

    # -- crash semantics -----------------------------------------------------
    def crash(self, rng: np.random.Generator, evict_probability: float = 0.5) -> dict:
        """Power failure: resolve every dirty line, then expose the media.

        Each dirty line is independently *naturally evicted* (survives)
        with ``evict_probability``, else its volatile contents are lost.
        Afterwards ``visible == durable`` and nothing is dirty.

        Returns a summary dict (``evicted``, ``lost`` line counts).
        """
        if not 0.0 <= evict_probability <= 1.0:
            raise MemoryAccessError(
                f"evict_probability must be in [0,1], got {evict_probability}"
            )
        dirty_idx = np.flatnonzero(self._dirty)
        if dirty_idx.size:
            survives = rng.random(dirty_idx.size) < evict_probability
            for line in dirty_idx[survives]:
                start = int(line) * CACHELINE
                end = min(start + CACHELINE, self.size)
                self.durable[start:end] = self.visible[start:end]
        evicted = int(survives.sum()) if dirty_idx.size else 0
        lost = int(dirty_idx.size) - evicted
        self.visible[:] = self.durable
        self._dirty[:] = False
        self.stats.crashes += 1
        self.stats.lines_evicted_on_crash += evicted
        self.stats.lines_lost_on_crash += lost
        return {"evicted": evicted, "lost": lost}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PersistentBuffer size={self.size} "
            f"dirty_lines={self.dirty_line_count()}>"
        )
