"""Declarative binary struct layouts.

The stores in this library keep *all* of their server-side state —
objects, object metadata, hash buckets — as raw bytes inside a
:class:`~repro.mem.buffer.PersistentBuffer`, exactly because clients
access that state with one-sided RDMA reads of raw memory. This module
gives each on-NVM structure a single authoritative layout definition
shared by the server (which writes fields) and the client (which parses
bytes it fetched remotely).

Layouts are thin wrappers over :mod:`struct` with named fields, per-field
offsets (so a single field can be updated with one small — possibly
atomic — store), and fixed total size.

>>> hdr = StructLayout("demo", [("vlen", "I"), ("crc", "I"), ("pre", "Q")])
>>> hdr.size
16
>>> raw = hdr.pack(vlen=5, crc=0xDEAD, pre=0)
>>> hdr.unpack(raw).crc == 0xDEAD
True
"""

from __future__ import annotations

import struct
from typing import Any, NamedTuple

from repro.errors import ConfigError

__all__ = ["FieldSpec", "StructLayout"]

#: struct format codes accepted for fields (little-endian, no padding).
_ALLOWED = set("BHIQbhiq") | {"s"}


class FieldSpec(NamedTuple):
    """One field in a layout: name, struct code, byte offset, byte size."""

    name: str
    code: str
    offset: int
    size: int


class StructLayout:
    """A named, fixed-size little-endian binary record.

    Parameters
    ----------
    name:
        Diagnostic name.
    fields:
        Sequence of ``(field_name, code)`` where ``code`` is a single
        :mod:`struct` integer code (``B H I Q`` / signed variants) or
        ``"<N>s"`` for an N-byte opaque field.
    """

    __slots__ = ("name", "fields", "size", "_fmt", "_names", "_tuple_type")

    def __init__(self, name: str, fields: list[tuple[str, str]]) -> None:
        self.name = name
        specs: list[FieldSpec] = []
        offset = 0
        fmt_parts = ["<"]
        names: list[str] = []
        for fname, code in fields:
            base = code.lstrip("0123456789")
            if base not in _ALLOWED:
                raise ConfigError(f"{name}.{fname}: unsupported field code {code!r}")
            size = struct.calcsize("<" + code)
            specs.append(FieldSpec(fname, code, offset, size))
            offset += size
            fmt_parts.append(code)
            names.append(fname)
        if len(set(names)) != len(names):
            raise ConfigError(f"layout {name} has duplicate field names")
        self.fields = tuple(specs)
        self.size = offset
        self._fmt = "".join(fmt_parts)
        self._names = tuple(names)
        self._tuple_type = NamedTuple(  # type: ignore[misc]
            f"{name}_record", [(n, Any) for n in names]
        )

    # -- whole-record ------------------------------------------------------
    def pack(self, **values: Any) -> bytes:
        """Pack a full record; every field must be supplied."""
        missing = set(self._names) - set(values)
        if missing:
            raise ConfigError(f"{self.name}.pack missing fields: {sorted(missing)}")
        extra = set(values) - set(self._names)
        if extra:
            raise ConfigError(f"{self.name}.pack unknown fields: {sorted(extra)}")
        ordered = [values[n] for n in self._names]
        return struct.pack(self._fmt, *ordered)

    def unpack(self, raw: bytes | bytearray | memoryview) -> Any:
        """Unpack ``raw`` (exactly :attr:`size` bytes) to a named tuple."""
        if len(raw) != self.size:
            raise ConfigError(
                f"{self.name}.unpack needs {self.size} bytes, got {len(raw)}"
            )
        return self._tuple_type(*struct.unpack(self._fmt, raw))

    def unpack_from(self, raw: bytes | bytearray | memoryview, offset: int = 0) -> Any:
        """Unpack a record embedded at ``offset`` of a larger buffer."""
        return self._tuple_type(*struct.unpack_from(self._fmt, raw, offset))

    # -- single-field ---------------------------------------------------------
    def spec(self, field: str) -> FieldSpec:
        for fs in self.fields:
            if fs.name == field:
                return fs
        raise ConfigError(f"layout {self.name} has no field {field!r}")

    def offset_of(self, field: str) -> int:
        return self.spec(field).offset

    def size_of(self, field: str) -> int:
        return self.spec(field).size

    def pack_field(self, field: str, value: Any) -> bytes:
        """Bytes for a single field — write at ``addr + offset_of(field)``."""
        fs = self.spec(field)
        return struct.pack("<" + fs.code, value)

    def unpack_field(self, field: str, raw: bytes, record_offset: int = 0) -> Any:
        """Extract one field from a buffer holding a record at
        ``record_offset``."""
        fs = self.spec(field)
        (value,) = struct.unpack_from("<" + fs.code, raw, record_offset + fs.offset)
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<StructLayout {self.name} size={self.size} fields={self._names}>"
