"""Memory-state substrate: persistent buffers and binary layouts."""

from repro.mem.buffer import CACHELINE, BufferStats, PersistentBuffer
from repro.mem.layout import FieldSpec, StructLayout

__all__ = [
    "CACHELINE",
    "BufferStats",
    "PersistentBuffer",
    "FieldSpec",
    "StructLayout",
]
