"""Exception hierarchy shared across the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors
(``TypeError`` etc.). Simulation-control exceptions (``Interrupt``,
``StopSimulation``) intentionally do *not* derive from :class:`ReproError`
because they are control flow, not failures; they live in
:mod:`repro.sim.kernel`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "MemoryAccessError",
    "ProtectionError",
    "RDMAError",
    "QPError",
    "OperationTimeout",
    "StoreError",
    "KeyNotFoundError",
    "PoolExhaustedError",
    "CorruptObjectError",
    "RecoveryError",
    "PowerFailure",
    "ConfigError",
    "WorkloadError",
    "ConsistencyViolation",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly (e.g. yielding a
    non-event, running a finished environment backwards in time)."""


class MemoryAccessError(ReproError):
    """An access fell outside a registered buffer or memory region."""


class ProtectionError(MemoryAccessError):
    """A remote access violated a memory region's protection settings
    (bad rkey, write to a read-only region, ...)."""


class RDMAError(ReproError):
    """Generic RDMA fabric failure (disconnected QP, flushed WR, ...)."""


class QPError(RDMAError):
    """A queue-pair level failure: posting to a dead QP, receive queue
    underflow for two-sided traffic, and similar conditions.

    ``code`` lets retry policies distinguish fault classes without
    parsing messages: ``"qp_error"`` (error-state transition),
    ``"completion_lost"`` (dropped completion), ``"target_down"``
    (node crash), ...
    """

    def __init__(self, message: str = "", code: str = "qp_error") -> None:
        super().__init__(message)
        self.code = code


class OperationTimeout(RDMAError):
    """A client-side operation exceeded its resilience-policy deadline
    before its completion (or RPC response) arrived."""


class StoreError(ReproError):
    """Base class for key-value store protocol errors."""


class KeyNotFoundError(StoreError):
    """GET/DELETE referenced a key that is not present."""


class PoolExhaustedError(StoreError):
    """The log-structured data pool has no space for an allocation and
    log cleaning could not reclaim enough."""


class CorruptObjectError(StoreError):
    """An object failed integrity verification and no intact previous
    version exists on its version list."""


class RecoveryError(StoreError):
    """Post-crash recovery could not rebuild a consistent image."""


class PowerFailure(ReproError):
    """The simulated node lost power mid-operation.

    Raised *inside* the process that was executing when an injected
    ``crash`` fault fired; the simulation kernel escalates it out of
    ``env.run()`` to the crash harness, which then restarts the node and
    runs recovery. Deliberately not a :class:`QPError`/:class:`RpcFault`
    so client retry machinery can never swallow a power failure.
    """


class ConfigError(ReproError):
    """Invalid configuration value."""


class WorkloadError(ReproError):
    """Invalid workload specification."""


class ConsistencyViolation(ReproError):
    """Raised by the crash-consistency oracle when a store returns a value
    that violates its advertised guarantee (e.g. torn object, or a
    non-monotonic read for a store that promises monotonicity)."""
