"""repro — a simulation-grounded reproduction of *Fast and Consistent
Remote Direct Access to Non-volatile Memory* (eFactory, ICPP '21).

Layers, bottom-up:

* :mod:`repro.sim` — deterministic discrete-event kernel (time in ns).
* :mod:`repro.mem` / :mod:`repro.nvm` — persistent-memory state + timing
  with crash semantics (volatile vs durable images, natural eviction).
* :mod:`repro.rdma` — one-/two-sided verb model with in-flight-write
  tearing, DDIO, NIC/CPU resource contention, and SEND-based RPC.
* :mod:`repro.crc` — real CRC-32 plus the calibrated time-cost model.
* :mod:`repro.kv` — object layout, log pools, and both hash indexes.
* :mod:`repro.core` — eFactory itself; :mod:`repro.baselines` — the
  comparison systems (CA, RPC, SAW, IMM, Erda, Forca).
* :mod:`repro.workloads` / :mod:`repro.harness` — YCSB-style workloads,
  the multi-client experiment runner, and the crash-consistency oracle.

Quick start::

    from repro.sim import Environment
    from repro.stores import build_store

    env = Environment()
    setup = build_store("efactory", env, n_clients=1).start()
    client = setup.client()

    def demo():
        yield from client.put(b"k", b"hello")
        value = yield from client.get(b"k", size_hint=5)
        return value

    print(env.run(env.process(demo())))   # b'hello'
"""

from repro._version import __version__
from repro.errors import (
    ConfigError,
    ConsistencyViolation,
    CorruptObjectError,
    KeyNotFoundError,
    MemoryAccessError,
    PoolExhaustedError,
    ProtectionError,
    QPError,
    RDMAError,
    RecoveryError,
    ReproError,
    SimulationError,
    StoreError,
    WorkloadError,
)
from repro.stores import STORES, StoreSetup, StoreSpec, build_store, store_names

__all__ = [
    "__version__",
    "ConfigError",
    "ConsistencyViolation",
    "CorruptObjectError",
    "KeyNotFoundError",
    "MemoryAccessError",
    "PoolExhaustedError",
    "ProtectionError",
    "QPError",
    "RDMAError",
    "RecoveryError",
    "ReproError",
    "STORES",
    "SimulationError",
    "StoreError",
    "StoreSetup",
    "StoreSpec",
    "WorkloadError",
    "build_store",
    "store_names",
]
