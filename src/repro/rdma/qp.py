"""Queue-pair endpoints: the verb API used by clients and servers.

An :class:`Endpoint` is one side of a reliable connection. Its verb
methods are generators designed for ``yield from`` composition inside
simulated processes::

    data = yield from ep.read(rkey, offset, 4096)
    yield from ep.write(rkey, offset, payload)
    rid  = yield from ep.send({"op": "put"}, wire_bytes=64)
    msg  = yield from ep.recv_response(rid)

Timing composition per verb (see :mod:`repro.rdma.latency`):

* ``write``  — TX engine (nic_tx + serialize) → wire (propagation) →
  target DMA (into DDIO/LLC, i.e. *volatile*) → ACK (propagation +
  nic_rx). The payload is tracked in-flight for crash tearing.
* ``read``   — request out → target NIC DMA-reads memory → response
  occupies the *target's* TX engine for the payload → back.
* ``send``   — TX engine → wire → target NIC recv processing
  (``two_sided_rx_ns``) → delivered to the target node's SRQ.
* ``write_with_imm`` — ``write`` whose arrival also consumes a recv WQE
  and delivers an imm-tagged message (the server notices immediately —
  the property IMM-style durability relies on).
* ``cas``/``faa`` — 8-byte target-NIC read-modify-write.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional

from repro.errors import QPError
from repro.rdma.fabric import Fabric, Node
from repro.rdma.verbs import Message, Opcode, WorkCompletion, next_wr_id
from repro.sim.kernel import Event

__all__ = ["Endpoint"]


def _tx_engine(fabric, node, nbytes: int) -> Generator[Event, Any, None]:
    t = fabric.timing
    env = node.env
    req = yield from node.tx.acquire()
    try:
        yield env.timeout(
            t.nic_tx_occupancy_ns + t.serialize_ns(nbytes) + fabric.jitter()
        )
    finally:
        node.tx.release(req)
    pipelined = t.nic_tx_ns - t.nic_tx_occupancy_ns
    if pipelined > 0:
        yield env.timeout(pipelined)


class Endpoint:
    """One side of a reliable connection (see module docstring)."""

    __slots__ = ("fabric", "local", "remote", "peer", "stats", "_error")

    def __init__(self, fabric: Fabric, local: Node, remote: Node) -> None:
        self.fabric = fabric
        self.local = local
        self.remote = remote
        #: The opposite endpoint (set by Fabric.connect).
        self.peer: Optional["Endpoint"] = None
        #: Per-opcode counters.
        self.stats: dict[str, int] = {}
        #: True while the QP sits in the error state (after an injected
        #: qp_error / completion_drop fault): every verb fails until
        #: :meth:`reset` re-establishes the connection.
        self._error = False

    # -- QP state (fault injection / resilience) ----------------------------
    @property
    def in_error(self) -> bool:
        return self._error

    def reset(self) -> None:
        """Re-establish the connection: both directions leave the error
        state (models tearing down the QP pair and reconnecting)."""
        self._error = False
        if self.peer is not None:
            self.peer._error = False

    def _check_usable(self) -> None:
        if self._error:
            raise QPError(
                f"QP {self.local.name}->{self.remote.name} is in the error state",
                code="qp_error",
            )

    def _inject(self, site: str) -> Generator[Event, Any, None]:
        """Fault-injection point at the head of every verb. Only called
        when an injector is armed; an empty plan yields nothing, so
        timings are untouched."""
        inj = self.fabric.injector
        act = inj.fire(site, partition=inj.pop_context_partition())
        if act is None:
            return
        env = self.local.env
        if act.kind == "completion_delay":
            yield env.timeout(act.delay_ns)
        elif act.kind == "qp_error":
            self._error = True
            raise QPError(
                f"QP {self.local.name}->{self.remote.name} transitioned to "
                f"error state (injected: {act.rule})",
                code="qp_error",
            )
        elif act.kind == "completion_drop":
            # The WR is lost; the initiator spends the detection time in
            # transport retries before the QP gives up and errors out.
            if act.delay_ns > 0:
                yield env.timeout(act.delay_ns)
            self._error = True
            raise QPError(
                f"completion lost on {self.local.name}->{self.remote.name} "
                f"(injected: {act.rule})",
                code="completion_lost",
            )

    # -- internals ---------------------------------------------------------
    def _count(self, opcode: Opcode) -> None:
        self.stats[opcode.value] = self.stats.get(opcode.value, 0) + 1

    def _tx(self, nbytes: int) -> Generator[Event, Any, None]:
        """Pass one WR through the local TX engine.

        The engine is *occupied* for ``nic_tx_occupancy_ns`` plus the
        payload serialization (this bounds message rate and bandwidth);
        the remaining per-WR processing latency is pipelined and charged
        without holding the engine.
        """
        yield from _tx_engine(self.fabric, self.local, nbytes)

    def _remote_tx(self, nbytes: int) -> Generator[Event, Any, None]:
        """Pass a response WR through the remote TX engine."""
        yield from _tx_engine(self.fabric, self.remote, nbytes)

    # -- one-sided verbs ------------------------------------------------------
    def write(
        self, rkey: int, offset: int, data: bytes | bytearray | memoryview
    ) -> Generator[Event, Any, WorkCompletion]:
        """One-sided RDMA WRITE; completes when the ACK returns.

        On completion the payload is *visible* at the target but NOT
        durable (DDIO lands it in the LLC) — the central hazard of §3.
        """
        env = self.local.env
        t = self.fabric.timing
        self._check_usable()
        if self.fabric.injector is not None:
            yield from self._inject("qp.write")
        self.fabric.check_target(self.remote)
        mr = self.remote.pd.lookup(rkey)
        data = bytes(data)
        addr = mr.check(offset, len(data), write=True)
        wr_id = next_wr_id()
        self._count(Opcode.WRITE)

        yield from self._tx(len(data))
        apply_at = env.now + t.propagation_ns + t.dma_ns
        fl = self.fabric.register_inflight(self.remote, addr, data, apply_at)
        yield env.timeout(t.propagation_ns + t.dma_ns)
        if not self.fabric.apply_inflight(fl):
            raise QPError(
                f"WRITE to {self.remote.name} flushed (target down)",
                code="target_down",
            )
        yield env.timeout(t.propagation_ns + t.nic_rx_ns)
        return WorkCompletion(wr_id, Opcode.WRITE, completed_at=env.now)

    def write_many(
        self, writes: "list[tuple[int, int, bytes | bytearray | memoryview]]"
    ) -> Generator[Event, Any, WorkCompletion]:
        """Doorbell-batched one-sided WRITEs with selective signaling.

        ``writes`` is a list of ``(rkey, offset, data)`` work requests
        posted as one chain: a single MMIO doorbell rings the NIC, the
        WQEs are fetched in one go, and only the *last* WR is signaled —
        so the per-WR initiator latency (``nic_tx_ns``) and the
        completion path (ACK propagation + ``nic_rx_ns``) are paid once
        per batch instead of once per WRITE. Each WR still occupies the
        TX engine for its serialization time (bandwidth is conserved)
        and every payload is tracked in-flight for crash tearing,
        exactly like :meth:`write`.

        Completes when the final WR's ACK returns. A batch of one is
        timing-identical to a plain :meth:`write`.
        """
        env = self.local.env
        t = self.fabric.timing
        self._check_usable()
        if not writes:
            raise QPError("write_many needs at least one work request")
        if self.fabric.injector is not None:
            yield from self._inject("qp.write_many")
        self.fabric.check_target(self.remote)
        # Validate the whole chain before posting anything: a doorbell
        # batch is all-or-nothing at the WQE level.
        pinned = []
        for rkey, offset, data in writes:
            mr = self.remote.pd.lookup(rkey)
            data = bytes(data)
            pinned.append((mr.check(offset, len(data), write=True), data))
        wr_id = next_wr_id()
        for _ in writes:
            self._count(Opcode.WRITE)
        self.stats["doorbell_batches"] = self.stats.get("doorbell_batches", 0) + 1

        # TX engine: serialization per WR; the doorbell/WQE-fetch
        # latency is charged on the first WR only, later WRs pay the
        # (much smaller) per-WQE decode cost.
        req = yield from self.local.tx.acquire()
        try:
            for i, (_addr, data) in enumerate(pinned):
                per_wr = t.nic_tx_occupancy_ns if i == 0 else t.doorbell_wr_ns
                jitter = self.fabric.jitter() if i == 0 else 0.0
                yield env.timeout(per_wr + t.serialize_ns(len(data)) + jitter)
        finally:
            self.local.tx.release(req)
        pipelined = t.nic_tx_ns - t.nic_tx_occupancy_ns
        if pipelined > 0:
            yield env.timeout(pipelined)

        apply_at = env.now + t.propagation_ns + t.dma_ns
        inflight = [
            self.fabric.register_inflight(self.remote, addr, data, apply_at)
            for addr, data in pinned
        ]
        yield env.timeout(t.propagation_ns + t.dma_ns)
        for fl in inflight:
            if not self.fabric.apply_inflight(fl):
                raise QPError(
                    f"doorbell WRITE to {self.remote.name} flushed (target down)",
                    code="target_down",
                )
        # Selective signaling: one ACK/CQE for the whole chain.
        yield env.timeout(t.propagation_ns + t.nic_rx_ns)
        return WorkCompletion(wr_id, Opcode.WRITE, completed_at=env.now)

    def read(
        self, rkey: int, offset: int, length: int
    ) -> Generator[Event, Any, bytes]:
        """One-sided RDMA READ; returns the bytes (visible image)."""
        env = self.local.env
        t = self.fabric.timing
        self._check_usable()
        if self.fabric.injector is not None:
            yield from self._inject("qp.read")
        self.fabric.check_target(self.remote)
        mr = self.remote.pd.lookup(rkey)
        addr = mr.check(offset, length, write=False)
        self._count(Opcode.READ)

        yield from self._tx(0)  # request header only
        yield env.timeout(t.propagation_ns + t.dma_ns)
        self.fabric.check_target(self.remote)
        # Target NIC snapshots memory now, then streams the response.
        data = mr.device.read(addr, length)
        yield from self._remote_tx(length)
        yield env.timeout(t.propagation_ns + t.nic_rx_ns)
        return data

    def cas(
        self, rkey: int, offset: int, expected: bytes, desired: bytes
    ) -> Generator[Event, Any, bytes]:
        """8-byte compare-and-swap at the target; returns the old value."""
        if len(expected) != 8 or len(desired) != 8:
            raise QPError("CAS operands must be 8 bytes")
        env = self.local.env
        t = self.fabric.timing
        self._check_usable()
        if self.fabric.injector is not None:
            yield from self._inject("qp.cas")
        self.fabric.check_target(self.remote)
        mr = self.remote.pd.lookup(rkey)
        addr = mr.check(offset, 8, write=True)
        self._count(Opcode.CAS)

        yield from self._tx(16)
        yield env.timeout(t.propagation_ns + t.dma_ns + t.atomic_extra_ns)
        self.fabric.check_target(self.remote)
        old = mr.device.read(addr, 8)
        if old == expected:
            mr.device.write_atomic64(addr, desired)
        yield env.timeout(t.propagation_ns + t.nic_rx_ns)
        return old

    def faa(
        self, rkey: int, offset: int, delta: int
    ) -> Generator[Event, Any, int]:
        """8-byte fetch-and-add; returns the prior value."""
        env = self.local.env
        t = self.fabric.timing
        self._check_usable()
        if self.fabric.injector is not None:
            yield from self._inject("qp.faa")
        self.fabric.check_target(self.remote)
        mr = self.remote.pd.lookup(rkey)
        addr = mr.check(offset, 8, write=True)
        self._count(Opcode.FAA)

        yield from self._tx(16)
        yield env.timeout(t.propagation_ns + t.dma_ns + t.atomic_extra_ns)
        self.fabric.check_target(self.remote)
        old = int.from_bytes(mr.device.read(addr, 8), "little")
        new = (old + delta) & 0xFFFFFFFFFFFFFFFF
        mr.device.write_atomic64(addr, new.to_bytes(8, "little"))
        yield env.timeout(t.propagation_ns + t.nic_rx_ns)
        return old

    # -- two-sided verbs ----------------------------------------------------------
    def send(
        self,
        payload: Any,
        wire_bytes: int,
        *,
        imm: Optional[int] = None,
        in_reply_to: Optional[int] = None,
    ) -> Generator[Event, Any, int]:
        """SEND a message; returns its req_id once delivered to the
        target's receive queue."""
        env = self.local.env
        t = self.fabric.timing
        self._check_usable()
        if self.fabric.injector is not None:
            yield from self._inject("qp.send")
        self.fabric.check_target(self.remote)
        self._count(Opcode.SEND)

        yield from self._tx(wire_bytes)
        yield env.timeout(t.propagation_ns + t.nic_rx_ns + t.two_sided_rx_cost(wire_bytes))
        self.fabric.check_target(self.remote)
        msg = Message(
            Opcode.SEND,
            payload,
            wire_bytes,
            imm=imm,
            reply_to=self.peer,
            in_reply_to=in_reply_to,
            arrived_at=env.now,
        )
        self.remote.srq.put(msg)
        return msg.req_id

    def write_with_imm(
        self,
        rkey: int,
        offset: int,
        data: bytes | bytearray | memoryview,
        imm: int,
        payload: Any = None,
    ) -> Generator[Event, Any, WorkCompletion]:
        """RDMA WRITE_WITH_IMM: data lands like a WRITE *and* the target
        application is notified immediately with ``imm``."""
        env = self.local.env
        t = self.fabric.timing
        self._check_usable()
        if self.fabric.injector is not None:
            yield from self._inject("qp.write_imm")
        self.fabric.check_target(self.remote)
        mr = self.remote.pd.lookup(rkey)
        data = bytes(data)
        addr = mr.check(offset, len(data), write=True)
        wr_id = next_wr_id()
        self._count(Opcode.WRITE_WITH_IMM)

        yield from self._tx(len(data))
        apply_at = env.now + t.propagation_ns + t.dma_ns
        fl = self.fabric.register_inflight(self.remote, addr, data, apply_at)
        yield env.timeout(t.propagation_ns + t.dma_ns + t.two_sided_rx_ns)  # imm notification only; data went one-sided
        if not self.fabric.apply_inflight(fl):
            raise QPError(
                f"WRITE_WITH_IMM to {self.remote.name} flushed", code="target_down"
            )
        msg = Message(
            Opcode.WRITE_WITH_IMM,
            payload,
            len(data),
            imm=imm,
            reply_to=self.peer,
            arrived_at=env.now,
        )
        self.remote.srq.put(msg)
        yield env.timeout(t.propagation_ns + t.nic_rx_ns)
        return WorkCompletion(wr_id, Opcode.WRITE_WITH_IMM, completed_at=env.now)

    # -- receive helpers --------------------------------------------------------
    def recv_response(self, req_id: int) -> Generator[Event, Any, Message]:
        """Wait for the response to a request this endpoint sent."""
        msg = yield self.local.srq.get(lambda m: m.in_reply_to == req_id)
        return msg

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Endpoint {self.local.name}->{self.remote.name}>"
