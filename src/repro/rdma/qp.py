"""Queue-pair endpoints: the verb API used by clients and servers.

An :class:`Endpoint` is one side of a reliable connection. Its verb
methods are generators designed for ``yield from`` composition inside
simulated processes::

    data = yield from ep.read(rkey, offset, 4096)
    yield from ep.write(rkey, offset, payload)
    rid  = yield from ep.send({"op": "put"}, wire_bytes=64)
    msg  = yield from ep.recv_response(rid)

Timing composition per verb (see :mod:`repro.rdma.latency`):

* ``write``  — TX engine (nic_tx + serialize) → wire (propagation) →
  target DMA (into DDIO/LLC, i.e. *volatile*) → ACK (propagation +
  nic_rx). The payload is tracked in-flight for crash tearing.
* ``read``   — request out → target NIC DMA-reads memory → response
  occupies the *target's* TX engine for the payload → back.
* ``send``   — TX engine → wire → target NIC recv processing
  (``two_sided_rx_ns``) → delivered to the target node's SRQ.
* ``write_with_imm`` — ``write`` whose arrival also consumes a recv WQE
  and delivers an imm-tagged message (the server notices immediately —
  the property IMM-style durability relies on).
* ``cas``/``faa`` — 8-byte target-NIC read-modify-write.

Analytic fast path (see DESIGN.md §11)
--------------------------------------
When the fabric allows it (:meth:`Fabric.fastpath_ok`) and the TX
engine(s) a verb needs are idle, the verb charges its latency in closed
form: the same :class:`FabricTiming` terms and the same ``jitter()``
draws as the event path, coalesced into two scheduled wake-ups (one at
the instant the verb's remote side effect happens — DMA apply, memory
snapshot, SRQ delivery — and one at the ACK) instead of the five-to-nine
events of the fully simulated path. The engine is claimed by bumping
``Node.tx_reserved_until``; the event path honours outstanding
reservations, so mixed executions keep exact FIFO engine semantics. Any
armed injector, QP error state, or busy engine falls back to the full
event simulation mid-verb, which keeps contended timing (and therefore
fig1/fig2 and the crash matrix) bit-identical to the pre-fast-path
simulator.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional

from repro.errors import MemoryAccessError, QPError
from repro.rdma.fabric import Fabric, Node
from repro.rdma.verbs import Message, Opcode, WorkCompletion, next_wr_id
from repro.sim.kernel import Event

__all__ = ["Endpoint"]

# Pre-resolved stats keys (the per-op `.value` attribute lookups on the
# Opcode enum showed up in profiles).
_OP_WRITE = Opcode.WRITE.value
_OP_READ = Opcode.READ.value
_OP_CAS = Opcode.CAS.value
_OP_FAA = Opcode.FAA.value
_OP_SEND = Opcode.SEND.value
_OP_WRITE_IMM = Opcode.WRITE_WITH_IMM.value


def _tx_engine(fabric, node, nbytes: int) -> Generator[Event, Any, None]:
    t = fabric.timing
    env = node.env
    req = yield from node.tx.acquire()
    try:
        # Wait out any analytic fast-path reservation first: the fast
        # path claimed the engine without holding the Resource, so the
        # grant can arrive while the engine is still (logically) busy.
        # Jitter is sampled after the wait, at the time the engine
        # actually starts serving this WR — exactly when the pure event
        # path would have sampled it.
        reserved = node.tx_reserved_until - env.now
        if reserved > 0:
            yield env.timeout(reserved)
        yield env.timeout(
            t.nic_tx_occupancy_ns + t.serialize_ns(nbytes) + fabric.jitter()
        )
    finally:
        node.tx.release(req)
    pipelined = t.nic_tx_ns - t.nic_tx_occupancy_ns
    if pipelined > 0:
        yield env.timeout(pipelined)


class Endpoint:
    """One side of a reliable connection (see module docstring)."""

    __slots__ = ("fabric", "local", "remote", "peer", "stats", "_error", "fastpath_ops")

    def __init__(self, fabric: Fabric, local: Node, remote: Node) -> None:
        self.fabric = fabric
        self.local = local
        self.remote = remote
        #: The opposite endpoint (set by Fabric.connect).
        self.peer: Optional["Endpoint"] = None
        #: Per-opcode counters.
        self.stats: dict[str, int] = {}
        #: Verbs this endpoint completed via the analytic fast path.
        self.fastpath_ops = 0
        #: True while the QP sits in the error state (after an injected
        #: qp_error / completion_drop fault): every verb fails until
        #: :meth:`reset` re-establishes the connection.
        self._error = False

    # -- QP state (fault injection / resilience) ----------------------------
    @property
    def in_error(self) -> bool:
        return self._error

    def reset(self) -> None:
        """Re-establish the connection: both directions leave the error
        state (models tearing down the QP pair and reconnecting)."""
        self._error = False
        if self.peer is not None:
            self.peer._error = False

    def _check_usable(self) -> None:
        if self._error:
            raise QPError(
                f"QP {self.local.name}->{self.remote.name} is in the error state",
                code="qp_error",
            )

    def _inject(self, site: str) -> Generator[Event, Any, None]:
        """Fault-injection point at the head of every verb. Only called
        when an injector is armed; an empty plan yields nothing, so
        timings are untouched."""
        inj = self.fabric.injector
        act = inj.fire(site, partition=inj.pop_context_partition())
        if act is None:
            return
        env = self.local.env
        if act.kind == "completion_delay":
            yield env.timeout(act.delay_ns)
        elif act.kind == "qp_error":
            self._error = True
            raise QPError(
                f"QP {self.local.name}->{self.remote.name} transitioned to "
                f"error state (injected: {act.rule})",
                code="qp_error",
            )
        elif act.kind == "completion_drop":
            # The WR is lost; the initiator spends the detection time in
            # transport retries before the QP gives up and errors out.
            if act.delay_ns > 0:
                yield env.timeout(act.delay_ns)
            self._error = True
            raise QPError(
                f"completion lost on {self.local.name}->{self.remote.name} "
                f"(injected: {act.rule})",
                code="completion_lost",
            )

    # -- internals ---------------------------------------------------------
    def _bump(self, key: str) -> None:
        stats = self.stats
        stats[key] = stats.get(key, 0) + 1

    def _count(self, opcode: Opcode) -> None:
        self._bump(opcode.value)

    def _tx(self, nbytes: int) -> Generator[Event, Any, None]:
        """Pass one WR through the local TX engine.

        The engine is *occupied* for ``nic_tx_occupancy_ns`` plus the
        payload serialization (this bounds message rate and bandwidth);
        the remaining per-WR processing latency is pipelined and charged
        without holding the engine.
        """
        yield from _tx_engine(self.fabric, self.local, nbytes)

    def _remote_tx(self, nbytes: int) -> Generator[Event, Any, None]:
        """Pass a response WR through the remote TX engine."""
        yield from _tx_engine(self.fabric, self.remote, nbytes)

    def _tx_idle(self, node: Node) -> bool:
        """True when ``node``'s TX engine can be claimed analytically:
        nobody holds or awaits the Resource and no fast-path reservation
        is outstanding."""
        tx = node.tx
        return (
            not tx._users
            and not tx._waiting
            and node.tx_reserved_until <= node.env.now
        )

    def _fast_done(self) -> None:
        self.fastpath_ops += 1
        self.fabric.fastpath_ops += 1

    # -- one-sided verbs ------------------------------------------------------
    def write(
        self, rkey: int, offset: int, data: bytes | bytearray | memoryview
    ) -> Generator[Event, Any, WorkCompletion]:
        """One-sided RDMA WRITE; completes when the ACK returns.

        On completion the payload is *visible* at the target but NOT
        durable (DDIO lands it in the LLC) — the central hazard of §3.
        """
        env = self.local.env
        fabric = self.fabric
        t = fabric.timing
        self._check_usable()
        if fabric.injector is not None:
            yield from self._inject("qp.write")
        fabric.check_target(self.remote)
        mr = self.remote.pd.lookup(rkey)
        data = bytes(data)
        addr = mr.check(offset, len(data), write=True)
        wr_id = next_wr_id()
        self._bump(_OP_WRITE)

        fast = fabric.fastpath and fabric.injector is None
        if fast and self._tx_idle(self.local):
            # Analytic fast path: identical cost terms, two wake-ups.
            # Absolute times accumulate in the event path's exact float
            # association order, so the result is bit-identical.
            t_done = env.now + (
                t.nic_tx_occupancy_ns + t.serialize_ns(len(data)) + fabric.jitter()
            )
            self.local.tx_reserved_until = t_done
            pipelined = t.nic_tx_ns - t.nic_tx_occupancy_ns
            if pipelined > 0:
                t_done = t_done + pipelined
            fl = fabric.register_inflight(
                self.remote, addr, data,
                apply_at=t_done + t.propagation_ns + t.dma_ns,
                t_start=t_done,
            )
            bat = fabric.batcher
            if bat is None:
                yield env.timeout_at(t_done + (t.propagation_ns + t.dma_ns))
            else:
                yield bat.wait_until(t_done + (t.propagation_ns + t.dma_ns))
            if not fabric.apply_inflight(fl):
                raise QPError(
                    f"WRITE to {self.remote.name} flushed (target down)",
                    code="target_down",
                )
            if bat is None:
                yield env.timeout(t.propagation_ns + t.nic_rx_ns)
            else:
                yield bat.wait_until(env.now + (t.propagation_ns + t.nic_rx_ns))
            self._fast_done()
            return WorkCompletion(wr_id, Opcode.WRITE, completed_at=env.now)
        if fast:
            fabric.fallback_ops += 1

        yield from self._tx(len(data))
        apply_at = env.now + t.propagation_ns + t.dma_ns
        fl = fabric.register_inflight(self.remote, addr, data, apply_at)
        yield env.timeout(t.propagation_ns + t.dma_ns)
        if not fabric.apply_inflight(fl):
            raise QPError(
                f"WRITE to {self.remote.name} flushed (target down)",
                code="target_down",
            )
        yield env.timeout(t.propagation_ns + t.nic_rx_ns)
        return WorkCompletion(wr_id, Opcode.WRITE, completed_at=env.now)

    def write_async(self, cq, rkey: int, offset: int, data, wr_id: int) -> bool:
        """Analytic fast path for a *posted* WRITE: the completion lands
        on ``cq`` via two scheduled callback events — no driver process,
        no generator resumes.

        Returns False (with no side effects) when the fast path is
        ineligible or validation would raise; the caller then falls back
        to the generator driver, which reproduces event-path behaviour
        (including the exception captured in an ``ok=False`` CQE).
        """
        fabric = self.fabric
        if (
            self._error
            or not fabric.fastpath
            or fabric.injector is not None
            or not self._tx_idle(self.local)
            or not self.remote.alive
        ):
            return False
        try:
            mr = self.remote.pd.lookup(rkey)
            payload = bytes(data)
            addr = mr.check(offset, len(payload), write=True)
        except (MemoryAccessError, TypeError):
            # bad rkey/range (ProtectionError et al.) or an un-bytes-able
            # payload: fall back to the slow path, which raises properly
            return False
        env = self.local.env
        t = fabric.timing
        self._bump(_OP_WRITE)
        t_done = env.now + (
            t.nic_tx_occupancy_ns + t.serialize_ns(len(payload)) + fabric.jitter()
        )
        self.local.tx_reserved_until = t_done
        pipelined = t.nic_tx_ns - t.nic_tx_occupancy_ns
        if pipelined > 0:
            t_done = t_done + pipelined
        fl = fabric.register_inflight(
            self.remote, addr, payload,
            apply_at=t_done + t.propagation_ns + t.dma_ns,
            t_start=t_done,
        )
        ack_delay = t.propagation_ns + t.nic_rx_ns

        def _at_ack(_ev: Event) -> None:
            self._fast_done()
            cq._push(WorkCompletion(wr_id, Opcode.WRITE, completed_at=env.now))

        def _at_apply(_ev: Event) -> None:
            if not fabric.apply_inflight(fl):
                cq._push(
                    WorkCompletion(
                        wr_id, Opcode.WRITE, ok=False,
                        result=QPError(
                            f"WRITE to {self.remote.name} flushed (target down)",
                            code="target_down",
                        ),
                        completed_at=env.now,
                    )
                )
                return
            ack = Event(env)
            ack._value = None
            ack.callbacks.append(_at_ack)
            env.schedule_at(ack, env.now + ack_delay)

        apply_ev = Event(env)
        apply_ev._value = None
        apply_ev.callbacks.append(_at_apply)
        env.schedule_at(apply_ev, t_done + (t.propagation_ns + t.dma_ns))
        return True

    def write_many(
        self, writes: "list[tuple[int, int, bytes | bytearray | memoryview]]"
    ) -> Generator[Event, Any, WorkCompletion]:
        """Doorbell-batched one-sided WRITEs with selective signaling.

        ``writes`` is a list of ``(rkey, offset, data)`` work requests
        posted as one chain: a single MMIO doorbell rings the NIC, the
        WQEs are fetched in one go, and only the *last* WR is signaled —
        so the per-WR initiator latency (``nic_tx_ns``) and the
        completion path (ACK propagation + ``nic_rx_ns``) are paid once
        per batch instead of once per WRITE. Each WR still occupies the
        TX engine for its serialization time (bandwidth is conserved)
        and every payload is tracked in-flight for crash tearing,
        exactly like :meth:`write`.

        Completes when the final WR's ACK returns. A batch of one is
        timing-identical to a plain :meth:`write`.
        """
        env = self.local.env
        fabric = self.fabric
        t = fabric.timing
        self._check_usable()
        if not writes:
            raise QPError("write_many needs at least one work request")
        if fabric.injector is not None:
            yield from self._inject("qp.write_many")
        fabric.check_target(self.remote)
        # Validate the whole chain before posting anything: a doorbell
        # batch is all-or-nothing at the WQE level.
        pinned = []
        for rkey, offset, data in writes:
            mr = self.remote.pd.lookup(rkey)
            data = bytes(data)
            pinned.append((mr.check(offset, len(data), write=True), data))
        wr_id = next_wr_id()
        for _ in writes:
            self._bump(_OP_WRITE)
        self._bump("doorbell_batches")

        fast = fabric.fastpath and fabric.injector is None
        if fast and self._tx_idle(self.local):
            # One engine claim covers the chain; the doorbell/WQE-fetch
            # latency and jitter are charged on the first WR only, like
            # the event path below. Per-WR times accumulate stepwise so
            # the floats match the event path's sequential timeouts.
            t_done = env.now
            for i, (_addr, data) in enumerate(pinned):
                per_wr = t.nic_tx_occupancy_ns if i == 0 else t.doorbell_wr_ns
                jitter = fabric.jitter() if i == 0 else 0.0
                t_done = t_done + (per_wr + t.serialize_ns(len(data)) + jitter)
            self.local.tx_reserved_until = t_done
            pipelined = t.nic_tx_ns - t.nic_tx_occupancy_ns
            if pipelined > 0:
                t_done = t_done + pipelined
            apply_at = t_done + t.propagation_ns + t.dma_ns
            inflight = [
                fabric.register_inflight(
                    self.remote, addr, data, apply_at=apply_at, t_start=t_done
                )
                for addr, data in pinned
            ]
            yield env.timeout_at(t_done + (t.propagation_ns + t.dma_ns))
            for fl in inflight:
                if not fabric.apply_inflight(fl):
                    raise QPError(
                        f"doorbell WRITE to {self.remote.name} flushed (target down)",
                        code="target_down",
                    )
            yield env.timeout(t.propagation_ns + t.nic_rx_ns)
            self._fast_done()
            return WorkCompletion(wr_id, Opcode.WRITE, completed_at=env.now)
        if fast:
            fabric.fallback_ops += 1

        # TX engine: serialization per WR; the doorbell/WQE-fetch
        # latency is charged on the first WR only, later WRs pay the
        # (much smaller) per-WQE decode cost.
        req = yield from self.local.tx.acquire()
        try:
            reserved = self.local.tx_reserved_until - env.now
            if reserved > 0:
                yield env.timeout(reserved)
            for i, (_addr, data) in enumerate(pinned):
                per_wr = t.nic_tx_occupancy_ns if i == 0 else t.doorbell_wr_ns
                jitter = fabric.jitter() if i == 0 else 0.0
                yield env.timeout(per_wr + t.serialize_ns(len(data)) + jitter)
        finally:
            self.local.tx.release(req)
        pipelined = t.nic_tx_ns - t.nic_tx_occupancy_ns
        if pipelined > 0:
            yield env.timeout(pipelined)

        apply_at = env.now + t.propagation_ns + t.dma_ns
        inflight = [
            fabric.register_inflight(self.remote, addr, data, apply_at)
            for addr, data in pinned
        ]
        yield env.timeout(t.propagation_ns + t.dma_ns)
        for fl in inflight:
            if not fabric.apply_inflight(fl):
                raise QPError(
                    f"doorbell WRITE to {self.remote.name} flushed (target down)",
                    code="target_down",
                )
        # Selective signaling: one ACK/CQE for the whole chain.
        yield env.timeout(t.propagation_ns + t.nic_rx_ns)
        return WorkCompletion(wr_id, Opcode.WRITE, completed_at=env.now)

    def read(
        self, rkey: int, offset: int, length: int
    ) -> Generator[Event, Any, bytes]:
        """One-sided RDMA READ; returns the bytes (visible image)."""
        env = self.local.env
        fabric = self.fabric
        t = fabric.timing
        self._check_usable()
        if fabric.injector is not None:
            yield from self._inject("qp.read")
        fabric.check_target(self.remote)
        mr = self.remote.pd.lookup(rkey)
        addr = mr.check(offset, length, write=False)
        self._bump(_OP_READ)

        pipelined = t.nic_tx_ns - t.nic_tx_occupancy_ns
        fast = fabric.fastpath and fabric.injector is None
        if fast and self._tx_idle(self.local):
            # Request leg: header-only WR through the local engine.
            t_req = env.now + (
                t.nic_tx_occupancy_ns + t.serialize_ns(0) + fabric.jitter()
            )
            self.local.tx_reserved_until = t_req
            if pipelined > 0:
                t_req = t_req + pipelined
            bat = fabric.batcher
            if bat is None:
                yield env.timeout_at(t_req + (t.propagation_ns + t.dma_ns))
            else:
                yield bat.wait_until(t_req + (t.propagation_ns + t.dma_ns))
            fabric.check_target(self.remote)
            # Target NIC snapshots memory now, then streams the response.
            data = mr.device.read(addr, length)
            # Response leg: claimed at arrival time (never in advance, so
            # FIFO order on the remote engine is preserved); a busy
            # engine falls back to the event path for the remainder.
            if self._tx_idle(self.remote):
                t_resp = env.now + (
                    t.nic_tx_occupancy_ns + t.serialize_ns(length) + fabric.jitter()
                )
                self.remote.tx_reserved_until = t_resp
                if pipelined > 0:
                    t_resp = t_resp + pipelined
                if bat is None:
                    yield env.timeout_at(t_resp + (t.propagation_ns + t.nic_rx_ns))
                else:
                    yield bat.wait_until(t_resp + (t.propagation_ns + t.nic_rx_ns))
                self._fast_done()
                return data
            fabric.fallback_ops += 1
            yield from self._remote_tx(length)
            yield env.timeout(t.propagation_ns + t.nic_rx_ns)
            return data
        if fast:
            fabric.fallback_ops += 1

        yield from self._tx(0)  # request header only
        yield env.timeout(t.propagation_ns + t.dma_ns)
        fabric.check_target(self.remote)
        # Target NIC snapshots memory now, then streams the response.
        data = mr.device.read(addr, length)
        yield from self._remote_tx(length)
        yield env.timeout(t.propagation_ns + t.nic_rx_ns)
        return data

    def cas(
        self, rkey: int, offset: int, expected: bytes, desired: bytes
    ) -> Generator[Event, Any, bytes]:
        """8-byte compare-and-swap at the target; returns the old value."""
        if len(expected) != 8 or len(desired) != 8:
            raise QPError("CAS operands must be 8 bytes")
        env = self.local.env
        fabric = self.fabric
        t = fabric.timing
        self._check_usable()
        if fabric.injector is not None:
            yield from self._inject("qp.cas")
        fabric.check_target(self.remote)
        mr = self.remote.pd.lookup(rkey)
        addr = mr.check(offset, 8, write=True)
        self._bump(_OP_CAS)

        fast = fabric.fastpath and fabric.injector is None
        if fast and self._tx_idle(self.local):
            t_done = env.now + (
                t.nic_tx_occupancy_ns + t.serialize_ns(16) + fabric.jitter()
            )
            self.local.tx_reserved_until = t_done
            pipelined = t.nic_tx_ns - t.nic_tx_occupancy_ns
            if pipelined > 0:
                t_done = t_done + pipelined
            bat = fabric.batcher
            if bat is None:
                yield env.timeout_at(
                    t_done + (t.propagation_ns + t.dma_ns + t.atomic_extra_ns)
                )
            else:
                yield bat.wait_until(
                    t_done + (t.propagation_ns + t.dma_ns + t.atomic_extra_ns)
                )
            fabric.check_target(self.remote)
            old = mr.device.read(addr, 8)
            if old == expected:
                mr.device.write_atomic64(addr, desired)
            if bat is None:
                yield env.timeout(t.propagation_ns + t.nic_rx_ns)
            else:
                yield bat.wait_until(env.now + (t.propagation_ns + t.nic_rx_ns))
            self._fast_done()
            return old
        if fast:
            fabric.fallback_ops += 1

        yield from self._tx(16)
        yield env.timeout(t.propagation_ns + t.dma_ns + t.atomic_extra_ns)
        fabric.check_target(self.remote)
        old = mr.device.read(addr, 8)
        if old == expected:
            mr.device.write_atomic64(addr, desired)
        yield env.timeout(t.propagation_ns + t.nic_rx_ns)
        return old

    def faa(
        self, rkey: int, offset: int, delta: int
    ) -> Generator[Event, Any, int]:
        """8-byte fetch-and-add; returns the prior value."""
        env = self.local.env
        fabric = self.fabric
        t = fabric.timing
        self._check_usable()
        if fabric.injector is not None:
            yield from self._inject("qp.faa")
        fabric.check_target(self.remote)
        mr = self.remote.pd.lookup(rkey)
        addr = mr.check(offset, 8, write=True)
        self._bump(_OP_FAA)

        fast = fabric.fastpath and fabric.injector is None
        if fast and self._tx_idle(self.local):
            t_done = env.now + (
                t.nic_tx_occupancy_ns + t.serialize_ns(16) + fabric.jitter()
            )
            self.local.tx_reserved_until = t_done
            pipelined = t.nic_tx_ns - t.nic_tx_occupancy_ns
            if pipelined > 0:
                t_done = t_done + pipelined
            bat = fabric.batcher
            if bat is None:
                yield env.timeout_at(
                    t_done + (t.propagation_ns + t.dma_ns + t.atomic_extra_ns)
                )
            else:
                yield bat.wait_until(
                    t_done + (t.propagation_ns + t.dma_ns + t.atomic_extra_ns)
                )
            fabric.check_target(self.remote)
            old = int.from_bytes(mr.device.read(addr, 8), "little")
            new = (old + delta) & 0xFFFFFFFFFFFFFFFF
            mr.device.write_atomic64(addr, new.to_bytes(8, "little"))
            if bat is None:
                yield env.timeout(t.propagation_ns + t.nic_rx_ns)
            else:
                yield bat.wait_until(env.now + (t.propagation_ns + t.nic_rx_ns))
            self._fast_done()
            return old
        if fast:
            fabric.fallback_ops += 1

        yield from self._tx(16)
        yield env.timeout(t.propagation_ns + t.dma_ns + t.atomic_extra_ns)
        fabric.check_target(self.remote)
        old = int.from_bytes(mr.device.read(addr, 8), "little")
        new = (old + delta) & 0xFFFFFFFFFFFFFFFF
        mr.device.write_atomic64(addr, new.to_bytes(8, "little"))
        yield env.timeout(t.propagation_ns + t.nic_rx_ns)
        return old

    # -- two-sided verbs ----------------------------------------------------------
    def send(
        self,
        payload: Any,
        wire_bytes: int,
        *,
        imm: Optional[int] = None,
        in_reply_to: Optional[int] = None,
    ) -> Generator[Event, Any, int]:
        """SEND a message; returns its req_id once delivered to the
        target's receive queue."""
        env = self.local.env
        fabric = self.fabric
        t = fabric.timing
        self._check_usable()
        if fabric.injector is not None:
            yield from self._inject("qp.send")
        fabric.check_target(self.remote)
        self._bump(_OP_SEND)

        fast = fabric.fastpath and fabric.injector is None
        if fast and self._tx_idle(self.local):
            t_done = env.now + (
                t.nic_tx_occupancy_ns + t.serialize_ns(wire_bytes) + fabric.jitter()
            )
            self.local.tx_reserved_until = t_done
            pipelined = t.nic_tx_ns - t.nic_tx_occupancy_ns
            if pipelined > 0:
                t_done = t_done + pipelined
            bat = fabric.batcher
            if bat is None:
                yield env.timeout_at(
                    t_done
                    + (t.propagation_ns + t.nic_rx_ns + t.two_sided_rx_cost(wire_bytes))
                )
            else:
                yield bat.wait_until(
                    t_done
                    + (t.propagation_ns + t.nic_rx_ns + t.two_sided_rx_cost(wire_bytes))
                )
            fabric.check_target(self.remote)
            msg = Message(
                Opcode.SEND,
                payload,
                wire_bytes,
                imm=imm,
                reply_to=self.peer,
                in_reply_to=in_reply_to,
                arrived_at=env.now,
            )
            self.remote.srq.put(msg)
            self._fast_done()
            return msg.req_id
        if fast:
            fabric.fallback_ops += 1

        yield from self._tx(wire_bytes)
        yield env.timeout(t.propagation_ns + t.nic_rx_ns + t.two_sided_rx_cost(wire_bytes))
        fabric.check_target(self.remote)
        msg = Message(
            Opcode.SEND,
            payload,
            wire_bytes,
            imm=imm,
            reply_to=self.peer,
            in_reply_to=in_reply_to,
            arrived_at=env.now,
        )
        self.remote.srq.put(msg)
        return msg.req_id

    def write_with_imm(
        self,
        rkey: int,
        offset: int,
        data: bytes | bytearray | memoryview,
        imm: int,
        payload: Any = None,
    ) -> Generator[Event, Any, WorkCompletion]:
        """RDMA WRITE_WITH_IMM: data lands like a WRITE *and* the target
        application is notified immediately with ``imm``."""
        env = self.local.env
        fabric = self.fabric
        t = fabric.timing
        self._check_usable()
        if fabric.injector is not None:
            yield from self._inject("qp.write_imm")
        fabric.check_target(self.remote)
        mr = self.remote.pd.lookup(rkey)
        data = bytes(data)
        addr = mr.check(offset, len(data), write=True)
        wr_id = next_wr_id()
        self._bump(_OP_WRITE_IMM)

        fast = fabric.fastpath and fabric.injector is None
        if fast and self._tx_idle(self.local):
            t_done = env.now + (
                t.nic_tx_occupancy_ns + t.serialize_ns(len(data)) + fabric.jitter()
            )
            self.local.tx_reserved_until = t_done
            pipelined = t.nic_tx_ns - t.nic_tx_occupancy_ns
            if pipelined > 0:
                t_done = t_done + pipelined
            fl = fabric.register_inflight(
                self.remote, addr, data,
                apply_at=t_done + t.propagation_ns + t.dma_ns,
                t_start=t_done,
            )
            # imm notification only; data went one-sided
            yield env.timeout_at(
                t_done + (t.propagation_ns + t.dma_ns + t.two_sided_rx_ns)
            )
            if not fabric.apply_inflight(fl):
                raise QPError(
                    f"WRITE_WITH_IMM to {self.remote.name} flushed", code="target_down"
                )
            msg = Message(
                Opcode.WRITE_WITH_IMM,
                payload,
                len(data),
                imm=imm,
                reply_to=self.peer,
                arrived_at=env.now,
            )
            self.remote.srq.put(msg)
            yield env.timeout(t.propagation_ns + t.nic_rx_ns)
            self._fast_done()
            return WorkCompletion(wr_id, Opcode.WRITE_WITH_IMM, completed_at=env.now)
        if fast:
            fabric.fallback_ops += 1

        yield from self._tx(len(data))
        apply_at = env.now + t.propagation_ns + t.dma_ns
        fl = fabric.register_inflight(self.remote, addr, data, apply_at)
        yield env.timeout(t.propagation_ns + t.dma_ns + t.two_sided_rx_ns)  # imm notification only; data went one-sided
        if not fabric.apply_inflight(fl):
            raise QPError(
                f"WRITE_WITH_IMM to {self.remote.name} flushed", code="target_down"
            )
        msg = Message(
            Opcode.WRITE_WITH_IMM,
            payload,
            len(data),
            imm=imm,
            reply_to=self.peer,
            arrived_at=env.now,
        )
        self.remote.srq.put(msg)
        yield env.timeout(t.propagation_ns + t.nic_rx_ns)
        return WorkCompletion(wr_id, Opcode.WRITE_WITH_IMM, completed_at=env.now)

    # -- receive helpers --------------------------------------------------------
    def recv_response(self, req_id: int) -> Generator[Event, Any, Message]:
        """Wait for the response to a request this endpoint sent."""
        msg = yield self.local.srq.get(lambda m: m.in_reply_to == req_id)
        return msg

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Endpoint {self.local.name}->{self.remote.name}>"
