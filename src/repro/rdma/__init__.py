"""RDMA fabric model: verbs, memory registration, nodes, and RPC."""

from repro.rdma.cq import CompletionQueue, post_read, post_write
from repro.rdma.fabric import Fabric, InflightWrite, Node
from repro.rdma.latency import FabricTiming
from repro.rdma.mr import MemoryRegion, ProtectionDomain
from repro.rdma.qp import Endpoint
from repro.rdma.rpc import RpcClient, RpcFault, RpcServer, rpc_error
from repro.rdma.verbs import Message, Opcode, WorkCompletion

__all__ = [
    "CompletionQueue",
    "Endpoint",
    "Fabric",
    "FabricTiming",
    "InflightWrite",
    "MemoryRegion",
    "Message",
    "Node",
    "Opcode",
    "ProtectionDomain",
    "RpcClient",
    "RpcFault",
    "RpcServer",
    "WorkCompletion",
    "post_read",
    "post_write",
    "rpc_error",
]
