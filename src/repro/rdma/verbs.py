"""Verb/work-request vocabulary shared across the fabric model."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Opcode", "Message", "WorkCompletion", "next_wr_id"]

_wr_counter = itertools.count(1)


def next_wr_id() -> int:
    """Monotonic work-request id (diagnostics and in-flight tracking)."""
    return next(_wr_counter)


class Opcode(enum.Enum):
    """RDMA operation kinds modelled by the fabric."""

    SEND = "send"
    RECV = "recv"
    WRITE = "write"
    WRITE_WITH_IMM = "write_with_imm"
    READ = "read"
    CAS = "cas"
    FAA = "faa"


@dataclass(slots=True)
class Message:
    """A two-sided delivery (SEND or the notification half of
    WRITE_WITH_IMM) as seen by the receiving application.

    ``payload`` is an arbitrary Python object — the simulation models the
    *size* of what crosses the wire explicitly via ``wire_bytes`` rather
    than literally serialising; this keeps handlers readable while the
    timing stays honest.
    """

    opcode: Opcode
    payload: Any
    wire_bytes: int
    imm: Optional[int] = None
    #: Endpoint the receiver can use to reply (the peer's endpoint).
    reply_to: Any = None
    #: Correlation id for RPC request/response matching.
    req_id: int = field(default_factory=next_wr_id)
    #: For responses: the req_id of the request being answered.
    in_reply_to: Optional[int] = None
    #: Simulated arrival time (set by the fabric).
    arrived_at: float = 0.0

    def is_request(self, kind: str) -> bool:
        """True when the payload is an RPC request dict of ``kind``."""
        return isinstance(self.payload, dict) and self.payload.get("op") == kind


@dataclass(slots=True)
class WorkCompletion:
    """Completion record returned to the initiator of a verb."""

    wr_id: int
    opcode: Opcode
    ok: bool = True
    #: READ: bytes fetched. CAS/FAA: prior 8-byte value.
    result: Any = None
    completed_at: float = 0.0
