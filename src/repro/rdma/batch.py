"""Cross-client verb-completion batching (opt-in; see DESIGN.md §15).

With thousands of open-loop clients, most simulator work is completion
wake-ups: every verb's final timer is its own kernel event, so a 1k-client
fan-in schedules and dispatches a thousand near-simultaneous timeouts per
wheel bucket. The :class:`CompletionBatcher` coalesces them: a completion
wait due at time ``t`` wakes at ``ceil(t / bucket_ns) * bucket_ns`` — the
next edge of a fixed time grid aligned with the kernel's wheel buckets —
and **all waits sharing a grid tick are resumed by one kernel event**, in
registration order. This amortizes scheduling across clients the way
PR 5's doorbell batching amortized work requests.

The price is an upward latency quantization of strictly less than
``bucket_ns`` (default 128 ns, one wheel bucket) per batched wait. That
shifts individual completion times, so batching is **default-off** and
armed only by the open-loop load engine
(:meth:`~repro.rdma.fabric.Fabric.enable_completion_batching`); with it
off, every verb takes its usual ``timeout``/``timeout_at`` waits and
fig1/fig2, the crash matrix, and the bench-kernel equivalence gate stay
bit-identical. Determinism is unaffected either way: grid ticks and
registration order are pure functions of simulated execution.
"""

from __future__ import annotations

from math import ceil

from repro.sim.kernel import Environment, Event

__all__ = ["CompletionBatcher"]


class CompletionBatcher:
    """Coalesces completion waits onto a shared time grid.

    One pending kernel event exists per occupied grid tick; its dispatch
    resumes every wait registered for that tick directly (no per-waiter
    event is ever scheduled), so ``events per op`` drops as concurrency
    grows.
    """

    __slots__ = ("env", "bucket_ns", "_inv", "_ticks", "batches", "batched_waits")

    def __init__(self, env: Environment, bucket_ns: float = 128.0) -> None:
        if bucket_ns <= 0:
            raise ValueError(f"bucket_ns must be positive, got {bucket_ns!r}")
        self.env = env
        self.bucket_ns = bucket_ns
        self._inv = 1.0 / bucket_ns
        #: tick number -> waiter events registered for that grid edge.
        #: A tick's presence implies one armed kernel event for it.
        self._ticks: dict[int, list[Event]] = {}
        #: Grid ticks dispatched (each = one kernel event).
        self.batches = 0
        #: Completion waits that went through the batcher.
        self.batched_waits = 0

    def wait_until(self, when: float) -> Event:
        """An event that succeeds at the first grid edge >= ``when``.

        Yield it where a verb would otherwise ``yield env.timeout_at(when)``.
        """
        tick = ceil(when * self._inv)
        waiters = self._ticks.get(tick)
        ev = Event(self.env)
        if waiters is None:
            self._ticks[tick] = [ev]
            self._arm(tick)
        else:
            waiters.append(ev)
        self.batched_waits += 1
        return ev

    def _arm(self, tick: int) -> None:
        env = self.env
        fire = Event(env)
        fire._ok = True
        fire._value = tick
        fire.callbacks.append(self._fire)
        env.schedule_at(fire, tick * self.bucket_ns)

    def _fire(self, fire_ev: Event) -> None:
        """Dispatch one grid tick: resume every registered waiter in
        registration order, without scheduling per-waiter events."""
        self.batches += 1
        for ev in self._ticks.pop(fire_ev._value):
            callbacks = ev.callbacks
            if callbacks is None:
                continue  # defensive: already resolved elsewhere
            ev._ok = True
            ev._value = None
            ev.callbacks = None
            waiter = ev._waiter
            if waiter is not None:
                ev._waiter = None
                waiter._started = True
                waiter._target = None
                waiter._step(None, throw=False)
            for callback in callbacks:
                callback(ev)

    @property
    def pending(self) -> int:
        """Waits currently registered and not yet resumed."""
        return sum(len(w) for w in self._ticks.values())
