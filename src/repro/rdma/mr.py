"""Memory registration: regions and rkeys.

A :class:`MemoryRegion` pins a byte range of a node's NVM (or DRAM)
device and grants remote access under an *rkey*. Clients address remote
memory as ``(rkey, offset)`` — offsets are region-relative, exactly as
the stores in this library hand out "offset addresses" to clients.

Registration is per-node (:class:`ProtectionDomain` lives on the node in
:mod:`repro.rdma.fabric`); deregistering a region invalidates its rkey,
which the log-cleaning flow uses when retiring an old data pool.
"""

from __future__ import annotations

import itertools

from repro.errors import ProtectionError
from repro.nvm.device import NVMDevice

__all__ = ["MemoryRegion", "ProtectionDomain"]

_rkey_counter = itertools.count(0x1000)


class MemoryRegion:
    """A registered, remotely accessible window onto a device."""

    __slots__ = ("rkey", "device", "base", "size", "writable", "name", "valid")

    def __init__(
        self,
        device: NVMDevice,
        base: int,
        size: int,
        *,
        writable: bool = True,
        name: str = "",
    ) -> None:
        if base < 0 or size <= 0 or base + size > device.size:
            raise ProtectionError(
                f"region [{base}, {base + size}) outside device of size {device.size}"
            )
        self.rkey = next(_rkey_counter)
        self.device = device
        self.base = base
        self.size = size
        self.writable = writable
        self.name = name or f"mr{self.rkey:#x}"
        self.valid = True

    def check(self, offset: int, length: int, *, write: bool) -> int:
        """Validate an access; returns the absolute device address."""
        if not self.valid:
            raise ProtectionError(f"{self.name}: rkey {self.rkey:#x} invalidated")
        if write and not self.writable:
            raise ProtectionError(f"{self.name}: region is read-only")
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ProtectionError(
                f"{self.name}: access [{offset}, {offset + length}) outside "
                f"region of size {self.size}"
            )
        return self.base + offset

    def invalidate(self) -> None:
        """Deregister: subsequent remote access raises ProtectionError."""
        self.valid = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MemoryRegion {self.name} rkey={self.rkey:#x} "
            f"base={self.base} size={self.size} "
            f"{'rw' if self.writable else 'ro'}{'' if self.valid else ' INVALID'}>"
        )


class ProtectionDomain:
    """Registry of a node's memory regions, keyed by rkey."""

    __slots__ = ("_regions",)

    def __init__(self) -> None:
        self._regions: dict[int, MemoryRegion] = {}

    def register(
        self,
        device: NVMDevice,
        base: int,
        size: int,
        *,
        writable: bool = True,
        name: str = "",
    ) -> MemoryRegion:
        mr = MemoryRegion(device, base, size, writable=writable, name=name)
        self._regions[mr.rkey] = mr
        return mr

    def lookup(self, rkey: int) -> MemoryRegion:
        mr = self._regions.get(rkey)
        if mr is None or not mr.valid:
            raise ProtectionError(f"unknown or invalidated rkey {rkey:#x}")
        return mr

    def deregister(self, mr: MemoryRegion) -> None:
        mr.invalidate()
        self._regions.pop(mr.rkey, None)

    def __len__(self) -> int:
        return len(self._regions)
