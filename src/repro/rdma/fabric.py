"""Fabric topology: nodes, connections, and crash orchestration.

A :class:`Node` is one machine: a NIC TX engine (bandwidth/message-rate
bound), a CPU resource (request-processing threads), an optional NVM
device, a protection domain of registered memory, and a shared receive
queue for two-sided deliveries.

The :class:`Fabric` wires nodes together, owns the
:class:`~repro.rdma.latency.FabricTiming` model, and tracks **in-flight
one-sided writes** so a crash can apply a partial, reordered subset of
a transfer's cachelines — the exact failure the paper's CRC/version-list
machinery exists to detect (data "in NIC caches, PCIe buffers, or CPU
caches, rather than in non-volatile memory", §3).
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.errors import QPError, SimulationError
from repro.mem.buffer import CACHELINE
from repro.nvm.device import NVMDevice
from repro.rdma.latency import FabricTiming
from repro.rdma.mr import MemoryRegion, ProtectionDomain
from repro.sim.kernel import Environment
from repro.sim.resources import FilterStore, Resource

__all__ = ["Node", "InflightWrite", "Fabric"]


class Node:
    """One machine on the fabric."""

    __slots__ = (
        "env", "name", "device", "alive", "tx", "cpu", "pd", "srq", "ddio",
        "tx_reserved_until",
    )

    def __init__(
        self,
        env: Environment,
        name: str,
        device: Optional[NVMDevice] = None,
        cores: int = 1,
        ddio: bool = True,
    ) -> None:
        self.env = env
        self.name = name
        self.device = device
        self.alive = True
        #: Intel DDIO: inbound DMA lands in the LLC (volatile). With
        #: DDIO disabled, inbound RDMA writes go through the memory
        #: controller into the ADR power-fail domain — durable on
        #: arrival (the configuration study of Kashyap et al. the
        #: paper's §7 discusses).
        self.ddio = ddio
        #: NIC transmit engine: serialization occupancy bounds bandwidth.
        self.tx = Resource(env, capacity=1)
        #: Analytic fast-path reservation on the TX engine: the engine is
        #: busy (without a simulated occupancy event) until this time.
        #: The event path honours it by waiting out the remainder after
        #: acquiring ``tx``, so mixed fast/event executions keep exact
        #: FIFO engine semantics.
        self.tx_reserved_until = 0.0
        #: Request-processing threads (RPC handlers contend here).
        self.cpu = Resource(env, capacity=cores)
        self.pd = ProtectionDomain()
        #: Two-sided deliveries (SRQ-style, shared across connections).
        self.srq = FilterStore(env)

    def register_memory(
        self, base: int, size: int, *, writable: bool = True, name: str = ""
    ) -> MemoryRegion:
        """Register a window of this node's device for remote access."""
        if self.device is None:
            raise SimulationError(f"node {self.name} has no memory device")
        return self.pd.register(
            self.device, base, size, writable=writable, name=name or f"{self.name}.mr"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Node {self.name}{'' if self.alive else ' DOWN'}>"


class InflightWrite:
    """A one-sided WRITE whose payload is between the initiator NIC and
    the target's memory."""

    __slots__ = ("uid", "target", "addr", "data", "t_start", "t_apply", "state")

    _uids = itertools.count(1)

    def __init__(
        self, target: Node, addr: int, data: bytes, t_start: float, t_apply: float
    ) -> None:
        self.uid = next(self._uids)
        self.target = target
        self.addr = addr
        self.data = data
        self.t_start = t_start
        self.t_apply = t_apply
        #: "flying" -> "applied" (made it) | "torn" (crashed mid-flight)
        self.state = "flying"

    def progress(self, now: float) -> float:
        """Fraction of the transfer elapsed at time ``now`` in [0, 1]."""
        span = self.t_apply - self.t_start
        if span <= 0:
            return 1.0
        return min(1.0, max(0.0, (now - self.t_start) / span))


class Fabric:
    """The switch + links connecting all nodes."""

    def __init__(
        self,
        env: Environment,
        timing: FabricTiming | None = None,
        jitter_ns: float = 60.0,
        jitter_seed: int = 0x5EED,
    ) -> None:
        self.env = env
        self.timing = timing or FabricTiming()
        self.nodes: list[Node] = []
        self._inflight: dict[int, InflightWrite] = {}
        #: Mean of the exponential per-WR latency jitter (0 disables).
        #: Models queueing/arbitration noise so tail percentiles are
        #: meaningful; deterministic given ``jitter_seed``.
        self.jitter_ns = jitter_ns
        self._jitter_rng = np.random.default_rng(jitter_seed)
        # Pre-drawn *standard* exponential samples, scaled by jitter_ns
        # at use time. Batch draws consume the generator's bit stream
        # exactly like repeated single draws, so the jitter sequence is
        # identical to the seed implementation — including under mid-run
        # jitter_ns changes (scale applies per call, not per draw).
        self._jitter_buf: np.ndarray = np.empty(0)
        self._jitter_idx = 0
        #: Armed fault injector (:mod:`repro.faults`), or None. Verb
        #: hooks check this one attribute, so an unarmed fabric costs
        #: nothing (the :mod:`repro.sim.trace` pattern).
        self.injector = None
        #: Allow the analytic fast path for uncontended verbs. Cleared by
        #: crash/chaos harnesses (and ignored while an injector is armed)
        #: so RNG-order-sensitive experiments stay on the event path.
        self.fastpath = True
        #: Verbs completed via the analytic fast path / forced onto the
        #: full event path while the fast path was enabled.
        self.fastpath_ops = 0
        self.fallback_ops = 0
        #: Cross-client completion batcher
        #: (:class:`repro.rdma.batch.CompletionBatcher`), or None. When
        #: armed, fast-path verbs coalesce their completion wake-ups onto
        #: a shared time grid — one kernel event resumes every client
        #: whose completion lands in the same grid tick, at the price of
        #: an upward latency quantization < ``bucket_ns``. Default-off;
        #: only the open-loop load engine arms it.
        self.batcher = None

    def jitter(self) -> float:
        """One sample of per-work-request latency noise."""
        if self.jitter_ns <= 0:
            return 0.0
        i = self._jitter_idx
        buf = self._jitter_buf
        if i >= len(buf):
            buf = self._jitter_buf = self._jitter_rng.standard_exponential(1024)
            i = 0
        self._jitter_idx = i + 1
        return float(buf[i]) * self.jitter_ns

    def fastpath_ok(self) -> bool:
        """True when verbs may attempt the analytic fast path at all
        (per-verb engine-idleness checks still apply)."""
        return self.fastpath and self.injector is None

    def enable_completion_batching(self, bucket_ns: float = 128.0):
        """Arm cross-client completion batching (idempotent); returns the
        batcher so callers can read its counters."""
        if self.batcher is None:
            from repro.rdma.batch import CompletionBatcher

            self.batcher = CompletionBatcher(self.env, bucket_ns)
        return self.batcher

    # -- topology ------------------------------------------------------------
    def create_node(
        self,
        name: str,
        device: Optional[NVMDevice] = None,
        cores: int = 1,
        ddio: bool = True,
    ) -> Node:
        node = Node(self.env, name, device=device, cores=cores, ddio=ddio)
        self.nodes.append(node)
        return node

    def connect(self, initiator: Node, target: Node) -> "Endpoint":
        """Create a reliable connection; returns the initiator-side
        endpoint (its :attr:`~repro.rdma.qp.Endpoint.peer` is the
        target-side endpoint)."""
        from repro.rdma.qp import Endpoint  # cycle: qp imports fabric types

        a = Endpoint(self, initiator, target)
        b = Endpoint(self, target, initiator)
        a.peer = b
        b.peer = a
        return a

    # -- in-flight write tracking ----------------------------------------------
    def register_inflight(
        self,
        target: Node,
        addr: int,
        data: bytes,
        apply_at: float,
        t_start: Optional[float] = None,
    ) -> InflightWrite:
        """Track a WRITE payload in flight. ``t_start`` defaults to now;
        the analytic fast path passes the wire-entry time explicitly
        because it registers before simulating the TX occupancy."""
        fl = InflightWrite(
            target, addr, data, self.env.now if t_start is None else t_start, apply_at
        )
        self._inflight[fl.uid] = fl
        return fl

    def apply_inflight(self, fl: InflightWrite) -> bool:
        """Complete a transfer: apply payload to target memory.

        Returns False when a crash already resolved this transfer (the
        initiator must treat the WR as flushed/errored).
        """
        self._inflight.pop(fl.uid, None)
        if fl.state != "flying":
            return False
        if not fl.target.alive:
            fl.state = "torn"
            return False
        assert fl.target.device is not None
        fl.target.device.write(fl.addr, fl.data)
        if not fl.target.ddio:
            # DDIO off: the DMA went through the memory controller into
            # the ADR domain — durable the moment it lands.
            fl.target.device.buffer.flush(fl.addr, len(fl.data))
        fl.state = "applied"
        return True

    def inflight_count(self, target: Optional[Node] = None) -> int:
        if target is None:
            return len(self._inflight)
        return sum(1 for fl in self._inflight.values() if fl.target is target)

    # -- crash -------------------------------------------------------------------
    def crash_node(
        self,
        node: Node,
        rng: np.random.Generator,
        evict_probability: float = 0.5,
        *,
        tear_words: bool = False,
    ) -> dict:
        """Power-fail ``node``: tear in-flight writes, then crash its device.

        Each in-flight write targeting the node lands a random *subset*
        of its cachelines, biased by transfer progress — NICs and PCIe
        may reorder, so the surviving subset is not a prefix. The
        device's own dirty lines are then resolved by natural-eviction
        coin flips (:meth:`repro.mem.buffer.PersistentBuffer.crash`);
        ``tear_words`` selects the word-granular crash model there.
        """
        if not node.alive:
            raise SimulationError(f"{node.name} already crashed")
        node.alive = False
        torn = 0
        now = self.env.now
        for fl in list(self._inflight.values()):
            if fl.target is not node or fl.state != "flying":
                continue
            frac = fl.progress(now)
            n = len(fl.data)
            n_chunks = (n + CACHELINE - 1) // CACHELINE
            landed = np.flatnonzero(rng.random(n_chunks) < frac)
            assert node.device is not None
            for chunk in landed:
                start = int(chunk) * CACHELINE
                end = min(start + CACHELINE, n)
                node.device.write(fl.addr + start, fl.data[start:end])
                if not node.ddio:
                    node.device.buffer.flush(fl.addr + start, end - start)
            fl.state = "torn"
            self._inflight.pop(fl.uid, None)
            torn += 1
        summary = {"torn_writes": torn}
        if node.device is not None:
            summary.update(
                node.device.crash(rng, evict_probability, tear_words=tear_words)
            )
        return summary

    def restart_node(self, node: Node) -> None:
        """Bring a crashed node back (fresh volatile state; recovery code
        then rebuilds from the durable image)."""
        if node.alive:
            raise SimulationError(f"{node.name} is not down")
        node.alive = True
        # Volatile receive state is gone.
        node.srq.items.clear()

    # -- helpers ---------------------------------------------------------------
    def check_target(self, node: Node) -> None:
        if not node.alive:
            raise QPError(f"target node {node.name} is down", code="target_down")
