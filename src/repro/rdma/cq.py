"""Completion queues and asynchronous work-request posting.

The blocking verb methods on :class:`~repro.rdma.qp.Endpoint` model a
client that waits out each operation — fine for closed-loop workloads.
Real RDMA applications *post* work requests and harvest completions
from a CQ later, keeping many WRs in flight; this module adds that
layer:

    cq = CompletionQueue(env)
    ep.post_write(cq, rkey, offset, data, wr_id=1)
    ep.post_read(cq, rkey, offset, length, wr_id=2)
    completions = yield from cq.wait(2)      # or cq.poll() to spin

Posted WRs from one endpoint enter the TX engine in post order (the
engine is a FIFO resource), so ordering matches an RC queue pair.
Failed WRs (flushed by a target crash, protection errors) complete with
``ok=False`` and the exception in ``result`` — they never blow up the
posting process, exactly like error CQEs.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Optional

from repro.errors import MemoryAccessError, RDMAError
from repro.rdma.qp import Endpoint
from repro.rdma.verbs import Opcode, WorkCompletion, next_wr_id
from repro.sim.kernel import Environment, Event
from repro.sim.resources import Store

__all__ = ["CompletionQueue", "post_write", "post_read"]


class CompletionQueue:
    """Collects :class:`WorkCompletion` records from posted WRs."""

    __slots__ = ("env", "_store", "outstanding", "completed")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._store = Store(env)
        #: WRs posted but not yet completed.
        self.outstanding = 0
        #: Total completions ever delivered.
        self.completed = 0

    def _push(self, wc: WorkCompletion) -> None:
        self.outstanding -= 1
        self.completed += 1
        self._store.put_nowait(wc)  # CQ store is unbounded: never fails

    def poll(self, max_n: int = 16) -> list[WorkCompletion]:
        """Non-blocking harvest of up to ``max_n`` completions."""
        out: list[WorkCompletion] = []
        while len(out) < max_n:
            ok, wc = self._store.try_get()
            if not ok:
                break
            out.append(wc)
        return out

    def wait(self, n: int = 1) -> Generator[Event, Any, list[WorkCompletion]]:
        """Block until ``n`` completions are available; returns them."""
        out: list[WorkCompletion] = []
        for _ in range(n):
            wc = yield self._store.get()
            out.append(wc)
        return out

    def __len__(self) -> int:
        return len(self._store)


def _driver(
    ep: Endpoint,
    cq: CompletionQueue,
    wr_id: int,
    opcode: Opcode,
    op_gen,
) -> Generator[Event, Any, None]:
    env = ep.local.env
    try:
        result = yield from op_gen
    except (RDMAError, MemoryAccessError) as exc:
        cq._push(
            WorkCompletion(
                wr_id, opcode, ok=False, result=exc, completed_at=env.now
            )
        )
        return
    if isinstance(result, WorkCompletion):
        result.wr_id = wr_id
        result.completed_at = env.now
        cq._push(result)
    else:
        cq._push(
            WorkCompletion(wr_id, opcode, result=result, completed_at=env.now)
        )


def post_write(
    ep: Endpoint,
    cq: CompletionQueue,
    rkey: int,
    offset: int,
    data: bytes,
    wr_id: Optional[int] = None,
) -> int:
    """Post a one-sided WRITE; its completion lands on ``cq``."""
    wr_id = wr_id if wr_id is not None else next_wr_id()
    cq.outstanding += 1
    # Uncontended WRs complete analytically via scheduled callbacks
    # (same nanoseconds, no driver process); anything else — armed
    # injector, busy engine, QP error, validation failure — runs the
    # full event path below.
    if ep.write_async(cq, rkey, offset, data, wr_id):
        return wr_id
    ep.local.env.process(
        _driver(ep, cq, wr_id, Opcode.WRITE, ep.write(rkey, offset, data)),
        name=f"wr{wr_id}",
    )
    return wr_id


def post_read(
    ep: Endpoint,
    cq: CompletionQueue,
    rkey: int,
    offset: int,
    length: int,
    wr_id: Optional[int] = None,
) -> int:
    """Post a one-sided READ; ``wc.result`` carries the bytes."""
    wr_id = wr_id if wr_id is not None else next_wr_id()
    cq.outstanding += 1
    ep.local.env.process(
        _driver(ep, cq, wr_id, Opcode.READ, ep.read(rkey, offset, length)),
        name=f"rd{wr_id}",
    )
    return wr_id
