"""SEND-based RPC on top of the verb layer.

The paper's "SEND-based RPC" (§5.3.1): the client SENDs a request, the
server's polling thread dispatches it to a handler, and the handler
SENDs a response. :class:`RpcClient` packages the request/response
matching; :class:`RpcServer` provides the dispatch loop used by every
store server in this library (handlers contend for the node's CPU
resource, which is what saturates RPC-bound designs in Fig 10).
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any, Callable, Optional

from repro.errors import QPError, StoreError
from repro.rdma.qp import Endpoint
from repro.rdma.verbs import Message
from repro.sim.kernel import Environment, Event, Interrupt, Process

__all__ = [
    "RpcClient",
    "RpcServer",
    "rpc_error",
    "rpc_error_for",
    "RpcFault",
    "ERR_NOT_FOUND",
    "ERR_POOL_EXHAUSTED",
    "ERR_NO_INTACT",
    "ERR_UNKNOWN_ALLOC",
    "ERR_STORE",
    "ERR_UNKNOWN",
    "ERR_REPL_LAG",
    "ERR_FENCED",
    "ERR_BUSY",
    "RETRYABLE_CODES",
]

#: Structured error codes carried in RPC error responses, so clients can
#: distinguish faults worth retrying from fatal protocol errors without
#: parsing messages.
ERR_NOT_FOUND = "not_found"
ERR_POOL_EXHAUSTED = "pool_exhausted"
ERR_NO_INTACT = "no_intact_version"
ERR_UNKNOWN_ALLOC = "unknown_alloc"
ERR_STORE = "store_error"
ERR_UNKNOWN = "unknown"
#: Replication watermark has not covered the requested record yet: the
#: log shipper is behind, the same wait will succeed once it catches up.
ERR_REPL_LAG = "replication_lag"
#: The partition is write-fenced (draining for migration). NOT
#: retryable on the same node: the client must refresh its route and
#: resend to the new owner.
ERR_FENCED = "write_fenced"
#: Admission control shed this request: the partition's queue depth is
#: over its watermark. Retryable — the client's backoff *is* the
#: congestion-control loop (see DESIGN.md §15).
ERR_BUSY = "server_busy"

#: Codes that describe *transient* server-side conditions: the same
#: request may succeed after cleaning/verification catches up.
RETRYABLE_CODES = frozenset(
    {ERR_POOL_EXHAUSTED, ERR_NO_INTACT, ERR_REPL_LAG, ERR_BUSY}
)


class RpcFault(StoreError):
    """A handler returned an error response.

    Attributes
    ----------
    code:
        Structured error code (one of the ``ERR_*`` constants, or
        whatever the handler put in the payload's ``"code"`` field).
    op:
        The ``op`` field of the originating request, when known.
    """

    def __init__(
        self, message: str = "", *, code: str = ERR_UNKNOWN, op: Optional[str] = None
    ) -> None:
        super().__init__(message)
        self.code = code
        self.op = op

    @property
    def retryable(self) -> bool:
        return self.code in RETRYABLE_CODES


def rpc_error(message: str, code: str = ERR_STORE, **extra: Any) -> dict:
    """Build an error response payload with a structured ``code``."""
    return {"error": message, "code": code, **extra}


def rpc_error_for(exc: StoreError, **extra: Any) -> dict:
    """Build an error payload whose code reflects the exception class."""
    from repro.errors import CorruptObjectError, KeyNotFoundError, PoolExhaustedError

    if isinstance(exc, PoolExhaustedError):
        code = ERR_POOL_EXHAUSTED
    elif isinstance(exc, KeyNotFoundError):
        code = ERR_NOT_FOUND
    elif isinstance(exc, CorruptObjectError):
        code = ERR_NO_INTACT
    else:
        code = ERR_STORE
    return rpc_error(str(exc), code=code, **extra)


class RpcClient:
    """Client side of SEND-based RPC over one endpoint."""

    __slots__ = ("ep",)

    def __init__(self, ep: Endpoint) -> None:
        self.ep = ep

    def call(
        self, payload: dict, request_bytes: int
    ) -> Generator[Event, Any, Any]:
        """Issue a request and wait for the matching response payload.

        Raises :class:`RpcFault` if the handler responded with an error.
        """
        rid = yield from self.ep.send(payload, request_bytes)
        msg = yield from self.ep.recv_response(rid)
        resp = msg.payload
        if isinstance(resp, dict) and "error" in resp:
            raise RpcFault(
                resp["error"],
                code=resp.get("code", ERR_UNKNOWN),
                op=payload.get("op") if isinstance(payload, dict) else None,
            )
        return resp


#: Handler signature: (message) -> generator returning
#: (response_payload, response_bytes).
Handler = Callable[[Message], Generator[Event, Any, tuple[Any, int]]]


def _is_request(msg: Message) -> bool:
    # Every request payload is a dict carrying "op"; some (cleaning_ack)
    # also set in_reply_to to correlate with the notification they
    # answer, so the reply-marker alone cannot distinguish them from RPC
    # responses. Responses are handler results and never carry "op".
    # WRITE_WITH_IMM notifications (no "op", no in_reply_to) must still
    # reach the default handler.
    return msg.in_reply_to is None or (
        isinstance(msg.payload, dict) and "op" in msg.payload
    )


class RpcServer:
    """Polling dispatch loop for a server node.

    Parameters
    ----------
    env, node:
        The simulation environment and the node whose SRQ is polled.
    dispatch_ns:
        CPU time to poll the CQ and demultiplex one message (the paper's
        eFactory reduces this with multiple receive regions — see
        ``recv_batching`` in the store configs).
    concurrent_handlers:
        Max handlers in flight (each still holds the node CPU while
        computing). 1 models a single request-processing thread.
    """

    def __init__(
        self,
        env: Environment,
        node: Any,
        dispatch_ns: float = 200.0,
        concurrent_handlers: int = 1,
    ) -> None:
        self.env = env
        self.node = node
        self.dispatch_ns = dispatch_ns
        self.concurrent_handlers = concurrent_handlers
        self._handlers: dict[str, Handler] = {}
        self._default_handler: Optional[Handler] = None
        self._proc: Optional[Process] = None
        self._handler_procs: set[Process] = set()
        self.requests_served = 0
        #: Requests served keyed by the payload's ``op`` (lets metrics
        #: confirm batching actually replaced N ``alloc`` calls with one
        #: ``alloc_batch`` instead of adding traffic).
        self.served_by_op: dict[str, int] = {}
        #: Armed fault injector (:mod:`repro.faults`), or None; the
        #: dispatch loop checks this one attribute per message.
        self.injector = None

    def register(self, op: str, handler: Handler) -> None:
        self._handlers[op] = handler

    def register_default(self, handler: Handler) -> None:
        """Handler for messages whose payload has no registered ``op``
        (e.g. WRITE_WITH_IMM notifications)."""
        self._default_handler = handler

    def start(self) -> Process:
        if self._proc is not None and self._proc.is_alive:
            raise StoreError("RpcServer already running")
        self._proc = self.env.process(self._loop(), name=f"rpc:{self.node.name}")
        return self._proc

    def stop(self) -> None:
        """Halt dispatch *and* every in-flight handler.

        Interrupting live handlers matters for crash fidelity: a handler
        that was mid-flush when the power failed must not keep mutating
        NVM state after the crash (it would publish torn data with a
        trusted durability flag).
        """
        # A process cannot interrupt itself: when stop() runs *inside* a
        # handler (the crash hook pulling the plug mid-dispatch), the
        # active process is skipped — it dies by the exception it is
        # about to raise.
        active = self.env.active_process
        if self._proc is not None and self._proc.is_alive and self._proc is not active:
            self._proc.interrupt("stop")
        for proc in list(self._handler_procs):
            if proc.is_alive and proc is not active:
                proc.interrupt("stop")
        self._handler_procs.clear()

    # -- internals ------------------------------------------------------------
    def _loop(self) -> Generator[Event, Any, None]:
        try:
            while True:
                # Requests only: a server node may also host RpcClients
                # (cluster log shipping / inter-node RPC), whose
                # *responses* arrive on the same SRQ and must be left
                # for their recv_response getters. Single-node setups
                # never deliver responses to a server, so the predicate
                # matches every message there — behaviour unchanged.
                msg: Message = yield self.node.srq.get(_is_request)
                if self.injector is not None:
                    act = self.injector.fire("rpc.dispatch")
                    if act is not None and act.kind == "rpc_stall":
                        # Polling thread descheduled / head-of-line blocked.
                        yield self.env.timeout(act.delay_ns)
                handler = self._pick(msg)
                if handler is None:
                    continue  # drop unroutable messages
                if self.concurrent_handlers == 1:
                    yield from self._run_handler(handler, msg)
                else:
                    proc = self.env.process(
                        self._run_handler(handler, msg),
                        name=f"rpc-h:{self.node.name}",
                    )
                    self._handler_procs.add(proc)
                    if len(self._handler_procs) > 64:
                        self._handler_procs = {
                            p for p in self._handler_procs if p.is_alive
                        }
        except Interrupt:
            return

    def _pick(self, msg: Message) -> Optional[Handler]:
        if isinstance(msg.payload, dict):
            op = msg.payload.get("op")
            if op in self._handlers:
                return self._handlers[op]
        return self._default_handler

    def _run_handler(
        self, handler: Handler, msg: Message
    ) -> Generator[Event, Any, None]:
        req = yield from self.node.cpu.acquire()
        try:
            yield self.env.timeout(self.dispatch_ns)
            result = yield from handler(msg)
        finally:
            self.node.cpu.release(req)
        self.requests_served += 1
        if isinstance(msg.payload, dict):
            op = msg.payload.get("op")
            if op is not None:
                self.served_by_op[op] = self.served_by_op.get(op, 0) + 1
        if result is None:
            return  # notification-style message; no response
        response, response_bytes = result
        if msg.reply_to is None:
            raise StoreError("handler produced a response but message has no reply_to")
        try:
            yield from msg.reply_to.send(
                response, response_bytes, in_reply_to=msg.req_id
            )
        except QPError:
            pass  # client died; drop the response
