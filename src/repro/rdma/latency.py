"""Fabric latency/bandwidth model.

All constants are nanoseconds (or ns/byte) of simulated time and are
calibrated so that the micro-measurements the paper itself reports hold
on our substrate (DESIGN.md §6):

* a small one-sided verb completes in ~1.6–1.9 µs (ConnectX-5 class
  round trip through one switch);
* a SEND-based RPC round trip costs ~2.7 µs plus server handler time —
  two-sided traffic pays receive-completion and dispatch overheads that
  one-sided traffic avoids, which is the entire premise of the
  client-active scheme (§3 of the paper);
* the wire moves 4 KiB in ~0.33 µs (100 Gb/s).

The model deliberately exposes *where* each cost is charged: NIC TX
engine occupancy (serialization — this is what bounds bandwidth),
propagation (pure delay — pipelined), target-side DMA, and two-sided
receive dispatch (CPU-adjacent — this is what makes RPC-bound schemes
saturate in Fig 10).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = ["FabricTiming"]


@dataclass(frozen=True)
class FabricTiming:
    """Timing constants for the RDMA fabric.

    Attributes
    ----------
    propagation_ns:
        One-way wire + switch delay.
    wire_ns_per_byte:
        Serialization cost per payload byte (100 Gb/s ≈ 0.08 ns/B).
    nic_tx_ns:
        Per-work-request initiator NIC processing latency.
    nic_tx_occupancy_ns:
        How long one WR actually *occupies* the TX engine (less than its
        latency — NICs pipeline WR processing). Together with payload
        serialization this bounds per-NIC message rate and bandwidth.
    nic_rx_ns:
        Target NIC processing for an inbound packet.
    dma_ns:
        Target-side PCIe DMA setup for one-sided ops (DDIO places the
        payload in LLC — *not* the NVM power-fail domain).
    two_sided_rx_ns:
        Extra target-side cost for SEND/WRITE_WITH_IMM delivery: recv
        WQE consumption, CQE generation, and the polling thread picking
        the message up.
    atomic_extra_ns:
        Additional target-NIC cost of an 8-byte ATOMIC (CAS/FAA) —
        read-modify-write through the PCIe root complex.
    doorbell_wr_ns:
        Per-WR initiator processing for the second and later WRs of a
        *doorbell batch* (``Endpoint.write_many``): the MMIO doorbell
        ring and WQE prefetch are paid once for the whole chain, so
        follow-up WRs cost only WQE decode, far below ``nic_tx_ns``.
        With selective signaling only the final WR generates a CQE.
    min_wire_bytes:
        Every message occupies the wire for at least this many bytes
        (headers: GRH/BTH etc.).
    """

    propagation_ns: float = 750.0
    wire_ns_per_byte: float = 0.08
    nic_tx_ns: float = 150.0
    nic_tx_occupancy_ns: float = 25.0
    nic_rx_ns: float = 100.0
    dma_ns: float = 100.0
    two_sided_rx_ns: float = 600.0
    atomic_extra_ns: float = 250.0
    two_sided_rx_ns_per_byte: float = 0.15
    doorbell_wr_ns: float = 40.0
    min_wire_bytes: int = 64

    def __post_init__(self) -> None:
        for name in (
            "propagation_ns",
            "wire_ns_per_byte",
            "nic_tx_ns",
            "nic_tx_occupancy_ns",
            "nic_rx_ns",
            "dma_ns",
            "two_sided_rx_ns",
            "atomic_extra_ns",
            "two_sided_rx_ns_per_byte",
            "doorbell_wr_ns",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"FabricTiming.{name} must be >= 0")
        if self.min_wire_bytes < 0:
            raise ConfigError("FabricTiming.min_wire_bytes must be >= 0")

    # -- derived costs ---------------------------------------------------
    def two_sided_rx_cost(self, nbytes: int) -> float:
        """Receive-side processing of a two-sided message of ``nbytes``."""
        return self.two_sided_rx_ns + self.two_sided_rx_ns_per_byte * nbytes

    def serialize_ns(self, nbytes: int) -> float:
        """TX-engine occupancy for a payload of ``nbytes``."""
        return self.wire_ns_per_byte * max(nbytes, self.min_wire_bytes)

    def one_way_ns(self, nbytes: int) -> float:
        """Pipelined one-way transfer delay excluding engine occupancy."""
        return self.propagation_ns + self.serialize_ns(nbytes)

    def one_sided_rtt_ns(self, nbytes: int) -> float:
        """Rule-of-thumb completion latency of an uncontended one-sided
        op carrying ``nbytes`` of payload in one direction (used by
        tests/docs; the fabric composes the pieces itself)."""
        return (
            self.nic_tx_ns
            + self.one_way_ns(nbytes)
            + self.dma_ns
            + self.propagation_ns
            + self.nic_rx_ns
        )

    def scaled(self, factor: float) -> "FabricTiming":
        """A uniformly slower/faster fabric (sensitivity studies)."""
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        return replace(
            self,
            propagation_ns=self.propagation_ns * factor,
            wire_ns_per_byte=self.wire_ns_per_byte * factor,
            nic_tx_ns=self.nic_tx_ns * factor,
            nic_tx_occupancy_ns=self.nic_tx_occupancy_ns * factor,
            nic_rx_ns=self.nic_rx_ns * factor,
            dma_ns=self.dma_ns * factor,
            two_sided_rx_ns=self.two_sided_rx_ns * factor,
            atomic_extra_ns=self.atomic_extra_ns * factor,
            two_sided_rx_ns_per_byte=self.two_sided_rx_ns_per_byte * factor,
            doorbell_wr_ns=self.doorbell_wr_ns * factor,
        )
