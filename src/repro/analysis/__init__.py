"""Result analysis: statistics helpers and text-table rendering."""

from repro.analysis.histogram import LogHistogram
from repro.analysis.stats import (
    ci95,
    fmt_mops,
    fmt_ns,
    geo_mean,
    improvement,
    speedup,
)
from repro.analysis.tables import Table, banner

__all__ = [
    "LogHistogram",
    "Table",
    "banner",
    "ci95",
    "fmt_mops",
    "fmt_ns",
    "geo_mean",
    "improvement",
    "speedup",
]
