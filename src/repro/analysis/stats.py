"""Small statistics helpers for reporting experiment results."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "speedup",
    "improvement",
    "geo_mean",
    "fmt_ns",
    "fmt_mops",
    "ci95",
]


def speedup(candidate: float, baseline: float) -> float:
    """``candidate / baseline`` (1.0 = parity); NaN-safe."""
    if baseline <= 0 or math.isnan(baseline) or math.isnan(candidate):
        return float("nan")
    return candidate / baseline


def improvement(candidate: float, baseline: float) -> float:
    """Relative improvement, the paper's "outperforms by X×" convention:
    0.42 means 42% better (i.e. candidate = 1.42 × baseline)."""
    return speedup(candidate, baseline) - 1.0


def geo_mean(values: Iterable[float]) -> float:
    arr = np.asarray([v for v in values if v > 0 and not math.isnan(v)])
    if arr.size == 0:
        return float("nan")
    return float(np.exp(np.log(arr).mean()))


def ci95(samples: Sequence[float]) -> tuple[float, float]:
    """Mean and 95% normal-approximation half-width."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        return float("nan"), float("nan")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    half = 1.96 * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return mean, half


def fmt_ns(ns: float) -> str:
    """Human latency: ns → µs/ms as appropriate."""
    if math.isnan(ns):
        return "n/a"
    if ns < 1_000:
        return f"{ns:.0f}ns"
    if ns < 1_000_000:
        return f"{ns / 1_000:.2f}us"
    return f"{ns / 1_000_000:.2f}ms"


def fmt_mops(mops: float) -> str:
    if math.isnan(mops):
        return "n/a"
    if mops < 0.001:
        return f"{mops * 1e6:.0f} ops/s"
    if mops < 1.0:
        return f"{mops * 1e3:.1f} Kops/s"
    return f"{mops:.2f} Mops/s"
