"""Log-bucketed latency histogram (HdrHistogram-style, NumPy-backed).

The :class:`~repro.harness.metrics.LatencyRecorder` keeps exact samples,
which is fine for runs of thousands of operations; long sweeps and the
CLI's replicated runs use this fixed-memory histogram instead: buckets
grow geometrically so relative error is bounded (~``2^(1/sub_buckets)``)
across nine decades of nanoseconds, and merging two histograms is an
array add.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.errors import ConfigError

__all__ = ["LogHistogram"]


class LogHistogram:
    """Fixed-size histogram with geometric buckets.

    Parameters
    ----------
    min_ns, max_ns:
        Trackable range; samples are clamped into it.
    sub_buckets:
        Buckets per octave — 16 gives ≤ ~4.4% relative quantile error.
    """

    __slots__ = ("min_ns", "max_ns", "sub_buckets", "_counts", "_n_buckets",
                 "_log_min", "_scale", "count", "total", "min_seen", "max_seen")

    def __init__(
        self, min_ns: float = 10.0, max_ns: float = 1e10, sub_buckets: int = 16
    ) -> None:
        if not 0 < min_ns < max_ns:
            raise ConfigError("need 0 < min_ns < max_ns")
        if sub_buckets < 1:
            raise ConfigError("sub_buckets must be >= 1")
        self.min_ns = min_ns
        self.max_ns = max_ns
        self.sub_buckets = sub_buckets
        self._log_min = math.log2(min_ns)
        self._scale = sub_buckets  # buckets per doubling
        self._n_buckets = (
            int((math.log2(max_ns) - self._log_min) * sub_buckets) + 2
        )
        self._counts = np.zeros(self._n_buckets, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min_seen = math.inf
        self.max_seen = 0.0

    # -- recording -----------------------------------------------------------
    def _index(self, value: float) -> int:
        v = min(max(value, self.min_ns), self.max_ns)
        idx = int((math.log2(v) - self._log_min) * self._scale)
        return min(max(idx, 0), self._n_buckets - 1)

    def record(self, value_ns: float) -> None:
        if value_ns < 0:
            raise ConfigError(f"negative latency {value_ns}")
        self._counts[self._index(value_ns)] += 1
        self.count += 1
        self.total += value_ns
        self.min_seen = min(self.min_seen, value_ns)
        self.max_seen = max(self.max_seen, value_ns)

    def record_many(self, values: Iterable[float]) -> None:
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            return
        if (arr < 0).any():
            raise ConfigError("negative latency in batch")
        v = np.clip(arr, self.min_ns, self.max_ns)
        idx = ((np.log2(v) - self._log_min) * self._scale).astype(np.int64)
        idx = np.clip(idx, 0, self._n_buckets - 1)
        np.add.at(self._counts, idx, 1)
        self.count += arr.size
        self.total += float(arr.sum())
        self.min_seen = min(self.min_seen, float(arr.min()))
        self.max_seen = max(self.max_seen, float(arr.max()))

    # -- queries ---------------------------------------------------------------
    def _bucket_value(self, idx: int) -> float:
        # geometric midpoint of the bucket
        lo = 2.0 ** (self._log_min + idx / self._scale)
        hi = 2.0 ** (self._log_min + (idx + 1) / self._scale)
        return math.sqrt(lo * hi)

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (0..100)."""
        if not 0 <= q <= 100:
            raise ConfigError(f"percentile {q} out of range")
        if self.count == 0:
            return math.nan
        target = max(1, math.ceil(self.count * q / 100.0))
        cum = np.cumsum(self._counts)
        idx = int(np.searchsorted(cum, target))
        value = self._bucket_value(idx)
        return float(min(max(value, self.min_seen), self.max_seen))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def merge(self, other: "LogHistogram") -> None:
        """Add another histogram's population (same geometry required)."""
        if (
            other.min_ns != self.min_ns
            or other.max_ns != self.max_ns
            or other.sub_buckets != self.sub_buckets
        ):
            raise ConfigError("cannot merge histograms with different geometry")
        self._counts += other._counts
        self.count += other.count
        self.total += other.total
        self.min_seen = min(self.min_seen, other.min_seen)
        self.max_seen = max(self.max_seen, other.max_seen)

    def render(self, width: int = 50, max_rows: int = 20) -> str:
        """ASCII sketch of the distribution (non-empty region only)."""
        if self.count == 0:
            return "(empty histogram)"
        nz = np.flatnonzero(self._counts)
        lo, hi = int(nz[0]), int(nz[-1]) + 1
        step = max(1, (hi - lo) // max_rows)
        lines = []
        peak = int(self._counts[lo:hi].max())
        for start in range(lo, hi, step):
            chunk = self._counts[start : start + step]
            n = int(chunk.sum())
            bar = "#" * max(1 if n else 0, int(n / peak * width))
            lines.append(f"{self._bucket_value(start):>12.0f}ns |{bar} {n}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LogHistogram n={self.count} mean={self.mean:.0f}ns "
            f"p50={self.percentile(50):.0f}ns p99={self.percentile(99):.0f}ns>"
        )
