"""Plain-text tables matching the paper's figures.

Every benchmark prints its result through :class:`Table` so the output
reads like the rows/series behind the paper's plots — one line per
(system, x-value) with the measured metric.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["Table", "banner"]


def banner(title: str, width: int = 78) -> str:
    """A section header line."""
    pad = max(0, width - len(title) - 4)
    return f"== {title} {'=' * pad}"


class Table:
    """Aligned fixed-width text table."""

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
