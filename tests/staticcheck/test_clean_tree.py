"""The committed tree passes its own static analysis (CI gate)."""

from __future__ import annotations

import json
import os

from repro.cli import main
from repro.staticcheck import run_staticcheck

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.abspath(os.path.join(HERE, os.pardir, os.pardir))
SRC = os.path.join(REPO, "src", "repro")
BASELINE = os.path.join(REPO, "staticcheck.toml")


def test_tree_is_clean_under_reviewed_baseline():
    rep = run_staticcheck(SRC, baseline=BASELINE, rel_to=REPO)
    assert rep.ok, "\n".join(f.render() for f in rep.findings)
    # every waiver in the baseline still matches something: stale
    # suppressions would silently mask future regressions
    assert rep.unused_suppressions == [], [
        (s.rule, s.path) for s in rep.unused_suppressions
    ]
    assert set(rep.per_checker) == {
        "persist",
        "yieldrace",
        "determinism",
        "registry",
    }
    assert rep.modules_scanned > 50
    assert rep.elapsed_s < 30  # the CI budget


def test_cli_staticcheck_ok(tmp_path, capsys):
    out = tmp_path / "sc.json"
    status = main(
        [
            "staticcheck",
            "--root",
            SRC,
            "--baseline",
            BASELINE,
            "--strict-baseline",
            "--json",
            str(out),
        ]
    )
    assert status == 0
    text = capsys.readouterr().out
    assert "OK: no unsuppressed findings" in text
    data = json.loads(out.read_text())
    assert data["ok"] is True
    assert set(data["per_checker_raw_findings"]) == {
        "persist",
        "yieldrace",
        "determinism",
        "registry",
    }
    assert data["unused_suppressions"] == []


def test_cli_staticcheck_fails_on_findings(tmp_path, capsys):
    fixtures = os.path.join(HERE, "fixtures")
    status = main(
        ["staticcheck", "--root", fixtures, "--no-baseline", "--rules", "PO"]
    )
    assert status == 1
    assert "FAIL" in capsys.readouterr().out
