# ruff: noqa — deliberately-buggy fixture, parsed by the analyzers, never imported
"""Seeded persist-ordering bugs (PO001/PO002). Parsed, never imported."""


class BadStore:
    def publish_unpersisted(self, pool, table, entry_off, loc):
        # PO001: write -> publish with no persist barrier at all
        pool.write(loc.offset, b"header")
        table.publish_object(entry_off, loc)

    def publish_on_one_path(self, pool, table, entry_off, loc, fast):
        # PO001: persist only on the slow path; fast path publishes dirty
        pool.write(loc.offset, b"header")
        if not fast:
            yield from self.persist_object(loc)
        table.publish_object(entry_off, loc)

    def atomic_store_unpersisted(self, pool, device, loc):
        # PO001: 8-byte atomic publish of an unpersisted header
        pool.write(loc.offset, b"header")
        device.write_atomic64(loc.offset, b"\x00" * 8)

    def _handle_put(self, msg, part, loc):
        # PO002: acks the client while the value is volatile
        yield from part.device.copy_in(loc.offset, msg.payload["value"])
        return {"ok": True}, 64

    # -- finding-free counterparts (pin the no-false-positive behaviour) --

    def ok_persist_then_publish(self, pool, table, entry_off, loc):
        pool.write(loc.offset, b"header")
        yield from self.persist_object(loc)
        table.publish_object(entry_off, loc)

    def _handle_ok_persists(self, msg, part, loc):
        yield from part.device.copy_in(loc.offset, msg.payload["value"])
        yield from part.persist_object(loc)
        return {"ok": True}, 64

    def _handle_error_reply(self, msg, part, loc):
        # nack promises nothing: rpc_error returns are exempt
        yield from part.device.copy_in(loc.offset, msg.payload["value"])
        return rpc_error("full"), 64

    def ok_file_write(self, path, payload):
        # fh.write is a file handle, not NVM
        with open(path, "w") as fh:
            fh.write(payload)
        return True
