# ruff: noqa — deliberately-buggy fixture, parsed by the analyzers, never imported
"""Seeded yield-straddling RMW races (YP001). Parsed, never imported."""


def racy_alloc(env, pool, size):
    # YP001: head read before the yield publishes a stale bump after it
    head = pool.head
    yield env.timeout(1)
    pool.head = head + size


def racy_alias(env, self, size):
    # YP001 through an alias: pool names self.pools[0]
    pool = self.pools[0]
    head = pool.head
    yield from self.device.persist(0, 8)
    pool.head = head + size


def racy_augassign(env, part, n):
    # YP001: += is atomic, but its RHS carries the stale read
    shipped = part.shipped
    yield env.timeout(1)
    part.shipped += shipped + n


# -- finding-free counterparts (pin the no-false-positive behaviour) --


def ok_reread(env, pool, size):
    head = pool.head
    yield env.timeout(1)
    head = pool.head  # re-validated after resuming
    pool.head = head + size


def ok_store_before_yield(env, pool, size):
    head = pool.head
    pool.head = head + size  # no yield in between
    yield env.timeout(1)


def ok_local_only(env, n):
    # locals are process-private; never flagged
    total = 0
    for i in range(n):
        total = total + i
        yield env.timeout(1)
    return total


def ok_nonyielding_helper(env, pool, size):
    # yield from of a known non-yielding data generator: no epoch bump
    head = pool.head
    names = list(site_names(pool))
    pool.head = head + size
    yield env.timeout(1)
    return names
