# ruff: noqa — deliberately-buggy fixture, parsed by the analyzers, never imported
"""Seeded determinism/exception-hygiene bugs (DT*/EX001). Never imported."""

import os
import random
import time
from datetime import datetime


def wall_clock_latency(env):
    t0 = time.time()  # DT001
    return t0 - env.now


def calendar_stamp():
    return datetime.now().isoformat()  # DT002


def unseeded_draws(keys):
    jitter = random.random()  # DT003
    noise = np.random.rand()  # DT003
    token = os.urandom(8)  # DT003
    return jitter, noise, token


def id_ordered(objs, table, x):
    ranked = sorted(objs, key=id)  # DT004
    table[id(x)] = ranked  # DT004
    return ranked


def set_iteration(pools):
    live = {p for p in pools if p.alive}
    for p in live:  # DT005
        p.scrub()
    for q in {1, 2, 3}:  # DT005
        print(q)


def swallow_everything(part, loc):
    try:
        return part.read_object(loc)
    except Exception:  # EX001
        return None


def swallow_bare(part, loc):
    try:
        return part.read_object(loc)
    except:  # noqa: E722  EX001
        return None


# -- finding-free counterparts (pin the no-false-positive behaviour) --


def ok_seeded_and_sorted(rng, pools, env):
    jitter = rng.random()  # seeded RngRegistry stream, not the module
    gen = np.random.default_rng(42)  # explicitly seeded
    live = {p for p in pools if p.alive}
    for p in sorted(live, key=lambda p: p.pool_id):  # sanctioned
        p.scrub()
    return jitter, gen, env.now
