# ruff: noqa — deliberately-buggy fixture, parsed by the analyzers, never imported
"""Seeded CLI/metrics key mismatch (RG006). Parsed, never imported.

Named ``cli.py`` because the consumer-key rule only applies to CLI
table renderers.
"""


def render_row(res):
    produced = {"shipped_records": res.count}
    return produced["shipped_records"], res["no_such_metric_key"]  # RG006
