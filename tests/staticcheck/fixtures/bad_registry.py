# ruff: noqa — deliberately-buggy fixture, parsed by the analyzers, never imported
"""Seeded site/plan registry mismatches (RG*). Parsed, never imported."""


def chaos_hook(injector, stage):
    injector.fire("nvm.presist")  # RG001: typo'd site
    injector.fire(f"zz.cleaner.{stage}")  # RG002: unknown family
    injector.fire("nvm.persist")  # known: no finding


def bad_rule_plan():
    return FaultPlan(
        "bad-rule-plan",
        rules=(FaultRule(site="qp.writee", kind="drop"),),  # RG004
    )


def misnamed_plan():
    # RG005: shipped under "listed-name" but constructs "actual-name"
    return FaultPlan("actual-name", rules=())


SHIPPED_PLANS = {
    "bad-rule-plan": bad_rule_plan,
    "listed-name": misnamed_plan,
}

NODE_KILL_PLANS = ("missing-plan",)  # RG005: not a SHIPPED_PLANS key
