"""Each checker rule fires on its seeded fixture — and only there.

The fixtures under ``fixtures/`` are parsed by the analyzers, never
imported; every ``ok_*`` function pins the corresponding
no-false-positive behaviour.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigError
from repro.staticcheck import RULES, run_staticcheck
from repro.staticcheck.suppress import load_baseline

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")


def fixture_findings(rules: set[str]):
    rep = run_staticcheck(
        FIXTURES, baseline=None, rules=rules, rel_to=FIXTURES
    )
    return rep.findings


def by_rule(findings, rule: str):
    return [f for f in findings if f.rule == rule]


def symbols(findings):
    return {f.symbol for f in findings}


def test_rule_ids_are_stable():
    assert set(RULES) == {
        "PO001",
        "PO002",
        "YP001",
        "DT001",
        "DT002",
        "DT003",
        "DT004",
        "DT005",
        "EX001",
        "RG001",
        "RG002",
        "RG003",
        "RG004",
        "RG005",
        "RG006",
    }


def test_persist_ordering_rules():
    findings = fixture_findings({"PO"})
    assert symbols(by_rule(findings, "PO001")) == {
        "BadStore.publish_unpersisted",
        "BadStore.publish_on_one_path",
        "BadStore.atomic_store_unpersisted",
    }
    assert symbols(by_rule(findings, "PO002")) == {"BadStore._handle_put"}
    clean = {
        "BadStore.ok_persist_then_publish",
        "BadStore._handle_ok_persists",
        "BadStore._handle_error_reply",
        "BadStore.ok_file_write",
    }
    assert not (symbols(findings) & clean)


def test_yield_race_rule():
    findings = fixture_findings({"YP"})
    assert symbols(by_rule(findings, "YP001")) == {
        "racy_alloc",
        "racy_alias",
        "racy_augassign",
    }
    assert not {s for s in symbols(findings) if s.startswith("ok_")}


def test_determinism_rules():
    findings = fixture_findings({"DT", "EX"})
    assert symbols(by_rule(findings, "DT001")) == {"wall_clock_latency"}
    assert symbols(by_rule(findings, "DT002")) == {"calendar_stamp"}
    dt3 = by_rule(findings, "DT003")
    assert symbols(dt3) == {"unseeded_draws"} and len(dt3) == 3
    dt4 = by_rule(findings, "DT004")
    assert symbols(dt4) == {"id_ordered"} and len(dt4) == 2
    dt5 = by_rule(findings, "DT005")
    assert symbols(dt5) == {"set_iteration"} and len(dt5) == 2
    assert symbols(by_rule(findings, "EX001")) == {
        "swallow_everything",
        "swallow_bare",
    }
    assert "ok_seeded_and_sorted" not in symbols(findings)


def test_registry_rules():
    findings = fixture_findings({"RG"})
    assert [f for f in by_rule(findings, "RG001") if "nvm.presist" in f.message]
    assert [f for f in by_rule(findings, "RG002") if "zz.cleaner." in f.message]
    assert [f for f in by_rule(findings, "RG004") if "qp.writee" in f.message]
    rg5 = by_rule(findings, "RG005")
    assert [f for f in rg5 if "missing-plan" in f.message]
    assert [f for f in rg5 if "actual-name" in f.message]
    assert [
        f for f in by_rule(findings, "RG006") if "no_such_metric_key" in f.message
    ]
    # reverse direction: sites the fixtures don't fire are reported dead
    assert [f for f in by_rule(findings, "RG003") if "'qp.write'" in f.message]
    # the one correctly-spelled fire() draws no finding
    assert not [f for f in findings if "'nvm.persist'" in f.message]


def test_findings_are_deterministic_and_sorted():
    a = fixture_findings({"PO", "YP", "DT", "EX"})
    b = fixture_findings({"PO", "YP", "DT", "EX"})
    assert [f.as_dict() for f in a] == [f.as_dict() for f in b]
    keys = [(f.path, f.line, f.rule, f.message) for f in a]
    assert keys == sorted(keys)


def test_suppression_matching_and_unused(tmp_path):
    base = tmp_path / "staticcheck.toml"
    base.write_text(
        '[[suppress]]\nrule = "PO002"\n'
        'path = "bad_persist.py"\n'
        'reason = "fixture: ack without persist is the seeded bug"\n'
        '[[suppress]]\nrule = "YP001"\n'
        'path = "no_such_file.py"\n'
        'reason = "stale entry that matches nothing"\n'
    )
    rep = run_staticcheck(
        FIXTURES, baseline=str(base), rules={"PO"}, rel_to=FIXTURES
    )
    assert not [f for f in rep.findings if f.rule == "PO002"]
    assert [f for f in rep.suppressed if f.rule == "PO002"]
    assert [s.rule for s in rep.unused_suppressions] == ["YP001"]


def test_baseline_requires_rule_and_reason(tmp_path):
    bad = tmp_path / "staticcheck.toml"
    bad.write_text('[[suppress]]\nrule = "PO001"\n')
    with pytest.raises(ConfigError):
        load_baseline(str(bad))


def test_baseline_rejects_unknown_keys(tmp_path):
    bad = tmp_path / "staticcheck.toml"
    bad.write_text(
        '[[suppress]]\nrule = "PO001"\nreason = "x"\nfille = "typo"\n'
    )
    with pytest.raises(ConfigError):
        load_baseline(str(bad))
