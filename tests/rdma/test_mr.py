"""Memory registration: regions, rkeys, invalidation."""

import pytest

from repro.errors import ProtectionError
from repro.nvm.device import NVMDevice
from repro.rdma.mr import MemoryRegion, ProtectionDomain
from repro.sim.kernel import Environment


@pytest.fixture
def device(env):
    return NVMDevice(env, 1 << 16)


class TestMemoryRegion:
    def test_check_returns_absolute_address(self, device):
        mr = MemoryRegion(device, base=4096, size=8192)
        assert mr.check(100, 16, write=True) == 4196

    def test_bounds(self, device):
        mr = MemoryRegion(device, base=0, size=128)
        with pytest.raises(ProtectionError):
            mr.check(120, 16, write=False)
        with pytest.raises(ProtectionError):
            mr.check(-1, 4, write=False)

    def test_readonly_enforced(self, device):
        mr = MemoryRegion(device, base=0, size=128, writable=False)
        mr.check(0, 8, write=False)
        with pytest.raises(ProtectionError):
            mr.check(0, 8, write=True)

    def test_invalidated_region_rejects_access(self, device):
        mr = MemoryRegion(device, base=0, size=128)
        mr.invalidate()
        with pytest.raises(ProtectionError):
            mr.check(0, 8, write=False)

    def test_region_must_fit_device(self, device):
        with pytest.raises(ProtectionError):
            MemoryRegion(device, base=0, size=(1 << 16) + 1)

    def test_unique_rkeys(self, device):
        a = MemoryRegion(device, 0, 64)
        b = MemoryRegion(device, 64, 64)
        assert a.rkey != b.rkey


class TestProtectionDomain:
    def test_register_lookup(self, device):
        pd = ProtectionDomain()
        mr = pd.register(device, 0, 1024, name="pool")
        assert pd.lookup(mr.rkey) is mr
        assert len(pd) == 1

    def test_lookup_unknown_rkey(self, device):
        pd = ProtectionDomain()
        with pytest.raises(ProtectionError):
            pd.lookup(0xABCD)

    def test_deregister(self, device):
        pd = ProtectionDomain()
        mr = pd.register(device, 0, 1024)
        pd.deregister(mr)
        assert not mr.valid
        with pytest.raises(ProtectionError):
            pd.lookup(mr.rkey)
        assert len(pd) == 0
