"""QP error-path behaviour under injected transport faults."""

import pytest

from repro.errors import QPError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule
from repro.nvm.device import NVMDevice
from repro.rdma.fabric import Fabric
from repro.sim.rng import RngRegistry


@pytest.fixture
def net(env):
    fabric = Fabric(env, jitter_ns=0.0)
    server = fabric.create_node("server", device=NVMDevice(env, 1 << 20))
    client = fabric.create_node("client")
    ep = fabric.connect(client, server)
    mr = server.register_memory(0, 1 << 20, name="pool")
    return fabric, server, client, ep, mr


def arm(fabric, *rules, seed=1):
    plan = FaultPlan("t", tuple(rules))
    fabric.injector = FaultInjector(fabric.env, plan, RngRegistry(seed))
    return fabric.injector


def run(env, gen):
    return env.run(env.process(gen))


class TestQPErrorState:
    def test_injected_error_fails_verb_and_sticks(self, env, net):
        fabric, server, client, ep, mr = net
        arm(fabric, FaultRule("qp_error", site="qp.write", max_fires=1))

        def doomed():
            yield from ep.write(mr.rkey, 0, b"x")

        with pytest.raises(QPError) as ei:
            run(env, doomed())
        assert ei.value.code == "qp_error"
        assert ep.in_error

        # Rule exhausted, but the QP stays unusable for EVERY verb
        # until reset — including ones the rule never targeted.
        def read_too():
            yield from ep.read(mr.rkey, 0, 8)

        with pytest.raises(QPError) as ei:
            run(env, read_too())
        assert ei.value.code == "qp_error"

    def test_error_verb_costs_no_simulated_time(self, env, net):
        fabric, server, client, ep, mr = net
        arm(fabric, FaultRule("qp_error", site="qp.write", max_fires=1))

        def doomed():
            yield from ep.write(mr.rkey, 0, b"x")

        with pytest.raises(QPError):
            run(env, doomed())
        assert env.now == 0.0  # failed before entering the TX engine

    def test_reset_clears_both_directions(self, env, net):
        fabric, server, client, ep, mr = net
        ep._error = True
        ep.peer._error = True
        ep.reset()
        assert not ep.in_error
        assert not ep.peer.in_error

        def works():
            yield from ep.write(mr.rkey, 0, b"ok")

        fabric.injector = None
        run(env, works())
        assert server.device.read(0, 2) == b"ok"

    def test_peer_error_does_not_block_this_direction(self, env, net):
        fabric, server, client, ep, mr = net
        ep.peer._error = True  # server->client direction broken

        def works():
            yield from ep.write(mr.rkey, 0, b"ok")

        run(env, works())  # client->server unaffected


class TestCompletionDrop:
    def test_drop_burns_detection_time_then_errors(self, env, net):
        fabric, server, client, ep, mr = net
        arm(
            fabric,
            FaultRule(
                "completion_drop", site="qp.write", delay_ns=500.0, max_fires=1
            ),
        )

        def doomed():
            yield from ep.write(mr.rkey, 64, b"lost")

        with pytest.raises(QPError) as ei:
            run(env, doomed())
        assert ei.value.code == "completion_lost"
        assert env.now == 500.0  # transport retries before giving up
        assert ep.in_error
        # the payload never reached the target
        assert server.device.read(64, 4) == b"\x00" * 4


class TestCompletionDelay:
    def test_delay_adds_exactly_delay_ns(self, env, net):
        fabric, server, client, ep, mr = net

        def timed():
            t0 = env.now
            yield from ep.read(mr.rkey, 0, 64)
            return env.now - t0

        baseline = run(env, timed())
        arm(fabric, FaultRule("completion_delay", site="qp.read", delay_ns=777.0))
        delayed = run(env, timed())
        assert delayed == pytest.approx(baseline + 777.0)


class TestZeroCostWhenUnarmed:
    @pytest.mark.parametrize("armed_empty", [False, True])
    def test_armed_empty_plan_is_timing_identical(self, env, net, armed_empty):
        """An armed-but-empty plan must not perturb a single timing."""
        fabric, server, client, ep, mr = net
        if armed_empty:
            arm(fabric)  # empty plan

        def workload():
            for i in range(10):
                yield from ep.write(mr.rkey, i * 128, bytes([i]) * 64)
                yield from ep.read(mr.rkey, i * 128, 64)
                yield from ep.faa(mr.rkey, 4096, 1)
            return env.now

        end = run(env, workload())
        # compare against a fresh, never-armed fabric running the same ops
        env2 = type(env)()
        fabric2 = Fabric(env2, jitter_ns=0.0)
        server2 = fabric2.create_node("server", device=NVMDevice(env2, 1 << 20))
        client2 = fabric2.create_node("client")
        ep2 = fabric2.connect(client2, server2)
        mr2 = server2.register_memory(0, 1 << 20, name="pool")

        def workload2():
            for i in range(10):
                yield from ep2.write(mr2.rkey, i * 128, bytes([i]) * 64)
                yield from ep2.read(mr2.rkey, i * 128, 64)
                yield from ep2.faa(mr2.rkey, 4096, 1)
            return env2.now

        assert env2.run(env2.process(workload2())) == end
