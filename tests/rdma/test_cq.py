"""Completion queues and asynchronous posting."""

import numpy as np
import pytest

from repro.nvm.device import NVMDevice
from repro.rdma.cq import CompletionQueue, post_read, post_write
from repro.rdma.fabric import Fabric
from repro.sim.kernel import Environment


@pytest.fixture
def net(env):
    fabric = Fabric(env, jitter_ns=0.0)
    server = fabric.create_node("s", device=NVMDevice(env, 1 << 20))
    client = fabric.create_node("c")
    ep = fabric.connect(client, server)
    mr = server.register_memory(0, 1 << 20)
    return fabric, server, ep, mr


def test_write_completion(env, net):
    _f, server, ep, mr = net
    cq = CompletionQueue(env)

    def proc():
        wid = post_write(ep, cq, mr.rkey, 0, b"async!", wr_id=7)
        assert cq.outstanding == 1
        (wc,) = yield from cq.wait(1)
        return wid, wc

    wid, wc = env.run(env.process(proc()))
    assert wc.wr_id == wid == 7 and wc.ok
    assert server.device.read(0, 6) == b"async!"
    assert cq.outstanding == 0 and cq.completed == 1


def test_read_completion_carries_data(env, net):
    _f, server, ep, mr = net
    server.device.write(64, b"payload")
    cq = CompletionQueue(env)

    def proc():
        post_read(ep, cq, mr.rkey, 64, 7)
        (wc,) = yield from cq.wait(1)
        return wc.result

    assert env.run(env.process(proc())) == b"payload"


def test_pipelining_overlaps_round_trips(env, net):
    """N outstanding writes finish far sooner than N serial ones."""
    _f, server, ep, mr = net
    n = 16

    def serial():
        t0 = env.now
        for i in range(n):
            yield from ep.write(mr.rkey, i * 64, b"x" * 64)
        return env.now - t0

    t_serial = env.run(env.process(serial()))

    def pipelined():
        cq = CompletionQueue(env)
        t0 = env.now
        for i in range(n):
            post_write(ep, cq, mr.rkey, i * 64, b"x" * 64)
        yield from cq.wait(n)
        return env.now - t0

    t_pipe = env.run(env.process(pipelined()))
    assert t_pipe < t_serial / 3


def test_poll_nonblocking(env, net):
    _f, server, ep, mr = net
    cq = CompletionQueue(env)
    assert cq.poll() == []
    post_write(ep, cq, mr.rkey, 0, b"z")
    env.run()
    wcs = cq.poll()
    assert len(wcs) == 1 and wcs[0].ok
    assert len(cq) == 0


def test_failed_wr_completes_with_error(env, net):
    fabric, server, ep, mr = net
    cq = CompletionQueue(env)

    def proc():
        post_write(ep, cq, mr.rkey, 0, b"x" * 4096, wr_id=1)
        yield env.timeout(500)  # mid-flight
        fabric.crash_node(server, np.random.default_rng(0))
        (wc,) = yield from cq.wait(1)
        return wc

    wc = env.run(env.process(proc()))
    assert not wc.ok
    assert isinstance(wc.result, Exception)


def test_protection_error_becomes_error_cqe(env, net):
    _f, server, ep, mr = net
    cq = CompletionQueue(env)

    def proc():
        post_write(ep, cq, 0xBAD, 0, b"x")
        (wc,) = yield from cq.wait(1)
        return wc

    wc = env.run(env.process(proc()))
    assert not wc.ok


def test_completions_in_post_order_for_equal_ops(env, net):
    _f, server, ep, mr = net
    cq = CompletionQueue(env)

    def proc():
        ids = [post_write(ep, cq, mr.rkey, i * 64, b"y" * 64) for i in range(5)]
        wcs = yield from cq.wait(5)
        return ids, [wc.wr_id for wc in wcs]

    ids, completed = env.run(env.process(proc()))
    assert completed == ids  # FIFO TX engine => in-order completion
