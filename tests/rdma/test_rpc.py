"""SEND-based RPC layer."""

import pytest

from repro.errors import StoreError
from repro.nvm.device import NVMDevice
from repro.rdma.fabric import Fabric
from repro.rdma.rpc import RpcClient, RpcFault, RpcServer, rpc_error
from repro.sim.kernel import Environment


@pytest.fixture
def rpc_net(env):
    fabric = Fabric(env, jitter_ns=0.0)
    server = fabric.create_node("server", device=NVMDevice(env, 4096), cores=1)
    client = fabric.create_node("client")
    ep = fabric.connect(client, server)
    srv = RpcServer(env, server, dispatch_ns=100.0)
    return fabric, server, srv, RpcClient(ep), ep


def test_call_and_response(env, rpc_net):
    _f, _s, srv, client, _ep = rpc_net

    def add_one(msg):
        yield env.timeout(10)
        return {"n": msg.payload["n"] + 1}, 32

    srv.register("inc", add_one)
    srv.start()

    def proc():
        return (yield from client.call({"op": "inc", "n": 4}, 64))

    assert env.run(env.process(proc())) == {"n": 5}
    assert srv.requests_served == 1


def test_error_response_raises_fault(env, rpc_net):
    _f, _s, srv, client, _ep = rpc_net

    def failing(msg):
        yield env.timeout(1)
        return rpc_error("no such thing"), 32

    srv.register("bad", failing)
    srv.start()

    def proc():
        yield from client.call({"op": "bad"}, 64)

    with pytest.raises(RpcFault, match="no such thing"):
        env.run(env.process(proc()))


def test_single_handler_serializes(env, rpc_net):
    """With concurrent_handlers=1 requests queue behind each other."""
    _f, _s, srv, client, ep = rpc_net

    def slow(msg):
        yield env.timeout(1000)
        return {"t": env.now}, 32

    srv.register("slow", slow)
    srv.start()
    times = []

    def one_client(ep_):
        c = RpcClient(ep_)
        resp = yield from c.call({"op": "slow"}, 64)
        times.append(resp["t"])

    fabric, server = _f, _s
    eps = [ep, fabric.connect(fabric.create_node("c2"), server)]
    procs = [env.process(one_client(e)) for e in eps]
    env.run(env.all_of(procs))
    assert abs(times[1] - times[0]) >= 1000  # serialized on the one core


def test_concurrent_handlers_overlap(env):
    fabric = Fabric(env, jitter_ns=0.0)
    server = fabric.create_node("server", device=NVMDevice(env, 4096), cores=2)
    srv = RpcServer(env, server, dispatch_ns=100.0, concurrent_handlers=2)

    def slow(msg):
        yield env.timeout(1000)
        return {"t": env.now}, 32

    srv.register("slow", slow)
    srv.start()
    times = []

    def one_client():
        node = fabric.create_node(f"c{len(times)}")
        ep = fabric.connect(node, server)
        resp = yield from RpcClient(ep).call({"op": "slow"}, 64)
        times.append(resp["t"])

    procs = [env.process(one_client()) for _ in range(2)]
    env.run(env.all_of(procs))
    assert abs(times[1] - times[0]) < 1000  # overlapped on two cores


def test_default_handler_catches_unrouted(env, rpc_net):
    _f, _s, srv, client, ep = rpc_net
    seen = []

    def catcher(msg):
        seen.append(msg.payload)
        return None
        yield  # generator

    srv.register_default(catcher)
    srv.start()

    def proc():
        yield from ep.send({"op": "mystery"}, 32)
        yield env.timeout(5000)

    env.run(env.process(proc()))
    assert seen == [{"op": "mystery"}]


def test_unroutable_without_default_dropped(env, rpc_net):
    _f, _s, srv, client, ep = rpc_net
    srv.start()

    def proc():
        yield from ep.send({"op": "nobody"}, 32)
        yield env.timeout(5000)

    env.run(env.process(proc()))  # nothing raises


def test_stop_interrupts_dispatch(env, rpc_net):
    _f, _s, srv, client, _ep = rpc_net
    proc = srv.start()
    env.run(until=100)
    srv.stop()
    env.run()
    assert not proc.is_alive


def test_stop_interrupts_inflight_handlers(env):
    """A stopped server must not keep executing handler side effects —
    crash fidelity depends on this."""
    fabric = Fabric(env, jitter_ns=0.0)
    server = fabric.create_node("server", device=NVMDevice(env, 4096), cores=2)
    srv = RpcServer(env, server, dispatch_ns=10.0, concurrent_handlers=2)
    effects = []

    def slow_effect(msg):
        yield env.timeout(10_000)
        effects.append("mutated")
        return {"ok": True}, 32

    srv.register("slow", slow_effect)
    srv.start()
    client_node = fabric.create_node("c")
    ep = fabric.connect(client_node, server)

    def cli():
        try:
            yield from RpcClient(ep).call({"op": "slow"}, 64)
        except Exception:
            pass

    env.process(cli())
    env.run(until=5_000)  # handler is mid-flight
    srv.stop()
    env.run(until=50_000)
    assert effects == []


def test_double_start_rejected(env, rpc_net):
    _f, _s, srv, _c, _ep = rpc_net
    srv.start()
    with pytest.raises(StoreError):
        srv.start()
