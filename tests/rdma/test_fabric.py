"""Fabric topology, in-flight tracking, crash tearing, timing model."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.mem.buffer import CACHELINE
from repro.nvm.device import NVMDevice
from repro.rdma.fabric import Fabric
from repro.rdma.latency import FabricTiming
from repro.sim.kernel import Environment


class TestTimingModel:
    def test_serialize_floor(self):
        t = FabricTiming()
        assert t.serialize_ns(1) == t.serialize_ns(t.min_wire_bytes)
        assert t.serialize_ns(1000) > t.serialize_ns(64)

    def test_scaled(self):
        t = FabricTiming().scaled(2.0)
        base = FabricTiming()
        assert t.propagation_ns == 2 * base.propagation_ns
        assert t.two_sided_rx_ns == 2 * base.two_sided_rx_ns
        with pytest.raises(ConfigError):
            base.scaled(0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FabricTiming(propagation_ns=-1)

    def test_two_sided_rx_cost_grows_with_size(self):
        t = FabricTiming()
        assert t.two_sided_rx_cost(4096) > t.two_sided_rx_cost(64)


class TestCrashTearing:
    def _setup(self, env):
        fabric = Fabric(env, jitter_ns=0.0)
        server = fabric.create_node("s", device=NVMDevice(env, 1 << 20))
        client = fabric.create_node("c")
        ep = fabric.connect(client, server)
        mr = server.register_memory(0, 1 << 20)
        return fabric, server, ep, mr

    def test_partial_application_of_inflight_write(self, env):
        """A crash mid-transfer lands a strict subset of cachelines.

        ``evict_probability=1.0`` isolates the arrival tearing: every
        line that reached the volatile domain survives, so what's on
        media afterwards is exactly the torn arrival subset.
        """
        fabric, server, ep, mr = self._setup(env)
        payload = bytes([0xAB]) * (64 * CACHELINE)

        def writer():
            try:
                yield from ep.write(mr.rkey, 0, payload)
            except Exception:
                pass

        def killer():
            # after serialization started but before the ACK (~half way)
            yield env.timeout(700)
            fabric.crash_node(server, np.random.default_rng(3), 1.0)

        env.process(writer())
        env.process(killer())
        env.run()
        landed = sum(
            1
            for i in range(64)
            if server.device.read(i * CACHELINE, 1) == b"\xab"
        )
        assert 0 < landed < 64  # torn, not all-or-nothing

    def test_inflight_data_lost_without_eviction(self, env):
        """Arrived-but-volatile data dies with the caches: DDIO places
        the payload in the LLC, not the power-fail domain (§3)."""
        fabric, server, ep, mr = self._setup(env)

        def writer():
            try:
                yield from ep.write(mr.rkey, 0, b"\xab" * 4096)
            except Exception:
                pass

        def killer():
            yield env.timeout(700)
            fabric.crash_node(server, np.random.default_rng(3), 0.0)

        env.process(writer())
        env.process(killer())
        env.run()
        assert server.device.read(0, 4096) == b"\x00" * 4096

    def test_crash_before_transfer_lands_nothing(self, env):
        fabric, server, ep, mr = self._setup(env)

        def writer():
            try:
                yield from ep.write(mr.rkey, 0, b"\xcd" * 4096)
            except Exception:
                pass

        def killer():
            yield env.timeout(1)  # still in the TX engine
            fabric.crash_node(server, np.random.default_rng(0), 0.0)

        env.process(writer())
        env.process(killer())
        env.run()
        assert server.device.read(0, 4096) == b"\x00" * 4096

    def test_double_crash_rejected(self, env):
        fabric, server, ep, mr = self._setup(env)
        fabric.crash_node(server, np.random.default_rng(0))
        with pytest.raises(SimulationError):
            fabric.crash_node(server, np.random.default_rng(0))

    def test_restart_clears_srq(self, env):
        fabric, server, ep, mr = self._setup(env)

        def sender():
            yield from ep.send("stale", 16)

        env.process(sender())
        env.run()
        assert len(server.srq) == 1
        fabric.crash_node(server, np.random.default_rng(0))
        fabric.restart_node(server)
        assert server.alive and len(server.srq) == 0

    def test_restart_live_node_rejected(self, env):
        fabric, server, ep, mr = self._setup(env)
        with pytest.raises(SimulationError):
            fabric.restart_node(server)

    def test_inflight_count(self, env):
        fabric, server, ep, mr = self._setup(env)
        assert fabric.inflight_count() == 0

        def writer():
            yield from ep.write(mr.rkey, 0, b"x" * 1024)

        env.process(writer())
        env.run(until=600)
        assert fabric.inflight_count(server) == 1
        env.run()
        assert fabric.inflight_count() == 0


class TestJitter:
    def test_zero_jitter_is_deterministic_exact(self, env):
        fabric = Fabric(env, jitter_ns=0.0)
        assert fabric.jitter() == 0.0

    def test_jitter_reproducible_by_seed(self):
        env = Environment()
        a = Fabric(env, jitter_seed=9)
        b = Fabric(env, jitter_seed=9)
        assert [a.jitter() for _ in range(5)] == [b.jitter() for _ in range(5)]

    def test_node_without_device_cannot_register(self, env):
        fabric = Fabric(env)
        node = fabric.create_node("diskless")
        with pytest.raises(SimulationError):
            node.register_memory(0, 64)
